# Developer entry points. `make check` is the gate CI runs: the tier-1 test
# suite plus a fast smoke subset of the microbenchmarks, so functional *and*
# hot-path regressions fail loudly.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-smoke check

test:
	$(PYTHON) -m pytest -x -q tests

bench:
	$(PYTHON) benchmarks/run_bench.py

bench-smoke:
	$(PYTHON) benchmarks/run_bench.py --smoke --output /tmp/BENCH_smoke.json

check: test bench-smoke
	@echo "check OK: tier-1 tests + benchmark smoke run passed"
