# Developer entry points. `make check` is the gate CI runs: the tier-1 test
# suite plus a fast smoke subset of the microbenchmarks, so functional *and*
# hot-path regressions fail loudly.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Written into the workspace (and gitignored) rather than /tmp so concurrent
# CI jobs on one runner never clobber each other's reports.  Load reports go
# under $(REPORT_DIR) so per-run artifacts never litter the repo root.
BENCH_SMOKE_OUT ?= BENCH_smoke.json
REPORT_DIR ?= reports
LOAD_REPORT_OUT ?= $(REPORT_DIR)/load_report.json
SHARDED_LOAD_REPORT_OUT ?= $(REPORT_DIR)/sharded_load_report.json
SHARDED1_LOAD_REPORT_OUT ?= $(REPORT_DIR)/sharded1_load_report.json

.PHONY: test test-cov bench bench-smoke bench-gate lint docs-check serve-demo chaos load load-smoke check

test:
	$(PYTHON) -m pytest -x -q tests

# Tier-1 tests with a coverage floor on the KV-cache subsystem (the paged
# store is the engine's correctness-critical core).  Needs pytest-cov; CI
# runs this, `make test` stays dependency-light for local loops.
test-cov:
	$(PYTHON) -m pytest -x -q tests --cov=repro.kvcache --cov-report=term-missing --cov-fail-under=85

bench:
	$(PYTHON) benchmarks/run_bench.py

bench-smoke:
	$(PYTHON) benchmarks/run_bench.py --smoke --output $(BENCH_SMOKE_OUT)

# Compare the smoke run against the committed BENCH_micro.json and fail on
# >1.5x regression of any pinned metric (machine-speed normalized).
bench-gate: bench-smoke
	$(PYTHON) benchmarks/check_regression.py --report $(BENCH_SMOKE_OUT)

lint:
	ruff check .
	ruff format --check .

# The CI docs job: every docs page reachable from README with no dead links
# or stale `path/to/file` references, plus pydocstyle (ruff D) docstring
# rules on the kvcache, serving and speculative subsystems, the tools they
# ship with, and the benchmark runner, so the newest code stays documented.
docs-check:
	$(PYTHON) tools/check_docs.py
	ruff check --select D100,D101,D102,D103,D104,D419 src/repro/kvcache src/repro/speculative src/repro/serving tools benchmarks/run_bench.py

serve-demo:
	$(PYTHON) examples/serving_demo.py

# Trace-driven load harness: seeded workload replayed in virtual step-time,
# latency-percentile + goodput report written to $(LOAD_REPORT_OUT).  The
# smoke variant runs a pinned tiny trace twice and fails unless the two
# reports are byte-identical with a complete schema (the CI determinism
# gate; see docs/workloads.md).
load:
	$(PYTHON) tools/run_load.py --output $(LOAD_REPORT_OUT)

# The sharded passes extend the determinism gate: N=2 process-backed
# replicas must also replay byte-identically, and the N=1 sharded report
# must be byte-identical to the single-engine report (docs/sharding.md).
load-smoke:
	$(PYTHON) tools/run_load.py --smoke --output $(LOAD_REPORT_OUT)
	$(PYTHON) tools/run_load.py --smoke --replicas 2 --output $(SHARDED_LOAD_REPORT_OUT)
	$(PYTHON) tools/run_load.py --smoke --replicas 1 --output $(SHARDED1_LOAD_REPORT_OUT)

# Pinned 1000-step seeded fault-injection campaign (the CI chaos job): every
# injection point fires, per-step pool-integrity audits stay clean, survivors
# stay bit-exact, and the store ends with zero leaked pages.
chaos:
	$(PYTHON) tools/run_chaos.py

check: test bench-smoke
	@echo "check OK: tier-1 tests + benchmark smoke run passed"
