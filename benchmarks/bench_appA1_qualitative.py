"""Appendix A.1: qualitative generation comparison on a single document.

Generates one summary with Full Attention, Window Attention, H2O and Keyformer
(all reduced policies at a 50 % budget) and records the generated text plus
per-sample ROUGE scores, mirroring the paper's qualitative appendix.
"""

from repro.experiments.qualitative import run_qualitative_comparison

from conftest import run_once


def test_appendix_a1_qualitative(benchmark, context, save_table):
    table, texts = run_once(benchmark, run_qualitative_comparison, context=context)
    save_table("appendix_a1_scores", table)

    narrative = [
        "Document:",
        "  " + texts["document"],
        "",
        "Reference:",
        "  " + texts["reference"],
        "",
    ]
    for method in ("full", "window", "h2o", "keyformer"):
        narrative.append(f"{method}:")
        narrative.append("  " + texts[method])
        narrative.append("")
    save_table("appendix_a1_generations", "\n".join(narrative))

    assert set(texts) == {"document", "reference", "full", "window", "h2o", "keyformer"}
    assert len(table.rows) == 4
