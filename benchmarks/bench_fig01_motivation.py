"""Figure 1: inference-latency growth and KV-cache size vs model size.

Regenerates both panels of the paper's motivation figure with the analytical
A100 model: (a) latency normalized to a 512-token sequence together with the
share of time spent moving KV-cache data, and (b) KV-cache size crossing the
model size as the sequence grows (batch 1, beam 4, MPT-7B).
"""

from repro.experiments.performance import run_fig1_motivation

from conftest import run_once


def test_fig01_latency_and_size(benchmark, save_table):
    latency_table, size_table = run_once(benchmark, run_fig1_motivation)
    save_table("fig01a_latency_vs_seqlen", latency_table, precision=3)
    save_table("fig01b_kv_cache_vs_model_size", size_table, precision=2)

    norm = latency_table.column("normalized_latency")
    kv_share = latency_table.column("kv_movement_fraction")
    # Paper: 16x longer sequences cost >50x more and KV movement approaches
    # ~40% of the total time; the roofline model must reproduce that shape.
    assert norm[0] == 1.0
    assert norm[-1] > 20.0
    assert kv_share[-1] > kv_share[0]
    assert kv_share[-1] > 0.3

    model_gb = size_table.column("model_size_gb")
    kv_gb = size_table.column("kv_cache_size_gb")
    assert kv_gb[0] < model_gb[0]      # 512 tokens: KV cache << model
    assert kv_gb[-1] > model_gb[-1]    # 8k tokens: KV cache exceeds the model
