"""Figure 3: attention sparsity, attention-mass CDF and attention-scheme accuracy.

(a) per-layer attention sparsity of the three mini model families,
(b) cumulative attention mass captured by the top fraction of tokens,
(c) ROUGE-2 of Full / Key-only / Window / H2O at a 50 % KV-cache budget.
"""

from repro.experiments.accuracy_sweep import run_fig3_accuracy_comparison
from repro.experiments.attention_analysis import run_fig3_sparsity_and_cdf

from conftest import run_once


def test_fig03ab_sparsity_and_cdf(benchmark, context, save_table):
    sparsity, cdf = run_once(benchmark, run_fig3_sparsity_and_cdf, context=context)
    save_table("fig03a_attention_sparsity", sparsity)
    save_table("fig03b_attention_mass_cdf", cdf, precision=3)

    # Paper: a small fraction of tokens carries ~90% of the attention mass.
    mass = cdf.column("attention_mass")
    fractions = cdf.column("token_fraction")
    half_index = min(range(len(fractions)), key=lambda i: abs(fractions[i] - 0.5))
    assert mass[half_index] > 0.75
    assert all(0.0 <= s <= 100.0 for s in sparsity.column("sparsity_pct"))


def test_fig03c_attention_scheme_accuracy(benchmark, context, save_table):
    table = run_once(benchmark, run_fig3_accuracy_comparison, limit=8, context=context)
    save_table("fig03c_attention_scheme_accuracy", table)

    # Paper's qualitative claim: window attention and key-only attention lose
    # accuracy relative to full attention at 50% cache.
    by_scheme: dict[str, list[float]] = {}
    for model, scheme, _, rouge2 in table.rows:
        by_scheme.setdefault(scheme, []).append(rouge2)
    mean = {scheme: sum(vals) / len(vals) for scheme, vals in by_scheme.items()}
    assert mean["window"] < mean["full"]
    assert mean["key-only"] < mean["full"]
