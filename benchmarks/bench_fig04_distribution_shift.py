"""Figure 4: KV-cache reduction redistributes the softmax mass unevenly.

Compares the last-query-row attention distribution before and after keeping
only the top 50 % of tokens: the retained tokens inherit the discarded mass,
the maximum probability grows and the entropy drops — the distribution shift
that motivates Keyformer's logit regularization.
"""

from repro.experiments.attention_analysis import run_fig4_distribution_shift

from conftest import run_once


def test_fig04_distribution_shift(benchmark, context, save_table):
    table = run_once(benchmark, run_fig4_distribution_shift, context=context)
    save_table("fig04_score_distribution_shift", table, precision=4)

    rows = {row[0]: (row[1], row[2]) for row in table.rows}
    full_max, reduced_max = rows["max probability"]
    full_entropy, reduced_entropy = rows["entropy"]
    assert reduced_max >= full_max          # mass concentrates on survivors
    assert reduced_entropy <= full_entropy  # the distribution becomes sharper
    _, retained_mass = rows["mass of retained tokens (pre-normalization)"]
    assert 0.5 < retained_mass <= 1.0       # top-50% of tokens held most of the mass
