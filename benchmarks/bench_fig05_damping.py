"""Figure 5: damping the accumulated-attention score does not recover full accuracy.

Sweeps the damping factor α applied to the H2O-style accumulated score
(Cerebras-mini, 50 % KV cache, 20 % recent ratio) and compares against the
full-attention reference — the motivation for replacing damping with
Keyformer's Gumbel regularization.
"""

from repro.experiments.ablations import run_damping_sweep

from conftest import run_once


def test_fig05_damping_sweep(benchmark, context, save_table):
    table = run_once(benchmark, run_damping_sweep, limit=8, context=context)
    save_table("fig05_damping_sweep", table)

    rows = table.rows
    full_rouge2 = rows[0][4]
    damped_rouge2 = [row[4] for row in rows[1:]]
    # Paper: no damping factor recovers the full-attention quality (allowing a
    # small noise margin at mini scale).
    assert max(damped_rouge2) <= full_rouge2 + 2.0
    assert len(damped_rouge2) == 6
