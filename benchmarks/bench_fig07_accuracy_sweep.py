"""Figure 7: ROUGE-2 vs KV-cache budget for all models, tasks and policies.

The headline accuracy experiment: Full Attention vs Window Attention vs H2O vs
Keyformer across 20–90 % KV-cache budgets on the summarization and
conversation tasks for the three mini model families.
"""

import numpy as np

from repro.experiments.accuracy_sweep import run_accuracy_sweep

from conftest import run_once


def test_fig07_accuracy_vs_budget(benchmark, context, save_table):
    table = run_once(
        benchmark,
        run_accuracy_sweep,
        budgets=(0.2, 0.3, 0.5, 0.7, 0.9),
        limit=8,
        context=context,
    )
    save_table("fig07_accuracy_vs_kv_budget", table)

    rows = table.to_dicts()

    def mean_rouge2(policy, task=None):
        values = [
            r["rouge2"]
            for r in rows
            if r["policy"] == policy and (task is None or r["task"] == task)
        ]
        return float(np.mean(values))

    # Paper-shape checks on the summarization task (averaged over models and
    # budgets): both key-token policies must clearly beat the recency-only
    # window baseline, and stay in the vicinity of full attention.
    window = mean_rouge2("window", "summarization")
    h2o = mean_rouge2("h2o", "summarization")
    keyformer = mean_rouge2("keyformer", "summarization")
    full = mean_rouge2("full", "summarization")
    assert keyformer > window
    assert h2o > window
    assert keyformer > 0.4 * full
