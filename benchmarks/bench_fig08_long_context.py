"""Figure 8: long-context summarization (GovReport analogue) at 10–50 % KV cache.

Evaluates the MPT-storywriter analogue on the long-document dataset with H2O
and Keyformer at aggressive budgets, against the full-attention reference and
the 99 % MLPerf band.
"""

from repro.experiments.accuracy_sweep import run_long_context_sweep

from conftest import run_once


def test_fig08_long_context(benchmark, context, save_table):
    table = run_once(
        benchmark,
        run_long_context_sweep,
        budgets=(0.1, 0.2, 0.3, 0.4, 0.5),
        limit=4,
        context=context,
    )
    save_table("fig08_long_context_summarization", table)

    rows = table.to_dicts()
    full = next(r["rouge2"] for r in rows if r["policy"] == "full")
    keyformer_at_50 = next(
        r["rouge2"] for r in rows if r["policy"] == "keyformer" and r["kv_budget"] == 0.5
    )
    keyformer_at_10 = next(
        r["rouge2"] for r in rows if r["policy"] == "keyformer" and r["kv_budget"] == 0.1
    )
    # Keyformer at 50% must stay within a reasonable band of full attention and
    # budgets must not be catastrophic even at 10%.
    assert keyformer_at_50 >= 0.25 * full
    assert keyformer_at_10 >= 0.0
