"""Figure 9: iso-accuracy inference speedup (Keyformer 50 % vs H2O 90 % cache).

The paper's iso-accuracy argument: H2O needs ~90 % of the cache to stay within
the accuracy band, Keyformer only 50 %, so Keyformer's achievable speedup is
much larger.  Regenerated with the analytical A100 model for 1k/2k/4k
sequences at beam 4.
"""

from repro.experiments.performance import run_fig9_speedup

from conftest import run_once


def test_fig09_speedup(benchmark, save_table):
    table = run_once(benchmark, run_fig9_speedup)
    save_table("fig09_speedup", table)

    rows = table.to_dicts()
    for sequence in {r["sequence"] for r in rows}:
        by_policy = {r["policy"]: r["speedup_vs_full"] for r in rows if r["sequence"] == sequence}
        assert by_policy["keyformer"] > by_policy["h2o"] > 1.0

    # Paper: ~2.1x at the longest configuration.
    longest = [r for r in rows if r["sequence"] == "4096+4096" and r["policy"] == "keyformer"]
    assert 1.6 < longest[0]["speedup_vs_full"] < 2.6
