"""Figure 10: normalized KV data movement and scaled-dot-product time.

Breaks one generation step's cost into KV-cache data movement and the
``(QK^T)V`` scaled dot product, normalized to full attention, including
Keyformer's Gumbel-softmax score-function overhead.  Also measures the actual
score-function cost of this repository's implementation as a sanity check.
"""

from repro.experiments.performance import measure_score_function_overhead, run_fig10_breakdown

from conftest import run_once


def test_fig10_breakdown(benchmark, save_table):
    table = run_once(benchmark, run_fig10_breakdown)
    save_table("fig10_breakdown", table, precision=3)

    rows = table.to_dicts()
    longest = rows[-1]
    # Paper: ~2.9x lower KV data movement and ~1.3x faster scaled dot product
    # at 4k sequence length with a 50% cache.
    assert longest["kv_movement_keyformer"] < 0.6
    assert longest["sdp_keyformer"] < 0.9
    # Overhead exists but must not erase the savings: the total Keyformer
    # (KV movement + scaled dot product + Gumbel softmax) stays below the
    # full-attention KV movement + scaled dot product time.
    assert longest["keyformer_score_overhead"] >= 0.0
    assert longest["keyformer_total"] < 1.0


def test_fig10_measured_score_overhead(benchmark, save_table):
    per_layer_seconds = benchmark(measure_score_function_overhead, kv_len=1024, n_heads=8)
    save_table(
        "fig10_measured_score_overhead",
        f"Measured Keyformer score-function update cost (this implementation):\n"
        f"  {per_layer_seconds * 1e3:.3f} ms per layer per step at kv_len=1024, 8 heads",
    )
    assert per_layer_seconds < 0.25
