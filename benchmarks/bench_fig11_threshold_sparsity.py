"""Figure 11 (Appendix A.3): attention sparsity as the score threshold grows.

Sweeps the threshold (expressed as a percentage of the per-row maximum
attention score) and reports per-layer sparsity for the MPT-mini model.
"""

import numpy as np

from repro.experiments.attention_analysis import run_fig11_threshold_sparsity

from conftest import run_once


def test_fig11_threshold_sparsity(benchmark, context, save_table):
    table = run_once(benchmark, run_fig11_threshold_sparsity, context=context)
    save_table("fig11_threshold_sparsity", table)

    rows = table.to_dicts()
    thresholds = sorted({r["threshold_pct_of_max"] for r in rows})
    mean_by_threshold = [
        np.mean([r["sparsity_pct"] for r in rows if r["threshold_pct_of_max"] == t])
        for t in thresholds
    ]
    # Sparsity grows monotonically with the threshold (Figure 11's shape).
    assert all(b >= a - 1e-9 for a, b in zip(mean_by_threshold, mean_by_threshold[1:]))
    assert mean_by_threshold[-1] > mean_by_threshold[0]
