"""Figure 12 (Appendix A.4): recent-window ratio sweep at a 70 % KV budget.

Varies the share of the budget reserved for recent tokens; the paper finds a
sweet spot around 20–30 %, confirming that both recent tokens and key tokens
matter.
"""

import numpy as np

from repro.experiments.ablations import run_recent_ratio_sweep

from conftest import run_once


def test_fig12_recent_ratio(benchmark, context, save_table):
    table = run_once(
        benchmark,
        run_recent_ratio_sweep,
        recent_ratios=(0.1, 0.2, 0.3, 0.5, 0.7, 0.9),
        limit=8,
        context=context,
    )
    save_table("fig12_recent_ratio_sweep", table)

    rows = table.to_dicts()
    ratios = sorted({r["recent_ratio"] for r in rows})
    mean_by_ratio = {
        ratio: float(np.mean([r["rouge2"] for r in rows if r["recent_ratio"] == ratio]))
        for ratio in ratios
    }
    # The mixed regime (small-to-moderate recent share) must not be worse than
    # devoting nearly the whole budget to recency — i.e. key tokens matter.
    best_mixed = max(mean_by_ratio[r] for r in ratios if r <= 0.5)
    assert best_mixed >= mean_by_ratio[max(ratios)] * 0.6
