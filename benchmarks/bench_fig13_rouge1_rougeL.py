"""Figure 13 (Appendix A.5): ROUGE-1 and ROUGE-L vs KV-cache budget.

Same sweep as Figure 7 but reporting the ROUGE-1 / ROUGE-L metrics that the
MLPerf criterion also constrains.  A reduced budget grid keeps the benchmark
affordable; the full grid can be obtained by running the Figure 7 benchmark,
whose table already contains all three metrics.
"""

import numpy as np

from repro.experiments.accuracy_sweep import run_accuracy_sweep

from conftest import run_once


def test_fig13_rouge1_rougeL(benchmark, context, save_table):
    table = run_once(
        benchmark,
        run_accuracy_sweep,
        tasks=("summarization",),
        budgets=(0.3, 0.5, 0.7),
        limit=8,
        context=context,
    )
    # Re-shape into the Figure 13 view (rouge1 / rougeL only).
    from repro.analysis.reporting import ResultTable

    view = ResultTable(
        name="fig13_rouge1_rougeL",
        headers=["model", "policy", "kv_budget", "rouge1", "rougeL"],
    )
    for row in table.to_dicts():
        view.add_row(row["model"], row["policy"], row["kv_budget"], row["rouge1"], row["rougeL"])
    save_table("fig13_rouge1_rougeL", view)

    rows = table.to_dicts()
    window_r1 = np.mean([r["rouge1"] for r in rows if r["policy"] == "window"])
    keyformer_r1 = np.mean([r["rouge1"] for r in rows if r["policy"] == "keyformer"])
    h2o_r1 = np.mean([r["rouge1"] for r in rows if r["policy"] == "h2o"])
    assert keyformer_r1 > window_r1
    assert h2o_r1 > window_r1
