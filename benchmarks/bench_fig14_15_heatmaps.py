"""Figures 14/15 (Appendix A.6): attention heatmaps per layer and head.

Renders the generation-row attention maps of the GPT-J-mini (RoPE) and
MPT-mini (ALiBi) models as ASCII density maps.  The ALiBi model's recency bias
is visible as mass concentrated near the diagonal, while the RoPE model shows
more dispersed key-token columns — the qualitative difference the paper uses
to explain why attention sinks underperform on MPT.
"""

import numpy as np

from repro.experiments.attention_analysis import run_heatmap_figures
from repro.experiments.common import EVAL_SEED

from conftest import run_once


def test_fig14_15_heatmaps(benchmark, context, save_table):
    rendered = run_once(benchmark, run_heatmap_figures, context=context)
    for model_name, panels in rendered.items():
        save_table(f"fig14_15_heatmaps_{model_name}", "\n\n".join(panels))
    assert set(rendered) == {"gptj_mini", "mpt_mini"}
    assert all(len(panels) > 0 for panels in rendered.values())


def test_fig14_15_positional_bias_difference(benchmark, context, save_table):
    """Quantitative companion: ALiBi concentrates more attention mass on the
    most recent tokens than RoPE does, matching the paper's A.7 discussion."""

    def recency_mass(model_name: str) -> float:
        model = context.model(model_name)
        dataset = context.dataset("cnn_dailymail", n_examples=4, seed=EVAL_SEED)
        ids = context.tokenizer.encode(dataset[0].document)
        model.forward(np.asarray(ids)[None, :], store_attention=True)
        maps = model.collect_attention()
        # Mass on the 10 most recent keys of the final query row, averaged.
        mass = [float(m[0, :, -1, -10:].sum(axis=-1).mean()) for m in maps]
        return float(np.mean(mass))

    alibi_mass = benchmark(recency_mass, "mpt_mini")
    rope_mass = recency_mass("gptj_mini")
    save_table(
        "fig14_15_recency_mass",
        "Mean attention mass on the 10 most recent tokens (last query row):\n"
        f"  mpt_mini (ALiBi): {alibi_mass:.3f}\n  gptj_mini (RoPE): {rope_mass:.3f}",
    )
    assert alibi_mass > rope_mass
