"""Figure 16 (Appendix A.8): static vs dynamic temperature for the score function.

Compares static τ values against the paper's dynamic τ: 1 → 2 schedule on the
MPT-mini summarization task at a 50 % budget.
"""

from repro.experiments.ablations import run_temperature_sweep

from conftest import run_once


def test_fig16_temperature(benchmark, context, save_table):
    table = run_once(benchmark, run_temperature_sweep, limit=8, context=context)
    save_table("fig16_temperature_sweep", table)

    rows = table.to_dicts()
    dynamic = next(r["rouge2"] for r in rows if r["tau"] == "dynamic(1->2)")
    static = {r["tau"]: r["rouge2"] for r in rows if r["tau"] != "dynamic(1->2)"}
    # The dynamic schedule must be competitive with the best static value and
    # clearly better than the extreme temperatures.
    assert dynamic >= max(static.values()) * 0.75
    assert len(static) == 6
