"""Microbenchmarks of the implementation's hot components.

These do not correspond to a paper figure; they quantify the cost of the
building blocks (decode step, cache gather, policy selection, Gumbel-softmax
score update, beam-search step) so regressions in the library itself are
visible alongside the experiment-regeneration benchmarks.
"""

import numpy as np
import pytest

from repro.core.config import KeyformerConfig
from repro.core.keyformer import KeyformerPolicy
from repro.core.policies import H2OPolicy, mixed_topk_selection
from repro.core.registry import make_policy
from repro.generation.generator import Generator
from repro.kvcache.cache import LayerKVCache
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.tensor_ops import softmax
from repro.models.transformer import DecoderLM


@pytest.fixture(scope="module")
def micro_model():
    config = ModelConfig(
        vocab_size=256, d_model=64, n_layers=4, n_heads=8, d_ff=256, max_seq_len=1024,
        positional="rope",
    )
    return DecoderLM(config, seed=0)


@pytest.fixture(scope="module")
def micro_model_1k():
    """1k-context model at the float32 inference dtype (docs/performance.md)."""
    config = ModelConfig(
        vocab_size=256, d_model=64, n_layers=4, n_heads=8, d_ff=256, max_seq_len=2176,
        positional="rope", compute_dtype="float32",
    )
    return DecoderLM(config, seed=0)


def _bench_decode_1k(benchmark, model, policy_name, n_tokens=32):
    """Benchmark the token-generation phase at 1k context.

    The prompt phase runs in (untimed) per-round setup; the timed region is
    the incremental decode loop — the hot path the slab cache, rotated-key
    cache and compute dtype target.
    """
    prompt = np.random.default_rng(1).integers(0, 256, size=(1, 1024))

    def setup():
        policy = (
            make_policy("keyformer", kv_fraction=0.5)
            if policy_name == "keyformer"
            else make_policy(policy_name)
        )
        generator = Generator(model, policy)
        logits, manager = generator._prompt_forward(prompt, n_tokens)
        return (manager, logits), {}

    def decode(manager, logits):
        views = manager.layer_views()
        tokens = np.argmax(logits[:, -1, :], axis=-1)
        for _ in range(n_tokens):
            step_logits = model.decode_step(tokens, manager.current_position, views)
            manager.advance()
            tokens = np.argmax(step_logits, axis=-1)

    benchmark.pedantic(decode, setup=setup, rounds=3, iterations=1)


def test_micro_generation_with_keyformer_1k(benchmark, micro_model_1k):
    _bench_decode_1k(benchmark, micro_model_1k, "keyformer")


def test_micro_generation_full_attention_1k(benchmark, micro_model_1k):
    _bench_decode_1k(benchmark, micro_model_1k, "full")


def test_micro_prompt_forward(benchmark, micro_model):
    ids = np.random.default_rng(0).integers(0, 256, size=(1, 256))
    benchmark(micro_model.forward, ids)


def test_micro_generation_with_keyformer(benchmark, micro_model):
    prompt = np.random.default_rng(1).integers(0, 256, size=128)
    generator = Generator(micro_model, make_policy("keyformer", kv_fraction=0.5))
    config = GenerationConfig(max_new_tokens=16)
    benchmark(generator.generate, prompt, config)


def test_micro_generation_full_attention(benchmark, micro_model):
    prompt = np.random.default_rng(1).integers(0, 256, size=128)
    generator = Generator(micro_model, make_policy("full"))
    config = GenerationConfig(max_new_tokens=16)
    benchmark(generator.generate, prompt, config)


def test_micro_cache_gather(benchmark):
    rng = np.random.default_rng(2)
    keys = rng.normal(size=(4, 8, 1024, 64))
    cache = LayerKVCache.from_prompt(keys, keys.copy())
    indices = np.sort(rng.choice(1024, size=(4, 8, 512), replace=True), axis=-1)

    def gather():
        fresh = LayerKVCache.from_prompt(keys, keys.copy())
        fresh.gather(indices)

    benchmark(gather)


def test_micro_mixed_topk_selection(benchmark):
    scores = np.random.default_rng(3).normal(size=(4, 32, 2048))
    benchmark(mixed_topk_selection, scores, 1024, 256)


def test_micro_keyformer_score_update(benchmark):
    rng = np.random.default_rng(4)
    policy = KeyformerPolicy(KeyformerConfig(kv_fraction=0.5))
    policy.setup(n_layers=1, n_heads=32, batch_size=1, prompt_len=2048, max_new_tokens=64)
    logits = rng.normal(size=(1, 32, 1025))
    probs = softmax(logits, axis=-1)
    positions = np.broadcast_to(np.arange(1025), (1, 32, 1025))
    benchmark(policy.step_selection, 0, logits, probs, positions, 1)


def test_micro_h2o_score_update(benchmark):
    rng = np.random.default_rng(5)
    policy = H2OPolicy()
    policy.setup(n_layers=1, n_heads=32, batch_size=1, prompt_len=2048, max_new_tokens=64)
    logits = rng.normal(size=(1, 32, 1025))
    probs = softmax(logits, axis=-1)
    benchmark(policy.step_selection, 0, logits, probs, None, 1)
