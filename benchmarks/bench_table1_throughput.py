"""Table 1: generation throughput (tokens/s) for Full, H2O (90 %) and Keyformer (50 %).

Regenerates the paper's throughput table (MPT-7B, beam 4) with the analytical
A100 model, including the out-of-memory entry at 4096+4096 with batch size 2.
"""

from repro.experiments.performance import run_table1_throughput

from conftest import run_once


def test_table1_throughput(benchmark, save_table):
    table = run_once(benchmark, run_table1_throughput)
    save_table("table1_throughput", table)

    rows = table.to_dicts()
    # Keyformer must beat H2O must beat full attention at every feasible row,
    # and the paper's OOM pattern must reproduce: full attention cannot run
    # 4096+4096 at batch size 2, Keyformer can.
    for row in rows[:-1]:
        full = float(row["full"])
        h2o = float(row["h2o_90"])
        keyformer = float(row["keyformer_50"])
        assert keyformer > h2o > full
    last = rows[-1]
    assert last["full"] == "OOM"
    assert last["keyformer_50"] != "OOM"
    # Larger batch yields higher throughput than batch 1 for Keyformer
    # (paper: 17.0 -> 19.85 tokens/s).
    assert float(rows[-1]["keyformer_50"]) > float(rows[-2]["keyformer_50"])
