"""Table 2: few-shot accuracy under 50 % KV-cache reduction.

Evaluates the synthetic COPA / OpenBookQA / Winogrande / PIQA analogues with 0
and 5 shots for Full Attention, H2O and Keyformer on the Cerebras-mini and
MPT-mini models (log-likelihood option scoring).
"""

import numpy as np

from repro.experiments.fewshot import run_fewshot_table

from conftest import run_once


def test_table2_fewshot(benchmark, context, save_table):
    table = run_once(benchmark, run_fewshot_table, limit=8, context=context)
    save_table("table2_fewshot_accuracy", table, precision=1)

    rows = table.to_dicts()

    def mean_acc(policy):
        return float(np.mean([r["accuracy"] for r in rows if r["policy"] == policy]))

    full = mean_acc("full")
    h2o = mean_acc("h2o")
    keyformer = mean_acc("keyformer")
    # Paper: reduced-cache policies stay close to the full-attention baseline
    # (within a few points on average) and far above random choice (50%
    # for two options would be chance; we only require a sane band here).
    assert full > 40.0
    assert keyformer > 0.75 * full
    assert h2o > 0.75 * full
    # Every task appears with both shot counts and all three policies.
    assert len(rows) == 4 * 2 * 2 * 3
