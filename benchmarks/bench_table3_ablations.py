"""Table 3: attention methods, score-function sharing and positional handling.

Regenerates the paper's method comparison at a 60 % KV-cache budget on the
MPT-mini summarization task: Full, Window, H2O, StreamingLLM and the Keyformer
variants (new vs original positions, per-layer vs shared score function).
"""

from repro.experiments.ablations import run_table3_ablations

from conftest import run_once


def test_table3_ablations(benchmark, context, save_table):
    table = run_once(benchmark, run_table3_ablations, limit=16, context=context)
    save_table("table3_score_fn_and_positions", table)

    rows = table.to_dicts()

    def row_for(method, score_fn=None):
        for row in rows:
            if row["method"] == method and (score_fn is None or row["score_fn"] == score_fn):
                return row
        raise KeyError(method)

    full = row_for("Full")
    threshold = row_for("Full (99% Accuracy)")
    # The 99% MLPerf threshold row is exactly 0.99 of the full-attention row.
    assert abs(threshold["rouge2"] - 0.99 * full["rouge2"]) < 1e-6

    # At the paper's generous 60% budget the method ordering is within noise at
    # mini scale (documents are short), so the robust assertion is that every
    # reduced-cache method retains most of the full-attention ROUGE-1; the
    # discriminative comparisons happen at tighter budgets in Figures 7 and 8.
    reduced_methods = [
        row for row in rows if row["method"] not in ("Full", "Full (99% Accuracy)")
    ]
    assert len(reduced_methods) == 6
    for row in reduced_methods:
        assert row["rouge1"] >= 0.6 * full["rouge1"], row
    # All eight method rows of the paper's table are present.
    assert len(rows) == 8
