"""Table 4: logit-adjustment distributions (Gumbel / Gaussian / constant / none).

Compares the noise distribution used by the Keyformer score function at a 60 %
KV-cache budget across the three mini model families.
"""

import numpy as np

from repro.experiments.ablations import run_table4_distributions

from conftest import run_once


def test_table4_distributions(benchmark, context, save_table):
    table = run_once(benchmark, run_table4_distributions, limit=8, context=context)
    save_table("table4_logit_adjustment_distributions", table)

    rows = table.to_dicts()
    means = {
        noise: float(np.mean([r["rouge2"] for r in rows if r["noise"] == noise]))
        for noise in ("gumbel", "gaussian", "constant", "none")
    }
    # All four adjustment variants are evaluated on all three models, and the
    # asymmetric/no-adjustment variants (gumbel, none) must not collapse.
    assert len(rows) == 12
    assert means["gumbel"] > 0.0 and means["none"] > 0.0
    # Paper shape: the symmetric Gaussian and constant adjustments are the
    # weakest; at mini scale we require them not to beat the best variant.
    best = max(means.values())
    assert means["constant"] <= best
    assert means["gaussian"] <= best
