"""CI benchmark regression gate.

Compares a fresh smoke-benchmark report against the committed reference
(``BENCH_micro.json``) and fails when a pinned metric regresses by more than
the threshold (default 1.5x).

Two kinds of metrics are gated:

* **Timing metrics** (components with ``min_s``): raw wall-clock differs
  between the pinning machine and a CI runner, so each component's slowdown
  is normalized by the *median* slowdown across all shared components — a
  uniformly slower machine shifts every component equally and passes, while
  a single hot path regressing relative to the rest fails.
* **Ratio metrics** (components with ``speedup``, e.g. the batched-serving
  speedup): dimensionless and machine-independent, gated directly against
  the pinned value divided by the threshold.

Usage::

    python benchmarks/check_regression.py --report BENCH_smoke.json \
        [--baseline BENCH_micro.json] [--threshold 1.5]

Exit status is non-zero on any regression, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_micro.json"
DEFAULT_THRESHOLD = 1.5


def load_components(path: Path) -> dict:
    data = json.loads(path.read_text())
    return data.get("components", data)


def check(
    baseline: dict, report: dict, threshold: float
) -> tuple[list[str], list[str]]:
    """Return ``(log_lines, failures)`` for the shared metrics."""
    lines: list[str] = []
    failures: list[str] = []

    timing = {
        name
        for name, component in report.items()
        if "min_s" in component
        and name in baseline
        and "min_s" in baseline[name]
        and baseline[name]["min_s"] > 0
    }
    slowdowns = {
        name: report[name]["min_s"] / baseline[name]["min_s"] for name in sorted(timing)
    }
    if slowdowns:
        machine_factor = statistics.median(slowdowns.values())
        lines.append(
            f"median slowdown vs pinned baseline: {machine_factor:.2f}x "
            "(machine-speed normalization factor)"
        )
        for name, slowdown in slowdowns.items():
            normalized = slowdown / machine_factor
            status = "ok"
            if normalized > threshold:
                status = "REGRESSION"
                failures.append(
                    f"{name}: {slowdown:.2f}x slower "
                    f"({normalized:.2f}x after machine normalization, "
                    f"threshold {threshold}x)"
                )
            lines.append(
                f"  {name:40s} {slowdown:6.2f}x raw  {normalized:6.2f}x norm  {status}"
            )

    ratios = {
        name
        for name, component in report.items()
        if "speedup" in component and name in baseline and "speedup" in baseline[name]
    }
    for name in sorted(ratios):
        pinned = baseline[name]["speedup"]
        observed = report[name]["speedup"]
        floor = pinned / threshold
        status = "ok"
        if observed < floor:
            status = "REGRESSION"
            failures.append(
                f"{name}: speedup {observed:.2f}x fell below floor {floor:.2f}x "
                f"(pinned {pinned:.2f}x / threshold {threshold}x)"
            )
        lines.append(
            f"  {name:40s} {observed:6.2f}x (pinned {pinned:.2f}x, floor {floor:.2f}x)  {status}"
        )

    if not slowdowns and not ratios:
        failures.append("no shared metrics between report and baseline — wrong files?")
    return lines, failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", type=Path, required=True, help="fresh smoke report")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    args = parser.parse_args()

    baseline = load_components(args.baseline)
    report = load_components(args.report)
    lines, failures = check(baseline, report, args.threshold)

    print(f"benchmark regression gate: {args.report} vs {args.baseline}")
    for line in lines:
        print(line)
    if failures:
        print(f"\nFAILED — {len(failures)} regression(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nOK — no pinned metric regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
