"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment runner against the trained mini model zoo (trained
and cached on first use under ``.cache/models``), prints the resulting table,
and writes it under ``results/`` so EXPERIMENTS.md can reference the measured
values.  pytest-benchmark records the wall-clock cost of regenerating each
artifact.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import ExperimentContext

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """Experiment context backed by the trained model zoo (trains on first use)."""
    return ExperimentContext()


@pytest.fixture(scope="session")
def save_table(results_dir):
    """Persist a ResultTable (or raw text) under results/ and echo it to stdout."""

    def _save(name: str, table_or_text, precision: int = 2) -> str:
        text = (
            table_or_text
            if isinstance(table_or_text, str)
            else table_or_text.to_text(precision=precision)
        )
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return text

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
