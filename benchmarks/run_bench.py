"""Headless microbenchmark runner tracking the perf trajectory across PRs.

Runs the hot-path components (decode loop, cache gather/append, score
updates, top-k selection) under ``time.perf_counter`` and writes a JSON
report — by default ``BENCH_micro.json`` in the repository root — mapping
component name to median seconds.  Unlike the pytest-benchmark suite this
needs no plugins and produces machine-readable output, so successive PRs can
compare numbers directly:

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --smoke          # CI subset
    PYTHONPATH=src python benchmarks/run_bench.py --compare old.json

``--compare`` embeds the old report as ``baseline`` and records per-component
speedups (old median / new median).
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.core.config import CachePolicyConfig, KeyformerConfig
from repro.core.keyformer import KeyformerPolicy
from repro.core.policies import H2OPolicy, WindowAttentionPolicy, mixed_topk_selection
from repro.core.registry import make_policy
from repro.generation.generator import Generator
from repro.generation.sampler import GreedySampler
from repro.kvcache.cache import LayerKVCache
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.tensor_ops import softmax
from repro.models.transformer import DecoderLM
from repro.serving.engine import ContinuousBatchingEngine
from repro.speculative import SpeculationConfig, SpeculativeGenerator

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_micro.json"

# Long enough that per-token decode cost dominates scheduler noise on shared
# machines; the prompt phase runs in untimed setup either way.
DECODE_TOKENS = 64

# Serving benchmark geometry: 4 concurrent requests, mixed prompt lengths, a
# fixed KV budget (the serving steady state where every sequence holds its
# budget).  The serving model is wider than the microbenchmark model — closer
# to deployment shape, and wide enough that per-token math (not Python
# dispatch) dominates the sequential baseline.
SERVE_BATCH = 4
SERVE_PROMPT_LEN = 512
SERVE_BUDGET = 128
SERVE_TOKENS = 96

# Shared-prefix serving geometry: every request carries the same long prompt
# prefix (a system prompt / few-shot block) plus a short distinct suffix, and
# decodes a short completion — the workload where paged prefix sharing turns
# O(T²) prefill into O(S·T) for all but the first request.
SHARED_PREFIX_LEN = 512
SHARED_SUFFIX_LEN = 32
SHARED_DECODE_TOKENS = 8

# Admission-retention geometry: one hot 8-page shared prefix served between
# bursts of unique one-shot prompts at a pool budget too small to hold both —
# the scan-thrash workload where LRU leaf-first reclaim evicts the shared
# prefix every burst while W-TinyLFU's frequency sketch keeps it resident.
# Deterministic (pure registry counters), so the retention ratio is pinned
# exactly and gated by check_regression.py.
ADMISSION_HOT_LEN = 130  # 8 full 16-token pages + the 2-token recompute tail
ADMISSION_SCAN_LEN = 32
ADMISSION_SCANS_PER_BURST = 10
ADMISSION_BURSTS = 4
ADMISSION_POOL_TOKENS = 256  # 16 pages/layer: hot chain pins 8

# Quantized-KV geometry: the serving model at 1k context under a fixed
# page-pool byte budget.  The concurrency/bytes components are *deterministic*
# (pure byte accounting — identical on every machine), so they are pinned as
# dimensionless "speedup" ratios and gated exactly by check_regression.py;
# the accuracy components are informational (no min_s/speedup key).
QUANT_CONTEXT = 1024
QUANT_POOL_BUDGET = 32 * 1024 * 1024  # bytes, per engine

# Tiered-offload geometry: a byte budget funding OFFLOAD_FRAMES tier-0
# frames per layer serves OFFLOAD_BATCH concurrent requests whose combined
# KV footprint is ~4x the budget — the no-offload engine gets the *same*
# bytes as its whole pool (max_pool_bytes), the offload engine as tier-0
# residency (tier0_budget) under a 4x logical pool.  Deterministic (pure
# page accounting on a pinned workload), so the capacity ratio is gated
# exactly by check_regression.py; outputs must match bit for bit.
OFFLOAD_FRAMES = 8
OFFLOAD_LOGICAL_MULT = 4
OFFLOAD_BATCH = 4
OFFLOAD_PROMPT_LEN = 96
OFFLOAD_DECODE_TOKENS = 16

# Speculative-decoding geometry: 1k context, draft length 8, the n-gram
# (prompt-lookup) drafter — drafting is model-free, so the speedup comes
# purely from the multi-token verify pass amortizing per-step work.  The
# window self-draft variant is timed alongside as the paper-aligned
# configuration (sparse cache as the cheap approximation); in this
# dispatch-bound NumPy regime its drafter steps cost as much as target
# steps, so it is pinned as a timing component, not as a speedup claim.
SPEC_CONTEXT = 1024
SPEC_DRAFT_K = 8


def _model(max_seq_len: int, dtype: str | None = None, **overrides) -> DecoderLM:
    if dtype is not None and "compute_dtype" in ModelConfig.__dataclass_fields__:
        # The seed implementation predates configurable compute dtypes; this
        # guard lets the same script benchmark both trees.
        overrides["compute_dtype"] = dtype
    config = ModelConfig(
        vocab_size=256,
        d_model=64,
        n_layers=4,
        n_heads=8,
        d_ff=256,
        max_seq_len=max_seq_len,
        positional="rope",
        **overrides,
    )
    return DecoderLM(config, seed=0)


def _time(setup, run, rounds: int) -> dict:
    """Median wall-clock seconds of ``run(*setup())`` over ``rounds`` rounds."""
    times = []
    for _ in range(rounds):
        args = setup() if setup is not None else ()
        start = time.perf_counter()
        run(*args)
        times.append(time.perf_counter() - start)
    return {
        "median_s": statistics.median(times),
        "min_s": min(times),
        "rounds": rounds,
    }


def _decode_loop(model: DecoderLM, manager, next_logits: np.ndarray, n_tokens: int) -> None:
    """The token-generation phase: ``n_tokens`` incremental decode steps."""
    views = manager.layer_views()
    tokens = np.argmax(next_logits[:, -1, :], axis=-1)
    for _ in range(n_tokens):
        logits = model.decode_step(tokens, manager.current_position, views)
        manager.advance()
        tokens = np.argmax(logits, axis=-1)


def bench_decode(model: DecoderLM, policy_name: str, prompt_len: int, rounds: int) -> dict:
    """Time only the decode loop; prompt processing happens in untimed setup."""
    prompt = np.random.default_rng(1).integers(0, 256, size=(1, prompt_len))

    def setup():
        if policy_name == "keyformer":
            policy = make_policy("keyformer", kv_fraction=0.5)
        else:
            policy = make_policy(policy_name)
        generator = Generator(model, policy)
        logits, manager = generator._prompt_forward(prompt, DECODE_TOKENS)
        return (model, manager, logits, DECODE_TOKENS)

    return _time(setup, _decode_loop, rounds)


def bench_generation(model: DecoderLM, policy_name: str, prompt_len: int, rounds: int) -> dict:
    """Time a full ``generate`` call (prompt phase + decode loop)."""
    prompt = np.random.default_rng(1).integers(0, 256, size=prompt_len)
    config = GenerationConfig(max_new_tokens=DECODE_TOKENS)

    def setup():
        if policy_name == "keyformer":
            policy = make_policy("keyformer", kv_fraction=0.5)
        else:
            policy = make_policy(policy_name)
        return (Generator(model, policy),)

    return _time(setup, lambda g: g.generate(prompt, config, sampler=GreedySampler()), rounds)


def bench_prompt_forward(model: DecoderLM, prompt_len: int, rounds: int) -> dict:
    """Time one full-sequence forward pass over a random prompt."""
    ids = np.random.default_rng(0).integers(0, 256, size=(1, prompt_len))
    return _time(None, lambda: model.forward(ids), rounds)


def bench_cache_gather(length: int, rounds: int) -> dict:
    """Time scattered-eviction compaction (``LayerKVCache.gather``)."""
    rng = np.random.default_rng(2)
    keys = rng.normal(size=(4, 8, length, 64))
    indices = np.sort(rng.choice(length, size=(4, 8, length // 2), replace=True), axis=-1)
    # Eight gathers per round: one eviction is only a few milliseconds, so a
    # longer run keeps one scheduler burst from dominating the gated minimum.
    n_caches = 8

    def setup():
        return ([LayerKVCache.from_prompt(keys, keys.copy()) for _ in range(n_caches)],)

    def run(caches):
        for cache in caches:
            cache.gather(indices)

    return _time(setup, run, rounds)


def bench_cache_append(length: int, n_appends: int, rounds: int) -> dict:
    """Time repeated single-token KV appends at a given resident length."""
    rng = np.random.default_rng(3)
    keys = rng.normal(size=(1, 8, length, 64))
    k = rng.normal(size=(1, 8, 64))

    def setup():
        return (LayerKVCache.from_prompt(keys, keys.copy()),)

    def run(cache):
        for i in range(n_appends):
            cache.append(k, k, length + i)

    return _time(setup, run, rounds)


def bench_score_update(policy_cls, length: int, rounds: int) -> dict:
    """Time one policy score-accumulator update at a given context length."""
    rng = np.random.default_rng(4)
    logits = rng.normal(size=(1, 32, length))
    probs = softmax(logits, axis=-1)
    positions = np.broadcast_to(np.arange(length), (1, 32, length))

    def setup():
        if policy_cls is KeyformerPolicy:
            policy = KeyformerPolicy(KeyformerConfig(kv_fraction=0.5))
        else:
            policy = policy_cls()
        policy.setup(n_layers=1, n_heads=32, batch_size=1, prompt_len=2 * length, max_new_tokens=64)
        return (policy,)

    return _time(setup, lambda p: p.step_selection(0, logits, probs, positions, 1), rounds)


def bench_mixed_topk(length: int, rounds: int) -> dict:
    """Time the mixed recent+top-k selection kernel."""
    scores = np.random.default_rng(5).normal(size=(4, 32, length))
    return _time(None, lambda: mixed_topk_selection(scores, length // 2, length // 8), rounds)


# ----------------------------------------------------------------------
# serving: continuous batching vs sequential, aggregate decode throughput
# ----------------------------------------------------------------------
def _serve_model() -> DecoderLM:
    config = ModelConfig(
        vocab_size=256,
        d_model=128,
        n_layers=4,
        n_heads=8,
        d_ff=512,
        max_seq_len=2 * SERVE_PROMPT_LEN + SERVE_TOKENS + 64,
        positional="rope",
    )
    return DecoderLM(config, seed=0)


def _serve_policy_factory(policy_name: str):
    if policy_name == "window":
        return lambda: WindowAttentionPolicy(CachePolicyConfig(kv_budget=SERVE_BUDGET))
    if policy_name == "keyformer":
        return lambda: KeyformerPolicy(KeyformerConfig(kv_budget=SERVE_BUDGET))
    raise KeyError(f"unknown serving policy {policy_name!r}")


def _serve_prompts() -> list[np.ndarray]:
    return [
        np.random.default_rng(i)
        .integers(0, 256, size=SERVE_PROMPT_LEN + 8 * i)
        .astype(np.int64)
        for i in range(SERVE_BATCH)
    ]


def bench_serving(policy_name: str, rounds: int) -> tuple[dict, dict, dict]:
    """Aggregate decode tokens/sec: 4 requests one-by-one vs one continuous batch.

    Prompt processing runs in untimed setup for both sides (it is identical
    work — the engine prefills each request through the same full forward
    pass); timings cover the token-generation phase that serving throughput
    is about.  Returns ``(sequential, batched, speedup)`` component dicts.
    """
    model = _serve_model()
    prompts = _serve_prompts()
    factory = _serve_policy_factory(policy_name)
    total_tokens = SERVE_BATCH * SERVE_TOKENS

    def sequential_setup():
        runs = []
        for prompt in prompts:
            generator = Generator(model, factory())
            logits, manager = generator._prompt_forward(prompt[None, :], SERVE_TOKENS)
            runs.append((manager, logits))
        return (runs,)

    def sequential_run(runs):
        for manager, logits in runs:
            _decode_loop(model, manager, logits, SERVE_TOKENS)

    def batched_setup():
        engine = ContinuousBatchingEngine(
            model, policy_factory=factory, max_batch_size=SERVE_BATCH
        )
        config = GenerationConfig(max_new_tokens=SERVE_TOKENS)
        for prompt in prompts:
            engine.submit(prompt, config, sampler=GreedySampler())
        for state in engine.scheduler.admit(0, 0):
            engine._prefill(state)
        engine._record_rows(range(engine.n_running))
        return (engine,)

    def batched_run(engine):
        while engine.has_work:
            engine._decode()
            engine._record_rows(range(engine.n_running))

    sequential = _time(sequential_setup, sequential_run, rounds)
    batched = _time(batched_setup, batched_run, rounds)
    for timing in (sequential, batched):
        timing["tokens"] = total_tokens
        timing["tokens_per_s"] = round(total_tokens / timing["min_s"], 1)
    speedup = {
        "speedup": round(sequential["min_s"] / batched["min_s"], 2),
        "rounds": rounds,
    }
    return sequential, batched, speedup


def bench_shared_prefix(rounds: int) -> dict[str, dict]:
    """Prefix-sharing payoff: one engine run with sharing on vs off.

    Both sides run the identical request stream (common ``SHARED_PREFIX_LEN``
    prompt prefix, distinct suffixes, short decode) end to end — prefill *is*
    the timed hot path here.  Reports wall-clock for both modes, their ratio,
    and the deterministic prefill-token savings
    (``prompt_tokens / computed_tokens``, machine-independent), both gated as
    dimensionless ratios by ``check_regression.py``.
    """
    from repro.serving.engine import ContinuousBatchingEngine as Engine

    model = _serve_model()
    factory = _serve_policy_factory("window")
    rng = np.random.default_rng(11)
    prefix = rng.integers(0, 256, size=SHARED_PREFIX_LEN)
    prompts = [
        np.concatenate([prefix, rng.integers(0, 256, size=SHARED_SUFFIX_LEN)]).astype(
            np.int64
        )
        for _ in range(SERVE_BATCH)
    ]
    config = GenerationConfig(max_new_tokens=SHARED_DECODE_TOKENS)

    savings = 1.0

    def setup(sharing: bool):
        def build():
            engine = Engine(
                model,
                policy_factory=factory,
                max_batch_size=SERVE_BATCH,
                enable_prefix_sharing=sharing,
            )
            for prompt in prompts:
                engine.submit(prompt, config, sampler=GreedySampler())
            return (engine,)

        return build

    def run_shared(engine):
        nonlocal savings
        engine.run()
        savings = engine.prefill_savings

    shared = _time(setup(True), run_shared, rounds)
    unshared = _time(setup(False), lambda engine: engine.run(), rounds)
    total_tokens = SERVE_BATCH * SHARED_DECODE_TOKENS
    for timing in (shared, unshared):
        timing["tokens"] = total_tokens
    return {
        f"serve_shared_prefix_on_{SHARED_PREFIX_LEN}": shared,
        f"serve_shared_prefix_off_{SHARED_PREFIX_LEN}": unshared,
        f"serve_shared_prefix_speedup_{SHARED_PREFIX_LEN}": {
            "speedup": round(unshared["min_s"] / shared["min_s"], 2),
            "rounds": rounds,
        },
        f"serve_shared_prefix_savings_{SHARED_PREFIX_LEN}": {
            # Deterministic counter ratio (prompt tokens / computed tokens):
            # identical on every machine, so the CI floor is exact.
            "speedup": round(savings, 2),
            "rounds": rounds,
        },
    }


def bench_admission_retention() -> dict[str, dict]:
    """Prefix retention under scan churn: W-TinyLFU vs LRU reclaim.

    Replays the deterministic churn trace (see the ``ADMISSION_*`` geometry
    constants) once per ``admission_policy`` at an identical pool budget and
    compares the registry's saved-prefill-token counters.  **Deterministic**
    (identical in smoke and full runs, on every machine): the trace is a
    pure function of a pinned seed, and the counters are exact integers —
    so the retention ratio is gated exactly by ``check_regression.py``.
    Wall clock is irrelevant here and never measured.
    """
    model = DecoderLM(
        ModelConfig(
            vocab_size=96,
            d_model=32,
            n_layers=2,
            n_heads=4,
            d_ff=64,
            max_seq_len=256,
            positional="rope",
        ),
        seed=0,
    )
    config = GenerationConfig(max_new_tokens=4)

    def replay(admission_policy: str) -> tuple[int, float]:
        rng = np.random.default_rng(7)
        hot = rng.integers(0, 96, size=ADMISSION_HOT_LEN).astype(np.int64)
        scans = iter(
            rng.integers(0, 96, size=ADMISSION_SCAN_LEN).astype(np.int64)
            for _ in range(ADMISSION_SCANS_PER_BURST * ADMISSION_BURSTS)
        )
        engine = ContinuousBatchingEngine(
            model,
            max_batch_size=2,
            max_pool_tokens=ADMISSION_POOL_TOKENS,
            admission_policy=admission_policy,
        )

        def serve(prompt):
            engine.submit(prompt, config, sampler=GreedySampler())
            engine.run()

        serve(hot)
        serve(hot)  # second pass promotes the hot chunks into protected
        for _ in range(ADMISSION_BURSTS):
            for _ in range(ADMISSION_SCANS_PER_BURST):
                serve(next(scans))
            serve(hot)
        registry = engine._manager.registry
        return registry.telemetry()["hit_tokens"], engine.prefill_savings

    lru_tokens, lru_savings = replay("lru")
    wt_tokens, wt_savings = replay("wtinylfu")
    return {
        "prefix_admission_hit_tokens_lru": {
            "hit_tokens": lru_tokens,
            "prefill_savings": round(lru_savings, 4),
        },
        "prefix_admission_hit_tokens_wtinylfu": {
            "hit_tokens": wt_tokens,
            "prefill_savings": round(wt_savings, 4),
        },
        "prefix_admission_retention": {
            # Saved-prefill-token ratio at equal pool budget — exact integer
            # counters, so the CI floor is exact.
            "speedup": round(wt_tokens / max(1, lru_tokens), 2),
            "rounds": 1,
        },
    }


# ----------------------------------------------------------------------
# quantized KV pages: memory ratios (gated) + accuracy delta (reported)
# ----------------------------------------------------------------------
def bench_quantized_kv() -> dict[str, dict]:
    """Memory win and accuracy cost of ``kv_dtype="int8"`` at 1k context.

    Deterministic, gated components (exact on every machine):

    * ``quant_kv_bytes_ratio_*`` — resident KV bytes/token of the
      full-precision store divided by the int8 store's, both *measured* from
      live pools holding a 1k-token sequence (acceptance floor: >= 1/0.55x).
    * ``quant_concurrency_ratio_*`` — resident tokens (hence concurrent
      sequences of a fixed per-request budget) a ``QUANT_POOL_BUDGET``-byte
      engine pool funds with int8 pages vs full-precision pages
      (acceptance floor: >= 2x).

    Informational components: greedy int8-vs-full-precision decode agreement,
    per-token
    log-probability MSE, final-step logit MSE and ROUGE-1/L of the generated
    sequences (the fig13 metric applied to the quantization delta), under
    both full attention and a Keyformer-evicted cache.
    """
    from repro.kvcache.batch import BatchedCacheManager
    from repro.metrics.rouge import rouge_l, rouge_n
    from repro.models.tensor_ops import log_softmax

    model = _serve_model()
    config = model.config
    prompt = np.random.default_rng(17).integers(
        0, 256, size=(1, QUANT_CONTEXT)
    ).astype(np.int64)

    # Measured bytes/token: seed the same 1k-token sequence into both stores.
    bytes_used = {}
    for kv_dtype in (None, "int8"):
        manager = BatchedCacheManager(
            n_layers=config.n_layers,
            n_heads=config.n_heads,
            d_head=config.d_head,
            max_batch=1,
            dtype=config.np_dtype,
            rope_dims=config.rope_dims,
            kv_dtype=kv_dtype,
        )
        rng = np.random.default_rng(3)
        keys = rng.normal(size=(1, config.n_heads, QUANT_CONTEXT, config.d_head))
        pos = np.broadcast_to(
            np.arange(QUANT_CONTEXT), (1, config.n_heads, QUANT_CONTEXT)
        )
        for cache in manager.caches:
            cache.join_row(0, keys, keys, pos)
        bytes_used[kv_dtype] = manager.pool_usage()["bytes_used"]
    bytes_ratio = bytes_used[None] / bytes_used["int8"]

    # Engine-level capacity under one fixed byte budget: how many tokens
    # (and therefore fixed-budget sequences) the pool can hold resident.
    tokens = {}
    for kv_dtype in (None, "int8"):
        engine = ContinuousBatchingEngine(
            model, max_pool_bytes=QUANT_POOL_BUDGET, kv_dtype=kv_dtype
        )
        tokens[kv_dtype] = engine.max_pool_tokens
    concurrency_ratio = tokens["int8"] / tokens[None]

    # Accuracy delta: greedy full-precision vs int8 generation, same prompt.
    accuracy = {}
    for policy_name in ("full", "keyformer"):
        results = {}
        logits_final = {}
        for kv_dtype in (None, "int8"):
            if policy_name == "keyformer":
                policy = make_policy("keyformer", kv_fraction=0.5)
            else:
                policy = make_policy(policy_name)
            generator = Generator(model, policy, kv_dtype=kv_dtype)
            logits, manager = generator._prompt_forward(prompt, DECODE_TOKENS)
            views = manager.layer_views()
            toks, logprobs = [], []
            step_logits = logits[:, -1, :]
            for _ in range(DECODE_TOKENS):
                token = int(np.argmax(step_logits[0]))
                toks.append(token)
                logprobs.append(float(log_softmax(step_logits, axis=-1)[0, token]))
                step_logits = model.decode_step(
                    np.asarray([token]), manager.current_position, views
                )
                manager.advance()
            results[kv_dtype] = (toks, np.asarray(logprobs))
            logits_final[kv_dtype] = step_logits[0]
        ref_tokens, ref_lp = results[None]
        q_tokens, q_lp = results["int8"]
        ref_text = " ".join(map(str, ref_tokens))
        q_text = " ".join(map(str, q_tokens))
        accuracy[policy_name] = {
            "token_agreement": float(np.mean(np.asarray(ref_tokens) == q_tokens)),
            "logprob_mse": float(np.mean((ref_lp - q_lp) ** 2)),
            "logit_mse": float(
                np.mean((logits_final[None] - logits_final["int8"]) ** 2)
            ),
            "rouge1_f": round(rouge_n(q_text, ref_text, 1).f1, 4),
            "rougeL_f": round(rouge_l(q_text, ref_text).f1, 4),
            "tokens": DECODE_TOKENS,
        }

    return {
        f"quant_kv_bytes_ratio_{QUANT_CONTEXT}": {
            "speedup": round(bytes_ratio, 2),
            "bytes_per_token_native": round(bytes_used[None] / QUANT_CONTEXT, 1),
            "bytes_per_token_int8": round(bytes_used["int8"] / QUANT_CONTEXT, 1),
            "rounds": 1,
        },
        f"quant_concurrency_ratio_{QUANT_CONTEXT}": {
            "speedup": round(concurrency_ratio, 2),
            "pool_budget_bytes": QUANT_POOL_BUDGET,
            "resident_tokens_native": tokens[None],
            "resident_tokens_int8": tokens["int8"],
            "rounds": 1,
        },
        f"quant_accuracy_full_{QUANT_CONTEXT}": accuracy["full"],
        f"quant_accuracy_keyformer_{QUANT_CONTEXT}": accuracy["keyformer"],
    }


# ----------------------------------------------------------------------
# tiered KV offload: resident-capacity amplification under one byte budget
# ----------------------------------------------------------------------
def bench_offload_capacity() -> dict[str, dict]:
    """Serving capacity a fixed tier-0 byte budget funds with KV offload on.

    Two engines get the **same byte budget** (see the ``OFFLOAD_*`` geometry
    constants): the baseline spends it as its entire page pool
    (``max_pool_bytes``), the tiered engine as tier-0 residency
    (``tier0_budget``) under a 4x larger logical pool whose cold pages spill
    to the compressed arena.  Both serve the identical 4-request workload;
    the gated ``speedup`` is the ratio of **peak live mapped pages** — the
    KV data each engine could keep in flight per byte of tier-0 memory.
    **Deterministic** (pure page accounting on a pinned greedy workload, no
    wall clock), so check_regression.py gates the pinned ratio exactly; the
    component additionally hard-fails unless both engines' outputs are
    bit-identical (offload must never show up in the tokens) and the tiered
    engine actually produced spill/restore traffic (the ratio would
    otherwise measure nothing).
    """
    from repro.kvcache.paged import PagedKVStore

    model = _model(max_seq_len=512)
    config = model.config
    page_bytes = PagedKVStore.page_nbytes_for(
        None,
        config.n_heads,
        config.d_head,
        16,
        config.np_dtype,
        config.rope_dims,
    )
    budget = OFFLOAD_FRAMES * config.n_layers * page_bytes
    rng = np.random.default_rng(29)
    prompts = [
        rng.integers(0, 256, size=OFFLOAD_PROMPT_LEN).astype(np.int64)
        for _ in range(OFFLOAD_BATCH)
    ]
    gen_config = GenerationConfig(max_new_tokens=OFFLOAD_DECODE_TOKENS)

    def serve(offload: bool) -> tuple[list, int, dict]:
        if offload:
            engine = ContinuousBatchingEngine(
                model,
                max_batch_size=OFFLOAD_BATCH,
                max_pool_tokens=OFFLOAD_LOGICAL_MULT * OFFLOAD_FRAMES * 16,
                tier0_budget=budget,
                spill_backend="compressed",
                enable_prefix_sharing=False,
            )
        else:
            engine = ContinuousBatchingEngine(
                model,
                max_batch_size=OFFLOAD_BATCH,
                max_pool_bytes=budget,
                enable_prefix_sharing=False,
            )
        states = [
            engine.submit(p, gen_config, sampler=GreedySampler()) for p in prompts
        ]
        peak_pages = 0
        while engine.has_work:
            engine.step()
            usage = engine.pool_usage()
            peak_pages = max(peak_pages, usage.get("pages_used", 0))
        outputs = [(s.tokens, s.result().log_probs) for s in states]
        return outputs, peak_pages, engine.pool_usage().get("tier", {})

    base_outputs, base_peak, _ = serve(offload=False)
    tier_outputs, tier_peak, tier = serve(offload=True)
    if tier_outputs != base_outputs:
        raise AssertionError(
            "offload engine outputs diverged from the no-offload baseline"
        )
    if not (tier.get("spills", 0) > 0 and tier.get("restores", 0) > 0):
        raise AssertionError(
            "offload engine produced no spill traffic — capacity ratio is vacuous"
        )
    return {
        "offload_capacity_ratio": {
            # Peak live mapped pages per fixed tier-0 byte budget, offload
            # over baseline — exact page counters, so the CI floor is exact.
            "speedup": round(tier_peak / max(1, base_peak), 2),
            "tier0_budget_bytes": int(budget),
            "peak_pages_no_offload": int(base_peak),
            "peak_pages_offload": int(tier_peak),
            "spills": int(tier["spills"]),
            "restores": int(tier["restores"]),
            "outputs_identical": True,
            "rounds": 1,
        }
    }


# ----------------------------------------------------------------------
# speculative decoding: draft-then-verify vs vanilla greedy decode
# ----------------------------------------------------------------------
def bench_spec_decode(rounds: int) -> dict[str, dict]:
    """Decode throughput of speculative vs vanilla greedy decoding at 1k context.

    All components run the inference dtype (float32) and time only the
    token-generation phase — the prompt forward and drafter seeding happen in
    untimed setup.  The baseline is the same full-attention greedy decode the
    ``decode_full_*`` components measure; the speculative sides run the
    n-gram drafter (model-free drafting, the throughput configuration) and
    window self-drafting (the paper-aligned sparse-cache drafter).  The
    ngram-vs-baseline ratio is pinned as a dimensionless ``speedup`` and
    gated by ``check_regression.py`` like the serving ratios.
    """
    model = _model(max_seq_len=2 * SPEC_CONTEXT + 64, dtype="float32")
    prompt = np.random.default_rng(1).integers(0, 256, size=(1, SPEC_CONTEXT))
    config = GenerationConfig(max_new_tokens=DECODE_TOKENS)

    def baseline_setup():
        generator = Generator(model, make_policy("full"))
        logits, manager = generator._prompt_forward(prompt, DECODE_TOKENS)
        return (model, manager, logits, DECODE_TOKENS)

    baseline = _time(baseline_setup, _decode_loop, rounds)

    acceptance: dict[str, float] = {}

    def spec_components(name: str, spec: SpeculationConfig) -> dict:
        generator = SpeculativeGenerator(model, spec)

        def setup():
            return (generator._prepare(prompt, config),)

        def run(session):
            result = generator._run(session)
            acceptance[name] = result.speculation["acceptance_rate"]

        return _time(setup, run, rounds)

    ngram = spec_components(
        "ngram", SpeculationConfig(k=SPEC_DRAFT_K, drafter="ngram")
    )
    window = spec_components(
        "window",
        SpeculationConfig(k=SPEC_DRAFT_K, drafter="window", kv_fraction=0.25),
    )
    for timing, name in ((baseline, None), (ngram, "ngram"), (window, "window")):
        timing["tokens"] = DECODE_TOKENS
        timing["tokens_per_s"] = round(DECODE_TOKENS / timing["min_s"], 1)
        if name is not None:
            timing["acceptance_rate"] = acceptance[name]
    return {
        f"spec_decode_baseline_{SPEC_CONTEXT}": baseline,
        f"spec_decode_ngram_{SPEC_CONTEXT}": ngram,
        f"spec_decode_window_{SPEC_CONTEXT}": window,
        f"spec_decode_speedup_ngram_{SPEC_CONTEXT}": {
            "speedup": round(baseline["min_s"] / ngram["min_s"], 2),
            "rounds": rounds,
        },
    }


def bench_chaos_recovery(rounds: int) -> dict[str, dict]:
    """Wall-clock overhead of fault recovery (informational, not gated).

    Runs the same 4-request serving workload twice — fault-free, then with a
    pinned seeded ``FaultInjector`` aggressive enough to force retries at
    every injection point class — and records the dimensionless
    ``overhead_ratio`` (faulted / clean median wall-clock) plus the fault and
    retry counts.  The keys deliberately avoid ``min_s``/``speedup`` so
    ``check_regression.py`` treats the component as informational: recovery
    cost tracks fault *placement*, which the pinned seed keeps stable, but a
    gate on it would really be gating the injection schedule.
    """
    from repro.serving.faults import FaultInjector

    model = _model(max_seq_len=512)
    prompt_rng = np.random.default_rng(11)
    prompts = [prompt_rng.integers(0, 256, size=n) for n in (96, 48, 72, 60)]
    config = GenerationConfig(max_new_tokens=24)
    telemetry: dict[str, int] = {"faults": 0, "retries": 0}

    def run_workload(faults):
        engine = ContinuousBatchingEngine(
            model,
            max_batch_size=SERVE_BATCH,
            enable_prefix_sharing=False,
            faults=faults,
            max_retries=3,
            retry_backoff_steps=1,
        )
        for prompt in prompts:
            engine.submit(prompt, config, sampler=GreedySampler())
        engine.run()
        if faults is not None:
            stats = engine.fault_telemetry()
            telemetry["faults"] = stats["faults"]
            telemetry["retries"] = stats["retries"]

    clean = _time(None, lambda: run_workload(None), rounds)
    faulted = _time(None, lambda: run_workload(FaultInjector(rate=0.02, seed=7)), rounds)
    return {
        "chaos_recovery_overhead": {
            "overhead_ratio": round(faulted["median_s"] / clean["median_s"], 3),
            "clean_median_s": clean["median_s"],
            "faulted_median_s": faulted["median_s"],
            "faults_injected": telemetry["faults"],
            "retries": telemetry["retries"],
            "rounds": rounds,
        }
    }


# ----------------------------------------------------------------------
# trace-driven load latency: percentile telemetry + chunked-prefill gate
# ----------------------------------------------------------------------
def bench_load_latency() -> dict[str, dict]:
    """Latency-distribution components from trace replays in virtual time.

    Both components are **deterministic**: the load harness measures TTFT /
    TPOT in virtual step-time (an analytical cost per engine step — see
    ``docs/workloads.md``), so the same pinned trace yields the same
    percentiles on every machine, and identical values in smoke and full
    runs.

    * ``load_ttft_zipf_trace`` — informational p50/p99 TTFT and TPOT plus
      goodput for a Zipf-shared mixed-length trace under the priority
      scheduler with chunked prefill (the harness's default shape).
    * ``load_chunked_ttft_gain_32`` — **gated** ratio: interactive-tier p99
      TTFT of the unchunked scheduler divided by the chunked one (budget 32)
      on a trace mixing a few long batch-tier prompts into a stream of short
      interactive ones, at equal throughput (the ``throughput_ratio`` key
      records how close).  Chunking caps the stall a long prefill inflicts
      on its neighbours, which is exactly what the interactive tail sees.
    """
    from repro.perfmodel.serving import StepCostModel
    from repro.serving.slo import (
        TIER_BATCH,
        TIER_INTERACTIVE,
        PriorityScheduler,
        SLOSpec,
    )
    from repro.serving.workload import (
        Trace,
        TraceEvent,
        WorkloadConfig,
        generate_trace,
        replay_trace,
    )

    config = ModelConfig(
        vocab_size=128,
        d_model=64,
        n_layers=2,
        n_heads=4,
        d_ff=128,
        max_seq_len=512,
        positional="rope",
    )
    model = DecoderLM(config, seed=0)
    cost = StepCostModel()

    def replay(trace, chunk_tokens, max_batch_size=8):
        scheduler = PriorityScheduler(
            max_batch_size=max_batch_size, prefill_chunk_tokens=chunk_tokens
        )
        engine = ContinuousBatchingEngine(model, scheduler=scheduler)
        result = replay_trace(
            engine, trace, cost, slo=SLOSpec.three_tier(ttft=200.0, e2e=1200.0)
        )
        return result.report.to_dict(), result.engine_stats

    # Percentile telemetry: Zipf-shared, mixed prompt/output lengths.
    zipf_trace = generate_trace(
        WorkloadConfig(
            n_requests=32,
            vocab_size=128,
            arrival="bursty",
            mean_interarrival=8.0,
            prompt_len_range=(8, 96),
            output_len_choices=(4, 16, 48),
            output_len_weights=(0.3, 0.5, 0.2),
            tier_weights={TIER_BATCH: 0.3, 1: 0.5, TIER_INTERACTIVE: 0.2},
        ),
        seed=0,
    )
    zipf_report, zipf_stats = replay(zipf_trace, chunk_tokens=32, max_batch_size=4)

    # Chunked-prefill gate geometry: every 7th request is a long batch-tier
    # prompt; the rest are short interactive ones whose TTFT tail measures
    # the prefill stall.  Prompts are unique (no shared prefix) so prefix
    # sharing cannot shortcut the long prefills under test.
    rng = np.random.default_rng(0)
    events = []
    t = 0.0
    for i in range(28):
        t += float(rng.exponential(4.0))
        if i % 7 == 0:
            prompt = tuple(int(x) for x in rng.integers(0, 128, size=300))
            events.append(TraceEvent(t, prompt, 16, priority=TIER_BATCH))
        else:
            prompt = tuple(int(x) for x in rng.integers(0, 128, size=12))
            events.append(TraceEvent(t, prompt, 8, priority=TIER_INTERACTIVE))
    gate_trace = Trace(events=tuple(events), seed=0)

    unchunked, _ = replay(gate_trace, chunk_tokens=None)
    chunked, chunk_stats = replay(gate_trace, chunk_tokens=32)
    tier = str(TIER_INTERACTIVE)
    p99_unchunked = unchunked["per_tier"][tier]["ttft"]["p99"]
    p99_chunked = chunked["per_tier"][tier]["ttft"]["p99"]
    throughput_ratio = (
        chunked["throughput"]["tokens_per_time"]
        / unchunked["throughput"]["tokens_per_time"]
    )

    return {
        "load_ttft_zipf_trace": {
            "ttft_p50": zipf_report["ttft"]["p50"],
            "ttft_p99": zipf_report["ttft"]["p99"],
            "tpot_p50": zipf_report["tpot"]["p50"],
            "tpot_p99": zipf_report["tpot"]["p99"],
            "goodput": zipf_report["goodput"],
            "n_requests": zipf_report["n_requests"],
            "n_prefill_chunks": zipf_stats["n_prefill_chunks"],
            "rounds": 1,
        },
        "load_chunked_ttft_gain_32": {
            "speedup": round(p99_unchunked / p99_chunked, 2),
            "ttft_p99_unchunked": p99_unchunked,
            "ttft_p99_chunked": p99_chunked,
            "throughput_ratio": round(throughput_ratio, 3),
            "n_prefill_chunks": chunk_stats["n_prefill_chunks"],
            "rounds": 1,
        },
    }


# ----------------------------------------------------------------------
# sharded serving: aggregate throughput scaling across engine replicas
# ----------------------------------------------------------------------
def bench_shard_scaling() -> dict[str, dict]:
    """Aggregate decode throughput of 4 sharded replicas vs a single engine.

    **Deterministic** (identical in smoke and full runs): both sides replay
    the same pinned shared-prefix Zipf trace in virtual step-time, where a
    sharded super-step costs the *slowest* replica's step — the virtual
    clock models replicas running on parallel hardware, which is the only
    machine-independent way to gate scaling (wall clock on a single-core CI
    box would serialize the workers and gate nothing).  The inline backend
    runs the exact worker-server code in-process; the multiprocessing
    transport produces bit-identical reports (``make load-smoke`` and the
    sharded test suite pin that), so this measures routing + scheduling,
    not pickling.

    ``shard_scaling_throughput_4x`` is **gated** on ``speedup``: completed
    tokens per virtual-time unit for a 4-replica
    :class:`~repro.serving.sharded.ShardedEngine` behind the
    prefix-affinity router (``spill_load=6``, so a hot prefix overflows its
    owner once the owner's backlog exceeds one and a half batches), over
    the single engine on the same trace.  The saturated bound is ~4x (four
    batches of decode rows per super-step); arrival gaps and prefill dilute
    it — the acceptance floor is 2x.

    The ``*_affinity_only`` keys record the same 4-replica run with
    spilling disabled: the Zipf head concentrates on one replica, which
    preserves the full single-engine prefix savings (``prefill_savings_*``)
    but caps the speedup — the affinity/balance tradeoff ``spill_load``
    exists to tune.
    """
    from repro.perfmodel.serving import StepCostModel
    from repro.serving.scheduler import PagedScheduler
    from repro.serving.sharded import PrefixAffinityRouter, ReplicaSpec, ShardedEngine
    from repro.serving.workload import WorkloadConfig, generate_trace, replay_trace

    config = ModelConfig(
        vocab_size=128,
        d_model=64,
        n_layers=2,
        n_heads=4,
        d_ff=128,
        max_seq_len=512,
        positional="rope",
    )
    # Arrivals fast enough to keep 4 replicas' batches fed; a hot Zipf
    # prefix pool so routing quality shows up in prefill_savings.
    trace = generate_trace(
        WorkloadConfig(
            n_requests=48,
            vocab_size=128,
            mean_interarrival=0.5,
            n_prefixes=4,
            prefix_share_prob=0.8,
            prefix_len_pages=2,
            suffix_len_range=(4, 16),
            prompt_len_range=(8, 48),
            output_len_choices=(16,),
            output_len_weights=(1.0,),
        ),
        seed=7,
    )
    cost = StepCostModel()

    def single() -> tuple[float, float]:
        engine = ContinuousBatchingEngine(
            DecoderLM(config, seed=0), scheduler=PagedScheduler(max_batch_size=4)
        )
        result = replay_trace(engine, trace, cost)
        tput = result.report.to_dict()["throughput"]["tokens_per_time"]
        return tput, engine.prefill_savings

    def sharded(n: int, spill_load: int | None) -> tuple[float, float, dict]:
        spec = ReplicaSpec(model_config=config, model_seed=0, max_batch_size=4)
        router = PrefixAffinityRouter(n, spill_load=spill_load)
        engine = ShardedEngine(spec, n, router=router, backend="inline")
        try:
            result = replay_trace(engine, trace, cost)
            tput = result.report.to_dict()["throughput"]["tokens_per_time"]
            return tput, engine.prefill_savings, engine.router.telemetry()
        finally:
            engine.shutdown()

    tput_1, savings_1 = single()
    tput_2, _, _ = sharded(2, spill_load=6)
    tput_4, savings_4, router = sharded(4, spill_load=6)
    tput_aff, savings_aff, _ = sharded(4, spill_load=None)

    return {
        "shard_scaling_throughput_4x": {
            "speedup": round(tput_4 / tput_1, 2),
            "speedup_2x": round(tput_2 / tput_1, 2),
            "speedup_affinity_only": round(tput_aff / tput_1, 2),
            "tokens_per_vtime_single": round(tput_1, 4),
            "tokens_per_vtime_sharded2": round(tput_2, 4),
            "tokens_per_vtime_sharded4": round(tput_4, 4),
            "prefill_savings_single": round(savings_1, 3),
            "prefill_savings_sharded4": round(savings_4, 3),
            "prefill_savings_affinity_only": round(savings_aff, 3),
            "n_spilled": router["n_spilled"],
            "rounds": 1,
        }
    }


def run_suite(smoke: bool = False) -> dict:
    """Run every component and return ``name -> timing`` results.

    The headline ``decode_*`` components run at the inference compute dtype
    (float32 when the tree supports it — the documented deployment default);
    the ``_f64`` variants isolate the structural slab/rotation win at the
    bit-exact training/test dtype.
    """
    rounds = 2 if smoke else 3
    decode_rounds = 3 if smoke else 5
    fast_rounds = 3 if smoke else 7
    # The 256-token decode components run in BOTH modes so the CI regression
    # gate can compare the smoke run against the pinned full report by name;
    # the full run additionally benchmarks the long-context 1024 geometry.
    decode_ctxs = (256,) if smoke else (256, 1024)

    model_small = _model(max_seq_len=1024)

    components: dict[str, dict] = {}
    components["prompt_forward_256"] = bench_prompt_forward(model_small, 256, rounds)
    components["generation_keyformer_128"] = bench_generation(model_small, "keyformer", 128, rounds)
    components["generation_full_128"] = bench_generation(model_small, "full", 128, rounds)
    for ctx in decode_ctxs:
        model_ctx_inf = _model(max_seq_len=2 * ctx + 64, dtype="float32")
        model_ctx_f64 = _model(max_seq_len=2 * ctx + 64)
        components[f"decode_keyformer_{ctx}"] = bench_decode(
            model_ctx_inf, "keyformer", ctx, decode_rounds
        )
        components[f"decode_full_{ctx}"] = bench_decode(
            model_ctx_inf, "full", ctx, decode_rounds
        )
        components[f"decode_keyformer_{ctx}_f64"] = bench_decode(
            model_ctx_f64, "keyformer", ctx, decode_rounds
        )
        components[f"decode_full_{ctx}_f64"] = bench_decode(
            model_ctx_f64, "full", ctx, decode_rounds
        )
    components["cache_gather_1024"] = bench_cache_gather(1024, fast_rounds)
    # 256 appends per round: the per-append cost is ~microseconds, so a
    # longer run keeps one scheduler burst from dominating the minimum (the
    # regression gate compares min_s across machines).
    components["cache_append_1024"] = bench_cache_append(1024, 256, fast_rounds)
    # Serving benchmark: same geometry in smoke and full runs so the CI
    # regression gate can compare against the pinned report by name.  The
    # serving ratios are gated directly (no machine normalization), so they
    # get extra rounds — the min of too few rounds is noisy on shared boxes.
    serve_rounds = 4 if smoke else 6
    for serve_policy in ("window", "keyformer"):
        sequential, batched, speedup = bench_serving(serve_policy, serve_rounds)
        components[f"serve_seq{SERVE_BATCH}_{serve_policy}_{SERVE_PROMPT_LEN}"] = sequential
        components[f"serve_batch{SERVE_BATCH}_{serve_policy}_{SERVE_PROMPT_LEN}"] = batched
        components[f"serve_speedup_{serve_policy}_{SERVE_PROMPT_LEN}"] = speedup
    components.update(bench_shared_prefix(serve_rounds))
    # Admission retention is deterministic counter accounting on a pinned
    # churn trace — identical in smoke and full runs, gated exactly.
    components.update(bench_admission_retention())
    # Quantized-KV components are deterministic byte accounting plus a fixed
    # greedy accuracy probe — identical in smoke and full runs, so the CI
    # gate compares the pinned memory ratios exactly.
    components.update(bench_quantized_kv())
    # Tiered-offload capacity: deterministic page accounting under one byte
    # budget, identical in smoke and full runs; the ratio is gated exactly
    # and the component itself asserts bit-identical outputs.
    components.update(bench_offload_capacity())
    # Speculative decoding runs the same 1k geometry in smoke and full modes
    # so the CI gate can compare the pinned speedup ratio by name.
    components.update(bench_spec_decode(3 if smoke else 5))
    # Fault-recovery overhead: pinned-seed fault campaign vs its fault-free
    # twin; informational only (no min_s/speedup keys), see the docstring.
    components.update(bench_chaos_recovery(rounds))
    # Trace-driven load latency: deterministic virtual-time percentiles, the
    # same in smoke and full runs; the chunked-prefill TTFT gain is gated.
    components.update(bench_load_latency())
    # Sharded serving: deterministic virtual-time replica-scaling ratio on a
    # shared-prefix Zipf trace; the 4-replica aggregate throughput is gated.
    components.update(bench_shard_scaling())
    if not smoke:
        components["keyformer_score_update_1025"] = bench_score_update(
            KeyformerPolicy, 1025, fast_rounds
        )
        components["h2o_score_update_1025"] = bench_score_update(H2OPolicy, 1025, fast_rounds)
        components["mixed_topk_2048"] = bench_mixed_topk(2048, fast_rounds)
    return components


def main() -> None:
    """CLI entry point: run the suite (or --smoke subset) and write the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--smoke", action="store_true", help="fast CI subset")
    parser.add_argument(
        "--compare", type=Path, default=None, help="older report to embed as baseline"
    )
    args = parser.parse_args()

    components = run_suite(smoke=args.smoke)

    report = {
        "meta": {
            "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "numpy": np.__version__,
            "python": platform.python_version(),
            "smoke": args.smoke,
            "decode_tokens": DECODE_TOKENS,
        },
        "components": components,
    }

    if args.compare is not None and args.compare.exists():
        baseline = json.loads(args.compare.read_text())
        base_components = baseline.get("components", baseline)
        report["baseline"] = base_components
        # Speedups compare best-observed (min) times: on shared single-core
        # machines the minimum is robust to scheduler interference, while the
        # median of either run can be inflated by an unlucky burst.
        report["speedup_vs_baseline"] = {
            name: round(base_components[name]["min_s"] / timing["min_s"], 2)
            for name, timing in components.items()
            if name in base_components
            and "min_s" in base_components[name]
            and timing.get("min_s", 0) > 0
        }

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\n[written to {args.output}]")


if __name__ == "__main__":
    main()
