"""Multi-turn conversation with persona recall under KV-cache eviction (SODA analogue).

Builds a dialogue whose opening turns state persona facts, pads it with small
talk, then asks about one of the persona facts.  Window attention forgets the
persona once the dialogue grows; Keyformer keeps the persona tokens as key
tokens and can still answer — the conversation workload of the paper's
evaluation (Figure 7, bottom row).

Run with:
    python examples/conversation_assistant.py
"""

from __future__ import annotations

import numpy as np

from repro import GenerationConfig, Generator, make_policy
from repro.data.conversation import ConversationConfig, ConversationDataset
from repro.data.world import SyntheticWorld
from repro.models.model_zoo import load_or_train


def main() -> None:
    print("Loading the MPT-mini analogue (used as the chat model)...")
    model, tokenizer, _ = load_or_train("mpt_mini")

    dataset = ConversationDataset(
        SyntheticWorld(0), ConversationConfig(n_examples=3, n_filler_turns=(8, 10), seed=777)
    )
    example = dataset[0]
    prompt_ids = (
        [tokenizer.vocab.bos_id]
        + tokenizer.encode(example.prompt_text())
        + [tokenizer.vocab.sep_id]
    )
    config = GenerationConfig(max_new_tokens=12, eos_token_id=tokenizer.vocab.eos_id)

    print("\nDialogue (persona facts appear in the opening turns):")
    print("  " + example.dialogue[:280] + "...")
    print("\nFinal user question:", example.question)
    print("Expected reply      :", example.response)

    policies = [
        ("full attention", make_policy("full")),
        ("window attention @ 30%", make_policy("window", kv_fraction=0.3)),
        ("H2O @ 30%", make_policy("h2o", kv_fraction=0.3)),
        ("Keyformer @ 30%", make_policy("keyformer", kv_fraction=0.3, recent_ratio=0.3)),
    ]
    print("\nAssistant replies under different KV-cache policies:")
    for label, policy in policies:
        generator = Generator(model, policy)
        result = generator.generate(np.asarray(prompt_ids), config)
        reply = tokenizer.decode(result.sequences[0])
        peak = result.cache_stats.peak_cache_length()
        print(f"  {label:26s} (peak cache {peak:4d}): {reply}")


if __name__ == "__main__":
    main()
