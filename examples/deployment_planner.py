"""Deployment planning with the analytical A100 performance model.

Answers the capacity-planning questions behind the paper's performance
evaluation for a full-size model (MPT-7B by default): how does latency break
down between weights, KV-cache movement and compute; what speedup does a given
KV-cache budget buy; and what batch size fits on the GPU before and after
cache reduction (Figures 1, 9, 10 and Table 1 — without needing the GPU).

Run with:
    python examples/deployment_planner.py --prompt 4096 --generate 4096 --kv-fraction 0.5
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ResultTable
from repro.perfmodel.hardware import A100_40GB, A100_80GB
from repro.perfmodel.latency import AttentionPolicyOverhead, LatencyModel
from repro.perfmodel.memory import CEREBRAS_GPT_6_7B, GPT_J_6B, MPT_7B, MemoryModel
from repro.perfmodel.throughput import ThroughputModel

MODELS = {"mpt-7b": MPT_7B, "gpt-j-6b": GPT_J_6B, "cerebras-gpt-6.7b": CEREBRAS_GPT_6_7B}
GPUS = {"a100-80gb": A100_80GB, "a100-40gb": A100_40GB}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", choices=sorted(MODELS), default="mpt-7b")
    parser.add_argument("--gpu", choices=sorted(GPUS), default="a100-80gb")
    parser.add_argument("--prompt", type=int, default=2048)
    parser.add_argument("--generate", type=int, default=2048)
    parser.add_argument("--beam", type=int, default=4)
    parser.add_argument("--kv-fraction", type=float, default=0.5)
    args = parser.parse_args()

    spec = MODELS[args.model]
    gpu = GPUS[args.gpu]
    latency = LatencyModel(spec, gpu)
    throughput = ThroughputModel(spec, gpu)
    memory = MemoryModel(spec)
    overhead = AttentionPolicyOverhead.keyformer()

    print(f"Model: {spec.name}  ({spec.n_parameters() / 1e9:.2f} B parameters, "
          f"{memory.model_bytes() / 1e9:.1f} GB fp16)")
    print(
        f"GPU:   {gpu.name}  "
        f"({gpu.hbm_bandwidth_gbps:.0f} GB/s HBM, {gpu.hbm_capacity_gb:.0f} GB)"
    )
    print(f"Workload: prompt {args.prompt} + generate {args.generate}, beam {args.beam}\n")

    table = ResultTable(
        name="latency breakdown",
        headers=["policy", "kv_budget", "total_s", "kv_movement_s", "kv_share", "speedup"],
    )
    full = latency.generation_breakdown(args.prompt, args.generate, 1, args.beam, 1.0)
    table.add_row("full", 1.0, full.total_time, full.kv_data_movement_time,
                  full.kv_movement_fraction, 1.0)
    reduced = latency.generation_breakdown(
        args.prompt, args.generate, 1, args.beam, args.kv_fraction, overhead
    )
    table.add_row(
        "keyformer", args.kv_fraction, reduced.total_time, reduced.kv_data_movement_time,
        reduced.kv_movement_fraction, full.total_time / reduced.total_time,
    )
    print(table.to_text(precision=3))

    kv_full = memory.kv_cache_bytes(args.prompt + args.generate, 1, args.beam) / 1e9
    kv_reduced = memory.kv_cache_bytes(
        max(int(args.kv_fraction * args.prompt), 1), 1, args.beam
    ) / 1e9
    print(f"\nKV cache: {kv_full:.1f} GB (full) -> {kv_reduced:.1f} GB "
          f"({args.kv_fraction:.0%} budget)")

    max_full = throughput.max_feasible_batch(args.prompt, args.generate, 1.0, args.beam)
    max_reduced = throughput.max_feasible_batch(
        args.prompt, args.generate, args.kv_fraction, args.beam
    )
    print(f"Max batch size: {max_full} (full attention) -> {max_reduced} (reduced cache)")

    best = throughput.evaluate(
        args.prompt, args.generate, max(max_reduced, 1), args.beam, args.kv_fraction, overhead
    )
    base = throughput.evaluate(args.prompt, args.generate, max(max_full, 1), args.beam, 1.0)
    if base.oom:
        print("Full attention does not fit at all -> throughput gain is unbounded (OOM baseline).")
    else:
        print(
            f"Throughput: {base.tokens_per_second:.1f} tok/s (full, BS={max(max_full, 1)}) -> "
            f"{best.tokens_per_second:.1f} tok/s (keyformer, BS={max(max_reduced, 1)}), "
            f"{best.tokens_per_second / base.tokens_per_second:.2f}x"
        )


if __name__ == "__main__":
    main()
