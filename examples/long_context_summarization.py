"""Long-context summarization under aggressive KV-cache budgets (paper §4.1, Figure 8).

Uses the MPT-storywriter analogue and the GovReport-like long-document dataset
to compare Full Attention, H2O and Keyformer at 10–50 % KV-cache budgets.
This is the workload where cache reduction matters most: the prompt is several
hundred tokens long and the salient facts are buried far from the end.

Run with:
    python examples/long_context_summarization.py [--limit N]
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ResultTable
from repro.core.registry import make_policy
from repro.data.registry import make_dataset
from repro.data.world import SyntheticWorld
from repro.generation.pipeline import SummarizationPipeline
from repro.models.model_zoo import load_or_train


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--limit", type=int, default=4, help="number of documents to summarize")
    parser.add_argument(
        "--budgets", type=float, nargs="+", default=[0.1, 0.3, 0.5], help="KV-cache budgets"
    )
    args = parser.parse_args()

    print("Loading the MPT-storywriter analogue (long-context model)...")
    model, tokenizer, _ = load_or_train("mpt_storywriter_mini")
    dataset = make_dataset(
        "govreport", world=SyntheticWorld(0), n_examples=args.limit + 2, seed=555
    )
    pipeline = SummarizationPipeline(model, tokenizer)

    table = ResultTable(
        name="long_context_summarization",
        headers=["policy", "kv_budget", "rouge1", "rouge2", "rougeL", "mean_cache"],
    )

    full = pipeline.evaluate_dataset(dataset, policy=make_policy("full"), limit=args.limit)
    table.add_row(
        "full", 1.0, full.rouge["rouge1"], full.rouge["rouge2"], full.rouge["rougeL"],
        full.mean_cache_length,
    )
    for budget in args.budgets:
        for policy_name in ("h2o", "keyformer"):
            recent = 0.5 if policy_name == "h2o" else 0.3
            report = pipeline.evaluate_dataset(
                dataset,
                policy=make_policy(policy_name, kv_fraction=budget, recent_ratio=recent),
                limit=args.limit,
            )
            table.add_row(
                policy_name, budget, report.rouge["rouge1"], report.rouge["rouge2"],
                report.rouge["rougeL"], report.mean_cache_length,
            )

    print()
    print(table.to_text(precision=2))
    print(
        "\nThe 99% MLPerf accuracy band relative to full attention is "
        f"ROUGE-2 >= {0.99 * full.rouge['rouge2']:.2f}."
    )


if __name__ == "__main__":
    main()
