"""Quickstart: generate a summary with Keyformer's reduced KV cache.

Loads (or trains, on first run) the GPT-J-mini analogue from the model zoo,
summarizes a held-out synthetic news document with full attention and with
Keyformer at a 50 % KV-cache budget, and prints both outputs together with the
cache statistics — the smallest end-to-end demonstration of the library.

Run with:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import GenerationConfig, Generator, make_policy
from repro.data.registry import make_dataset
from repro.data.world import SyntheticWorld
from repro.metrics.rouge import rouge_all
from repro.models.model_zoo import load_or_train


def main() -> None:
    print("Loading the GPT-J-mini analogue (trains once and caches on first run)...")
    model, tokenizer, _ = load_or_train("gptj_mini", log_fn=lambda msg: print("  " + msg))

    # A held-out document (seed disjoint from the training data).
    dataset = make_dataset("cnn_dailymail", world=SyntheticWorld(0), n_examples=4, seed=321)
    example = dataset[3]
    prompt_ids = (
        [tokenizer.vocab.bos_id]
        + tokenizer.encode(example.document)
        + [tokenizer.vocab.sep_id]
    )
    config = GenerationConfig(max_new_tokens=24, eos_token_id=tokenizer.vocab.eos_id)

    print("\nDocument:")
    print("  " + example.document[:300] + ("..." if len(example.document) > 300 else ""))
    print("\nReference summary:")
    print("  " + example.summary)

    for policy_name, kv_fraction in [("full", 1.0), ("window", 0.5), ("keyformer", 0.5)]:
        policy = make_policy(policy_name, kv_fraction=kv_fraction)
        generator = Generator(model, policy)
        result = generator.generate(np.asarray(prompt_ids), config)
        text = tokenizer.decode(result.sequences[0])
        rouge = rouge_all(text, example.summary)
        stats = result.cache_stats
        print(f"\n=== {policy_name} (KV budget {kv_fraction:.0%}) ===")
        print("  generated :", text)
        print(f"  ROUGE-2   : {100 * rouge['rouge2'].f1:.2f}")
        print(
            f"  KV cache  : peak {stats.peak_cache_length()} entries/layer "
            f"(prompt length {len(prompt_ids)}), "
            f"{stats.kv_bytes_read(2) / max(stats.n_steps, 1) / 1e3:.1f} KB moved per step (fp16)"
        )


if __name__ == "__main__":
    main()
