"""Serving demo: continuous batching over the slab KV-cache.

Submits a stream of mixed-length requests to the continuous-batching engine
with a deliberately small batch budget, so requests queue, join mid-stream as
others retire, and decode together — then verifies every output is
bit-identical to a dedicated single-request run and reports the aggregate
throughput of both execution modes.

Run with:
    python examples/serving_demo.py          # or: make serve-demo
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import CachePolicyConfig
from repro.core.policies import WindowAttentionPolicy
from repro.generation.generator import Generator
from repro.generation.sampler import GreedySampler
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import ContinuousBatchingEngine

VOCAB = 256
KV_BUDGET = 96
MAX_NEW_TOKENS = 48
PROMPT_LENGTHS = (320, 256, 288, 272, 304, 264)


def policy_factory() -> WindowAttentionPolicy:
    return WindowAttentionPolicy(CachePolicyConfig(kv_budget=KV_BUDGET))


def main() -> None:
    model = DecoderLM(
        ModelConfig(
            vocab_size=VOCAB,
            d_model=64,
            n_layers=4,
            n_heads=8,
            d_ff=256,
            max_seq_len=1024,
            positional="rope",
        ),
        seed=0,
    )
    prompts = [
        np.random.default_rng(i).integers(0, VOCAB, size=n).astype(np.int64)
        for i, n in enumerate(PROMPT_LENGTHS)
    ]
    config = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)

    print(f"Submitting {len(prompts)} requests (prompts {min(PROMPT_LENGTHS)}-"
          f"{max(PROMPT_LENGTHS)} tokens, {MAX_NEW_TOKENS} new tokens each)")
    engine = ContinuousBatchingEngine(
        model,
        policy_factory=policy_factory,
        max_batch_size=3,  # smaller than the request count: forces queueing
        max_total_tokens=2048,
    )
    states = [engine.submit(p, config, sampler=GreedySampler()) for p in prompts]

    start = time.perf_counter()
    steps = 0
    while engine.has_work:
        engine.step()
        steps += 1
        if steps % 16 == 0:
            print(
                f"  step {steps:3d}: running={engine.n_running} "
                f"queued={engine.n_queued}"
            )
    batched_s = time.perf_counter() - start
    total_tokens = sum(len(state.tokens) for state in states)
    print(f"Engine finished in {steps} steps / {batched_s:.2f}s "
          f"({total_tokens / batched_s:.0f} tok/s aggregate, incl. prefill)")

    print("\nPer-request results:")
    for state in states:
        print(
            f"  request {state.request_id}: {len(state.tokens)} tokens, "
            f"finished on {state.finish_reason.value}, first 8 = {state.tokens[:8]}"
        )

    print("\nVerifying bit-exactness against dedicated sequential runs...")
    start = time.perf_counter()
    sequential = [
        Generator(model, policy_factory()).generate(p, config, sampler=GreedySampler())
        for p in prompts
    ]
    sequential_s = time.perf_counter() - start
    for state, reference in zip(states, sequential):
        assert state.tokens == reference.sequences[0], "outputs diverged!"
        assert state.result().log_probs == reference.log_probs
    print(f"  all {len(prompts)} outputs bit-identical "
          f"(sequential took {sequential_s:.2f}s -> "
          f"{sequential_s / batched_s:.2f}x the engine's wall clock)")


if __name__ == "__main__":
    main()
