"""Serving demo: continuous batching over the paged KV-cache store.

Submits a stream of mixed-length requests — half of them sharing a long
common prompt prefix — to the continuous-batching engine with a deliberately
small batch budget, so requests queue, join mid-stream as others retire, and
decode together.  The paged store maps the shared prefix's pages instead of
recomputing them (watch the ``shared`` page count and the prefill savings),
and per-step pool utilization shows pages flowing between sequences, the
prefix registry and the free list.  Finally every output is verified
bit-identical to a dedicated single-request run and the aggregate throughput
of both execution modes is reported.

Run with:
    python examples/serving_demo.py          # or: make serve-demo
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import CachePolicyConfig
from repro.core.policies import FullAttentionPolicy, WindowAttentionPolicy
from repro.generation.generator import Generator
from repro.generation.sampler import GreedySampler
from repro.kvcache.paged import PagedKVStore
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import ContinuousBatchingEngine
from repro.speculative import SpeculationConfig

VOCAB = 256
KV_BUDGET = 96
MAX_NEW_TOKENS = 48
SHARED_PREFIX_LEN = 192
PROMPT_LENGTHS = (320, 256, 288, 272, 304, 264)


def policy_factory() -> WindowAttentionPolicy:
    return WindowAttentionPolicy(CachePolicyConfig(kv_budget=KV_BUDGET))


def build_prompts() -> list[np.ndarray]:
    """Mixed-length prompts; every odd request shares one long prefix."""
    shared = np.random.default_rng(99).integers(0, VOCAB, size=SHARED_PREFIX_LEN)
    prompts = []
    for i, n in enumerate(PROMPT_LENGTHS):
        body = np.random.default_rng(i).integers(0, VOCAB, size=n).astype(np.int64)
        if i % 2 == 1:
            body[:SHARED_PREFIX_LEN] = shared
        prompts.append(body)
    return prompts


def main() -> None:
    model = DecoderLM(
        ModelConfig(
            vocab_size=VOCAB,
            d_model=64,
            n_layers=4,
            n_heads=8,
            d_ff=256,
            max_seq_len=1024,
            positional="rope",
        ),
        seed=0,
    )
    prompts = build_prompts()
    config = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)

    print(f"Submitting {len(prompts)} requests (prompts {min(PROMPT_LENGTHS)}-"
          f"{max(PROMPT_LENGTHS)} tokens, {MAX_NEW_TOKENS} new tokens each; "
          f"requests 1/3/5 share a {SHARED_PREFIX_LEN}-token prefix)")
    engine = ContinuousBatchingEngine(
        model,
        policy_factory=policy_factory,
        max_batch_size=3,  # smaller than the request count: forces queueing
        max_pool_tokens=4096,  # fixed paged pool: memory-aware admission
    )
    states = [engine.submit(p, config, sampler=GreedySampler()) for p in prompts]

    start = time.perf_counter()
    steps = 0
    while engine.has_work:
        engine.step()
        steps += 1
        if steps % 16 == 0:
            pool = engine.pool_usage()
            print(
                f"  step {steps:3d}: running={engine.n_running} "
                f"queued={engine.n_queued} | pool: "
                f"{pool['pages_used']}/{pool['pages_total']} pages used, "
                f"{pool['pages_free']} free, {pool['pages_shared']} shared, "
                f"{pool['registry_chunks']} registry chunks"
            )
    batched_s = time.perf_counter() - start
    total_tokens = sum(len(state.tokens) for state in states)
    print(f"Engine finished in {steps} steps / {batched_s:.2f}s "
          f"({total_tokens / batched_s:.0f} tok/s aggregate, incl. prefill)")
    print(f"Prefix sharing: computed {engine.prefill_computed_tokens} of "
          f"{engine.prefill_prompt_tokens} prompt tokens "
          f"({engine.prefill_savings:.2f}x prefill savings); "
          f"{engine.n_preemptions} preemptions")
    pool = engine.pool_usage()
    print(f"Final pool state: {pool['pages_used']}/{pool['pages_total']} pages "
          f"used ({pool['registry_chunks']} prefix chunks retained for reuse)")

    print("\nPer-request results:")
    for state in states:
        print(
            f"  request {state.request_id}: {len(state.tokens)} tokens, "
            f"finished on {state.finish_reason.value}, first 8 = {state.tokens[:8]}"
        )

    print("\nVerifying bit-exactness against dedicated sequential runs...")
    start = time.perf_counter()
    sequential = [
        Generator(model, policy_factory()).generate(p, config, sampler=GreedySampler())
        for p in prompts
    ]
    sequential_s = time.perf_counter() - start
    for state, reference in zip(states, sequential):
        assert state.tokens == reference.sequences[0], "outputs diverged!"
        assert state.result().log_probs == reference.log_probs
    print(f"  all {len(prompts)} outputs bit-identical "
          f"(sequential took {sequential_s:.2f}s -> "
          f"{sequential_s / batched_s:.2f}x the engine's wall clock)")

    quantization_demo(model, prompts, [state.tokens for state in states])
    speculative_demo(model, prompts)


def quantization_demo(model, prompts, reference_tokens) -> None:
    """Show the int8 memory win: same byte budget, several-fold more tokens.

    Builds one engine per ``kv_dtype`` under a fixed ``max_pool_bytes``
    budget and prints what that budget buys (pages, resident tokens, and how
    many window-budget sequences fit concurrently); then re-serves the same
    stream on quantized pages and reports how closely the outputs track the
    full-precision run — the accuracy side of the memory/accuracy trade.
    """
    budget = 2 * 1024 * 1024  # bytes per engine, all layer pools together
    config = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)
    print(f"\nQuantized KV pages under a fixed {budget // 1024} KiB pool budget:")
    print("  kv_dtype   bytes/page   resident tokens   concurrent @ "
          f"{KV_BUDGET}-token window budget")
    engines = {}
    for kv_dtype in (None, "int8"):
        engine = ContinuousBatchingEngine(
            model,
            policy_factory=policy_factory,
            max_batch_size=3,
            max_pool_bytes=budget,
            kv_dtype=kv_dtype,
        )
        engines[kv_dtype] = engine
        per_seq = KV_BUDGET + engine.page_size  # window budget + growth slack
        page_bytes = int(PagedKVStore.page_nbytes_for(
            kv_dtype, model.config.n_heads, model.config.d_head,
            engine.page_size, model.config.np_dtype, model.config.rope_dims,
        ))
        print(f"  {kv_dtype or 'native':9s}  {page_bytes:9d}"
              f"   {engine.max_pool_tokens:15d}"
              f"   {engine.max_pool_tokens // per_seq:3d}")
    ratio = engines["int8"].max_pool_tokens / engines[None].max_pool_tokens
    print(f"  -> int8 pages hold {ratio:.1f}x more tokens (and sequences) in the same bytes")

    engine = engines["int8"]
    states = [engine.submit(p, config, sampler=GreedySampler()) for p in prompts]
    engine.run()
    agree = [
        sum(a == b for a, b in zip(state.tokens, ref)) / max(len(ref), 1)
        for state, ref in zip(states, reference_tokens)
    ]
    pool = engine.pool_usage()
    print(f"  int8 re-run of the same stream: {pool['bytes_used'] // 1024} KiB of pages "
          f"in use at exit, token agreement vs full precision "
          f"{100 * sum(agree) / len(agree):.1f}%")


def speculative_demo(model, prompts) -> None:
    """Re-serve the same stream with draft-then-verify speculation enabled.

    Speculative serving requires the full-attention target policy and greedy
    requests; the n-gram drafter proposes from the committed context at zero
    model cost, so rows advance by up to ``k + 1`` tokens per engine step
    while every output stays bit-identical to the vanilla engine's.
    """
    print("\nRe-serving the same stream with speculative decoding (ngram, k=4)...")
    config = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)
    engine = ContinuousBatchingEngine(
        model,
        max_batch_size=3,
        speculation=SpeculationConfig(k=4, drafter="ngram"),
    )
    states = [engine.submit(p, config) for p in prompts]
    start = time.perf_counter()
    steps = 0
    while engine.has_work:
        engine.step()
        steps += 1
    elapsed = time.perf_counter() - start
    stats = engine.speculation_stats
    total_tokens = sum(len(state.tokens) for state in states)
    print(
        f"  finished in {steps} engine steps / {elapsed:.2f}s "
        f"({total_tokens / elapsed:.0f} tok/s aggregate): "
        f"{stats.rounds} verify rounds, acceptance "
        f"{stats.acceptance_rate:.0%}, {stats.tokens_per_round:.2f} tokens/round, "
        f"{stats.rolled_back} rolled back"
    )
    # Speculation ran under the full-attention target (the demo's window
    # policy belongs to the drafter side), so compare against a dedicated
    # full-attention run of each request.
    for state, prompt in zip(states, prompts):
        reference = Generator(model, FullAttentionPolicy()).generate(
            prompt, config, sampler=GreedySampler()
        )
        assert state.tokens == reference.sequences[0], "speculative outputs diverged!"
        assert state.result().log_probs == reference.log_probs
    print(f"  all {len(states)} speculative outputs bit-identical to vanilla decode")


if __name__ == "__main__":
    main()
