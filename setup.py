"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in fully offline environments (legacy editable
installs do not require the ``wheel`` package or network access to set up
build isolation).
"""

from setuptools import setup

setup()
