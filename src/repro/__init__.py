"""Keyformer reproduction: KV-cache reduction through key-token selection.

Public API overview
-------------------
* :mod:`repro.core` — Keyformer and baseline KV-cache eviction policies.
* :mod:`repro.kvcache` — KV-cache storage and the cache manager.
* :mod:`repro.models` — pure-NumPy decoder-only transformer (RoPE/ALiBi/learned).
* :mod:`repro.training` — Adam trainer for the mini model zoo.
* :mod:`repro.tokenizer` / :mod:`repro.data` — tokenizers and synthetic corpora.
* :mod:`repro.generation` — generator, beam search, task pipelines.
* :mod:`repro.metrics` — ROUGE, perplexity, accuracy, attention statistics.
* :mod:`repro.perfmodel` — analytical A100-class latency/throughput model.
* :mod:`repro.experiments` — one runner per paper table/figure.
"""

from repro.core import (
    CachePolicyConfig,
    KeyformerConfig,
    KeyformerPolicy,
    FullAttentionPolicy,
    WindowAttentionPolicy,
    H2OPolicy,
    StreamingLLMPolicy,
    make_policy,
    POLICIES,
)
from repro.models import ModelConfig, DecoderLM, MODEL_ZOO, build_model, load_or_train
from repro.models.config import GenerationConfig
from repro.generation import Generator, BeamSearch, SummarizationPipeline, ConversationPipeline
from repro.kvcache import CacheManager, LayerKVCache

__version__ = "1.0.0"

__all__ = [
    "CachePolicyConfig",
    "KeyformerConfig",
    "KeyformerPolicy",
    "FullAttentionPolicy",
    "WindowAttentionPolicy",
    "H2OPolicy",
    "StreamingLLMPolicy",
    "make_policy",
    "POLICIES",
    "ModelConfig",
    "GenerationConfig",
    "DecoderLM",
    "MODEL_ZOO",
    "build_model",
    "load_or_train",
    "Generator",
    "BeamSearch",
    "SummarizationPipeline",
    "ConversationPipeline",
    "CacheManager",
    "LayerKVCache",
    "__version__",
]
