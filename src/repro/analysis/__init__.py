"""Analysis utilities: attention heatmaps, sparsity sweeps, report formatting."""

from repro.analysis.heatmap import collect_attention_maps, heatmap_to_ascii
from repro.analysis.sparsity import sparsity_by_layer, sparsity_threshold_sweep
from repro.analysis.reporting import format_table, format_series, ResultTable

__all__ = [
    "collect_attention_maps",
    "heatmap_to_ascii",
    "sparsity_by_layer",
    "sparsity_threshold_sweep",
    "format_table",
    "format_series",
    "ResultTable",
]
