"""Attention heatmap extraction (Appendix A.6, Figures 14–15)."""

from __future__ import annotations

import numpy as np

from repro.models.transformer import DecoderLM

__all__ = ["collect_attention_maps", "heatmap_to_ascii"]


def collect_attention_maps(
    model: DecoderLM, token_ids: np.ndarray, generated_rows_only: bool = False
) -> list[np.ndarray]:
    """Per-layer attention maps ``(B, H, T, T)`` for a full forward pass.

    When ``generated_rows_only`` is true only the rows corresponding to the
    second half of the sequence are returned (the paper's heatmaps plot
    generation rows against context + generation columns).
    """
    token_ids = np.asarray(token_ids)
    if token_ids.ndim == 1:
        token_ids = token_ids[None, :]
    model.forward(token_ids, store_attention=True)
    maps = model.collect_attention()
    if generated_rows_only:
        t = token_ids.shape[1]
        maps = [m[:, :, t // 2 :, :] for m in maps]
    return maps


def heatmap_to_ascii(attn: np.ndarray, width: int = 64, height: int = 16) -> str:
    """Render a single-head attention map ``(Q, K)`` as an ASCII density plot.

    Used by the benchmark harness to show the Figure 14/15 heatmaps in plain
    text; darker characters correspond to larger attention weights.
    """
    attn = np.asarray(attn, dtype=np.float64)
    if attn.ndim != 2:
        raise ValueError(f"expected a 2-D (query, key) map, got shape {attn.shape}")
    q, k = attn.shape
    rows = min(height, q)
    cols = min(width, k)
    # Downsample by block-averaging.
    q_edges = np.linspace(0, q, rows + 1, dtype=int)
    k_edges = np.linspace(0, k, cols + 1, dtype=int)
    shades = " .:-=+*#%@"
    lines = []
    peak = max(attn.max(), 1e-12)
    for i in range(rows):
        chars = []
        for j in range(cols):
            block = attn[q_edges[i]: q_edges[i + 1], k_edges[j]: k_edges[j + 1]]
            value = block.max() if block.size else 0.0
            level = int(round((len(shades) - 1) * value / peak))
            chars.append(shades[level])
        lines.append("".join(chars))
    return "\n".join(lines)
