"""Plain-text table/series formatting used by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_series", "ResultTable"]


def _fmt(value: Any, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Sequence[Any]], headers: Sequence[str], precision: int = 2
) -> str:
    """Render rows/headers as an aligned plain-text table."""
    str_rows = [[_fmt(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length must match headers")
        widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_values: Iterable[Any],
    series: dict[str, Iterable[float]],
    x_label: str = "x",
    precision: int = 2,
) -> str:
    """Render one or more named series against shared x values as a table."""
    x_values = list(x_values)
    headers = [x_label] + list(series.keys())
    columns = [list(v) for v in series.values()]
    for col in columns:
        if len(col) != len(x_values):
            raise ValueError("all series must have the same length as x_values")
    rows = [[x] + [col[i] for col in columns] for i, x in enumerate(x_values)]
    return format_table(rows, headers, precision=precision)


@dataclass
class ResultTable:
    """A named table of experiment results with provenance metadata."""

    name: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} values for table {self.name!r}, got {len(values)}"
            )
        self.rows.append(list(values))

    def to_text(self, precision: int = 2) -> str:
        header = f"== {self.name} =="
        body = format_table(self.rows, self.headers, precision=precision)
        if self.notes:
            return f"{header}\n{self.notes}\n{body}"
        return f"{header}\n{body}"

    def column(self, header: str) -> list[Any]:
        """Values of one column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.headers, row)) for row in self.rows]
