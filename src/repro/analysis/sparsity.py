"""Sparsity analyses over attention maps (Figures 3a and 11)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.metrics.attention_stats import attention_sparsity, head_sparsity_by_threshold

__all__ = ["sparsity_by_layer", "sparsity_threshold_sweep"]


def sparsity_by_layer(attn_per_layer: Sequence[np.ndarray], threshold: float = 0.0) -> list[float]:
    """Sparsity (%) of every layer's attention map (Figure 3a)."""
    return [attention_sparsity(np.asarray(attn), threshold) for attn in attn_per_layer]


def sparsity_threshold_sweep(
    attn_per_layer: Sequence[np.ndarray],
    thresholds: Sequence[float] = (0.0, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.03, 0.05),
) -> dict[float, list[float]]:
    """Per-layer sparsity for a sweep of thresholds (Figure 11).

    Thresholds are fractions of each query row's maximum attention weight,
    matching the paper's "percentage of the maximum attention score" x-axis.
    """
    return head_sparsity_by_threshold(attn_per_layer, thresholds)
