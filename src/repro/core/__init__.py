"""Keyformer core: score functions, noise distributions and eviction policies.

This subpackage is the paper's primary contribution.  It implements:

* the logit-adjustment noise distributions (Gumbel, Gaussian, constant, none)
  used to regularize the score function (§3.1–3.2, Table 4);
* the dynamic temperature schedule τ (Eq. 10, Figure 16);
* the accumulated score functions — H2O-style accumulated attention and the
  Keyformer Gumbel-softmax score (Eq. 9);
* the KV-cache eviction policies compared in the paper: full attention,
  window / dilated-window attention, key-token-only attention, H2O,
  StreamingLLM attention sinks, and Keyformer itself (Algorithm 1).
"""

from repro.core.config import CachePolicyConfig, KeyformerConfig
from repro.core.distributions import (
    GumbelNoise,
    GaussianNoise,
    ConstantAdjustment,
    NoAdjustment,
    make_noise,
    NOISE_DISTRIBUTIONS,
)
from repro.core.temperature import ConstantTauSchedule, LinearTauSchedule
from repro.core.score import AccumulatedAttentionScore, KeyformerScore, entropy
from repro.core.policies import (
    EvictionPolicy,
    FullAttentionPolicy,
    WindowAttentionPolicy,
    DilatedWindowPolicy,
    KeyAttentionPolicy,
    H2OPolicy,
    StreamingLLMPolicy,
    RandomEvictionPolicy,
)
from repro.core.keyformer import KeyformerPolicy
from repro.core.registry import POLICIES, make_policy

__all__ = [
    "CachePolicyConfig",
    "KeyformerConfig",
    "GumbelNoise",
    "GaussianNoise",
    "ConstantAdjustment",
    "NoAdjustment",
    "make_noise",
    "NOISE_DISTRIBUTIONS",
    "ConstantTauSchedule",
    "LinearTauSchedule",
    "AccumulatedAttentionScore",
    "KeyformerScore",
    "entropy",
    "EvictionPolicy",
    "FullAttentionPolicy",
    "WindowAttentionPolicy",
    "DilatedWindowPolicy",
    "KeyAttentionPolicy",
    "H2OPolicy",
    "StreamingLLMPolicy",
    "RandomEvictionPolicy",
    "KeyformerPolicy",
    "POLICIES",
    "make_policy",
]
