"""Configuration dataclasses for KV-cache eviction policies."""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Any

__all__ = ["CachePolicyConfig", "KeyformerConfig"]

VALID_POSITIONAL_MODES = ("original", "new")
VALID_PROMPT_MODES = ("all", "last")


@dataclass
class CachePolicyConfig:
    """Budget configuration shared by every eviction policy.

    Attributes
    ----------
    kv_fraction:
        KV-cache budget as a fraction of the prompt length (the paper's
        "X % KV cache").  Ignored when ``kv_budget`` is set.
    kv_budget:
        Absolute number of retained tokens; overrides ``kv_fraction``.
    recent_ratio:
        Fraction of the budget reserved for the most recent tokens (the
        paper's recent window ``w``); the remainder holds key tokens.
    min_budget:
        Lower bound on the retained token count so tiny prompts never reduce
        to an empty cache.
    positional_mode:
        ``"original"`` keeps each token's original position for RoPE/ALiBi
        (Keyformer (Org Pos) in Table 3); ``"new"`` renumbers retained tokens
        contiguously (Keyformer (New Pos)).
    prompt_mode:
        How scores accumulate during the prompt phase: ``"all"`` sums the
        score over every prompt query row (H2O style), ``"last"`` uses only
        the final prompt row.
    seed:
        Seed for stochastic components (Gumbel noise, random eviction).
    """

    kv_fraction: float = 0.5
    kv_budget: int | None = None
    recent_ratio: float = 0.25
    min_budget: int = 4
    positional_mode: str = "original"
    prompt_mode: str = "all"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kv_budget is None and not (0.0 < self.kv_fraction <= 1.0):
            raise ValueError(f"kv_fraction must be in (0, 1], got {self.kv_fraction}")
        if self.kv_budget is not None and self.kv_budget <= 0:
            raise ValueError("kv_budget must be positive when provided")
        if not (0.0 <= self.recent_ratio <= 1.0):
            raise ValueError("recent_ratio must be in [0, 1]")
        if self.positional_mode not in VALID_POSITIONAL_MODES:
            raise ValueError(
                f"positional_mode must be one of {VALID_POSITIONAL_MODES}, "
                f"got {self.positional_mode!r}"
            )
        if self.prompt_mode not in VALID_PROMPT_MODES:
            raise ValueError(
                f"prompt_mode must be one of {VALID_PROMPT_MODES}, got {self.prompt_mode!r}"
            )
        if self.min_budget < 1:
            raise ValueError("min_budget must be at least 1")

    def resolve_budget(self, prompt_len: int) -> int:
        """Number of KV entries retained for a prompt of ``prompt_len`` tokens."""
        if prompt_len <= 0:
            raise ValueError("prompt_len must be positive")
        if self.kv_budget is not None:
            budget = self.kv_budget
        else:
            budget = int(round(self.kv_fraction * prompt_len))
        return int(min(max(budget, self.min_budget), prompt_len))

    def resolve_recent_window(self, budget: int) -> int:
        """Size ``w`` of the recent window inside a budget of ``budget`` tokens."""
        if budget <= 0:
            raise ValueError("budget must be positive")
        w = int(round(self.recent_ratio * budget))
        return int(min(max(w, 1), budget))

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class KeyformerConfig(CachePolicyConfig):
    """Keyformer-specific configuration on top of the shared budget settings.

    Attributes
    ----------
    tau_init, tau_end:
        Start and end of the temperature range; the paper finds
        ``τ_init = 1`` and ``τ_end = 2`` optimal (Appendix A.8).
    static_tau:
        If set, use this constant temperature instead of the dynamic schedule
        (Figure 16 ablation).
    noise:
        Logit-adjustment distribution: ``"gumbel"`` (default), ``"gaussian"``,
        ``"constant"`` or ``"none"`` (Table 4 ablation).
    noise_mu, noise_sigma:
        Location/scale of the adjustment distribution; defaults match the
        paper's standard Gumbel (μ = 0.5772, σ = 1.2825).
    noise_resample:
        ``"per-step"`` redraws ζ at every decoding step (Gumbel-softmax
        practice, the default); ``"fixed"`` draws ζ once per sequence.
    shared_score:
        Share a single score function across decoder layers instead of the
        default per-layer score (Table 3 ablation).
    score_damping:
        Optional damping factor α multiplying the accumulated score at each
        decoding step (§2.3.3 / Figure 5); ``1.0`` disables damping.
    """

    tau_init: float = 1.0
    tau_end: float = 2.0
    static_tau: float | None = None
    noise: str = "gumbel"
    noise_mu: float = 0.5772
    noise_sigma: float = 1.2825
    noise_resample: str = "per-step"
    shared_score: bool = False
    score_damping: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.tau_init <= 0 or self.tau_end <= 0:
            raise ValueError("temperatures must be positive")
        if self.static_tau is not None and self.static_tau <= 0:
            raise ValueError("static_tau must be positive when provided")
        if self.noise not in ("gumbel", "gaussian", "constant", "none"):
            raise ValueError(f"unknown noise distribution {self.noise!r}")
        if self.noise_resample not in ("per-step", "fixed"):
            raise ValueError(
                f"noise_resample must be 'per-step' or 'fixed', got {self.noise_resample!r}"
            )
        if not (0.0 < self.score_damping <= 1.0):
            raise ValueError("score_damping must be in (0, 1]")
