"""Logit-adjustment noise distributions (§3.2 and Table 4 of the paper).

Keyformer regularizes the unnormalized attention logits with additive noise
``y_i = x_i + ζ_i`` before computing its score function.  The paper motivates
the Gumbel distribution (skewed, models maxima, biases towards initial
tokens) and ablates against a Gaussian with matched moments, a constant
adjustment, and no adjustment at all (which recovers H2O's behaviour).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "NoiseDistribution",
    "GumbelNoise",
    "GaussianNoise",
    "ConstantAdjustment",
    "NoAdjustment",
    "NOISE_DISTRIBUTIONS",
    "make_noise",
]

# Mean and standard deviation of the standard Gumbel(0, 1) distribution; the
# paper uses these to build a moment-matched Gaussian for the Table 4 ablation.
GUMBEL_MEAN = 0.5772156649015329  # Euler–Mascheroni constant
GUMBEL_STD = float(np.pi / np.sqrt(6.0))


class NoiseDistribution(ABC):
    """A source of per-token logit adjustments ζ."""

    name = "abstract"

    @abstractmethod
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` adjustment values."""

    def pdf(self, zeta: np.ndarray) -> np.ndarray:
        """Probability density of the adjustment values (used in analysis)."""
        raise NotImplementedError(f"{self.name} has no density")


class GumbelNoise(NoiseDistribution):
    """Standard (or shifted/scaled) Gumbel noise — Keyformer's default (Eq. 5)."""

    name = "gumbel"

    def __init__(self, mu: float = GUMBEL_MEAN, sigma: float = GUMBEL_STD):
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        # Convert the requested mean/std into Gumbel location/scale parameters.
        self.sigma = sigma
        self.beta = sigma / GUMBEL_STD
        self.mu_loc = mu - self.beta * GUMBEL_MEAN
        self.mu = mu

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        u = rng.uniform(low=1e-12, high=1.0 - 1e-12, size=size)
        return self.mu_loc - self.beta * np.log(-np.log(u))

    def pdf(self, zeta: np.ndarray) -> np.ndarray:
        z = (np.asarray(zeta, dtype=np.float64) - self.mu_loc) / self.beta
        return np.exp(-z - np.exp(-z)) / self.beta


class GaussianNoise(NoiseDistribution):
    """Symmetric Gaussian noise with matched mean/variance (Eq. 11, Table 4)."""

    name = "gaussian"

    def __init__(self, mu: float = GUMBEL_MEAN, sigma: float = GUMBEL_STD):
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.mu = mu
        self.sigma = sigma

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return rng.normal(self.mu, self.sigma, size=size)

    def pdf(self, zeta: np.ndarray) -> np.ndarray:
        z = np.asarray(zeta, dtype=np.float64)
        return np.exp(-((z - self.mu) ** 2) / (2 * self.sigma**2)) / np.sqrt(
            2 * np.pi * self.sigma**2
        )


class ConstantAdjustment(NoiseDistribution):
    """Identical constant added to every logit (Table 4's ``c = 0.5772``)."""

    name = "constant"

    def __init__(self, value: float = GUMBEL_MEAN):
        self.value = value

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(size, self.value, dtype=np.float64)


class NoAdjustment(NoiseDistribution):
    """No logit adjustment — ``y_i = x_i`` as in H2O (Table 4's "None")."""

    name = "none"

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return np.zeros(size, dtype=np.float64)


NOISE_DISTRIBUTIONS = ("gumbel", "gaussian", "constant", "none")


def make_noise(
    name: str, mu: float = GUMBEL_MEAN, sigma: float = GUMBEL_STD
) -> NoiseDistribution:
    """Factory for a noise distribution by name."""
    name = name.lower()
    if name == "gumbel":
        return GumbelNoise(mu, sigma)
    if name == "gaussian":
        return GaussianNoise(mu, sigma)
    if name == "constant":
        return ConstantAdjustment(mu)
    if name == "none":
        return NoAdjustment()
    raise KeyError(f"unknown noise distribution {name!r}; available: {NOISE_DISTRIBUTIONS}")
