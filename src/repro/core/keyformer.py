"""The Keyformer eviction policy (Algorithm 1 of the paper).

Keyformer keeps a *mixed* cache of the ``w`` most recent tokens plus the
``k − w`` highest-scoring *key tokens*, where the score is the accumulated
Gumbel-softmax of the unnormalized attention logits (Eq. 9) with a dynamic
temperature that rises from ``τ_init`` to ``τ_end`` over the generation
(Eq. 10).  The noise distribution, temperature schedule, per-layer vs shared
score accumulation and positional handling are all configurable so that the
paper's ablations (Tables 3–4, Figures 5, 12, 16) map directly onto
constructor arguments.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import KeyformerConfig
from repro.core.distributions import make_noise
from repro.core.policies import EvictionPolicy, mixed_topk_selection
from repro.core.score import KeyformerScore
from repro.core.temperature import ConstantTauSchedule, LinearTauSchedule

__all__ = ["KeyformerPolicy"]


class KeyformerPolicy(EvictionPolicy):
    """Mixed recent-window + key-token eviction driven by a Gumbel-softmax score."""

    name = "keyformer"
    #: The Gumbel score accumulator is seeded from the prompt attention
    #: logits, so prefix sharing cannot skip the prompt forward pass.
    needs_prompt_attention = True

    def __init__(self, config: KeyformerConfig | None = None):
        config = config or KeyformerConfig()
        super().__init__(config)
        self.config: KeyformerConfig = config
        self.shared_selection = config.shared_score
        self.score = KeyformerScore(
            noise=make_noise(config.noise, mu=config.noise_mu, sigma=config.noise_sigma),
            shared=config.shared_score,
            seed=config.seed,
            prompt_mode=config.prompt_mode,
            damping=config.score_damping,
            resample=config.noise_resample,
        )

    # ------------------------------------------------------------------
    def setup(self, n_layers, n_heads, batch_size, prompt_len, max_new_tokens) -> None:
        super().setup(n_layers, n_heads, batch_size, prompt_len, max_new_tokens)
        self.score.max_positions = max(prompt_len + max_new_tokens + 1, 16)
        self.score.reset()
        if self.config.static_tau is not None:
            self.score.tau_schedule = ConstantTauSchedule(self.config.static_tau)
        else:
            self.score.tau_schedule = LinearTauSchedule(
                self.config.tau_init,
                self.config.tau_end,
                max(max_new_tokens, 1),
            )

    # ------------------------------------------------------------------
    def _select(self, layer_idx: int) -> np.ndarray:
        scores = self.score.get(layer_idx)
        selection = mixed_topk_selection(scores, self.budget, self.recent_window)
        self.score.gather(layer_idx, selection)
        return selection

    def initial_selection(self, layer_idx, attn_probs, attn_logits=None, positions=None):
        """Prompt-phase reduction from ``n`` to ``k`` tokens (Algorithm 1, step 1)."""
        self.score.init_from_prompt(layer_idx, attn_probs, attn_logits, positions)
        t = attn_probs.shape[-1]
        if t <= self.budget:
            return None
        if self.shared_selection and layer_idx < self.n_layers - 1:
            return None
        return self._select(layer_idx)

    def step_selection(self, layer_idx, logits, probs, key_positions, step):
        """Token-generation-phase reduction keeping the cache at ``k`` tokens."""
        self.score.update(layer_idx, logits, probs, positions=key_positions, step=step)
        if logits.shape[-1] <= self.budget:
            return None
        if self.shared_selection and layer_idx < self.n_layers - 1:
            return None
        return self._select(layer_idx)

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        summary = super().describe()
        summary.update(
            {
                "noise": self.config.noise,
                "tau_init": self.config.tau_init,
                "tau_end": self.config.tau_end,
                "static_tau": self.config.static_tau,
                "shared_score": self.config.shared_score,
                "positional_mode": self.config.positional_mode,
            }
        )
        return summary
