"""KV-cache eviction policies: full, window, dilated, key-only, H2O, sinks, random.

A policy decides which cache entries each decoder layer keeps.  The
:class:`repro.kvcache.manager.CacheManager` drives policies through three
hooks:

``setup``
    called once per sequence with the geometry (layers, heads, batch, prompt
    length, generation length); the policy resolves its budget here.
``initial_selection``
    called once per layer right after the prompt phase with the prompt
    attention maps; returns the indices to keep (or ``None`` to keep all).
``step_selection``
    called once per layer per generated token with that step's attention
    logits/probabilities; returns the indices to keep (or ``None``).

Indices are returned in ascending cache order with shape
``(batch, heads, k)``, so chronological ordering inside the cache is
preserved.  Policies that keep internal per-token state (the score
accumulators) gather that state themselves before returning.
"""

from __future__ import annotations

from abc import ABC

import numpy as np

from repro.core.config import CachePolicyConfig
from repro.core.score import AccumulatedAttentionScore

__all__ = [
    "EvictionPolicy",
    "FullAttentionPolicy",
    "WindowAttentionPolicy",
    "DilatedWindowPolicy",
    "KeyAttentionPolicy",
    "H2OPolicy",
    "StreamingLLMPolicy",
    "RandomEvictionPolicy",
    "mixed_topk_selection",
]


def mixed_topk_selection(scores: np.ndarray, budget: int, recent_window: int) -> np.ndarray:
    """Select ``budget`` indices: the last ``recent_window`` plus the top-scoring rest.

    Implements the paper's ``S_key ∪ S_w`` construction (Algorithm 1):
    ``S_w`` is the most recent ``recent_window`` cache entries and ``S_key``
    are the ``budget - recent_window`` highest-scoring entries among the
    remaining (older) ones.  Returned indices are sorted ascending.

    Parameters
    ----------
    scores:
        Array of shape ``(..., L)`` with one score per cache entry.
    budget:
        Total number of entries to keep (``k``).
    recent_window:
        Number of most recent entries always kept (``w``).
    """
    length = scores.shape[-1]
    if budget >= length:
        idx = np.arange(length)
        return np.broadcast_to(idx, scores.shape[:-1] + (length,)).copy()
    recent_window = int(min(max(recent_window, 0), budget))
    n_key = budget - recent_window

    if n_key > 0 and length == budget + 1:
        # Steady-state decode: one token was appended over budget, so exactly
        # one old entry is evicted.  The top ``n_key`` of the ``n_key + 1``
        # old entries are everything except the minimum — skip the
        # argpartition + concatenate + sort pipeline entirely.  Taken only
        # when the minimum is strict in every row: on an exact tie argmin and
        # argpartition may evict different duplicates, and bit-parity with
        # the reference path matters more than the fast path's savings.
        old_region = scores[..., : length - recent_window]
        min_vals = old_region.min(axis=-1, keepdims=True)
        if np.count_nonzero(old_region == min_vals) == min_vals.size:
            drop = np.argmin(old_region, axis=-1)
            base = np.arange(length - 1)
            return base + (base >= drop[..., None])

    recent_idx = np.arange(length - recent_window, length)
    recent_idx = np.broadcast_to(recent_idx, scores.shape[:-1] + (recent_window,))

    if n_key > 0:
        old_region = scores[..., : length - recent_window]
        if old_region.shape[-1] < n_key:
            # Not enough old entries: take them all plus extra recent ones.
            extra = n_key - old_region.shape[-1]
            key_idx = np.arange(old_region.shape[-1])
            key_idx = np.broadcast_to(key_idx, scores.shape[:-1] + (old_region.shape[-1],))
            pad_idx = np.arange(length - recent_window - extra, length - recent_window)
            pad_idx = np.broadcast_to(pad_idx, scores.shape[:-1] + (extra,))
            key_idx = np.concatenate([key_idx, pad_idx], axis=-1)
        else:
            top = np.argpartition(-old_region, n_key - 1, axis=-1)[..., :n_key]
            key_idx = top
        selected = np.concatenate([key_idx, recent_idx], axis=-1)
    else:
        selected = recent_idx

    return np.sort(selected, axis=-1)


class EvictionPolicy(ABC):
    """Base class holding budget bookkeeping common to every policy."""

    name = "abstract"
    #: When true the manager applies one selection (computed at the last
    #: layer's observation) to every layer — used by shared score functions.
    shared_selection = False
    #: When true ``initial_selection`` consumes the *values* of the prompt
    #: attention maps (score-based policies seed accumulators from them), so
    #: the serving engine must run a full prompt forward and cannot reuse a
    #: cached prefix for this request.  Shape-only policies (full, window,
    #: sinks, dilated, random) leave this False and remain prefix-shareable.
    needs_prompt_attention = False

    def __init__(self, config: CachePolicyConfig | None = None):
        self.config = config or CachePolicyConfig()
        self.n_layers = 0
        self.n_heads = 0
        self.batch_size = 0
        self.prompt_len = 0
        self.max_new_tokens = 0
        self.budget = 0
        self.recent_window = 0
        self.rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def setup(
        self,
        n_layers: int,
        n_heads: int,
        batch_size: int,
        prompt_len: int,
        max_new_tokens: int,
    ) -> None:
        """Resolve the budget for a new sequence and reset internal state."""
        self.n_layers = n_layers
        self.n_heads = n_heads
        self.batch_size = batch_size
        self.prompt_len = prompt_len
        self.max_new_tokens = max_new_tokens
        self.budget = self.config.resolve_budget(prompt_len)
        self.recent_window = self.config.resolve_recent_window(self.budget)
        self.rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def initial_selection(
        self,
        layer_idx: int,
        attn_probs: np.ndarray,
        attn_logits: np.ndarray | None = None,
        positions: np.ndarray | None = None,
    ) -> np.ndarray | None:
        """Indices to keep after the prompt phase; ``None`` keeps everything."""
        return None

    def step_selection(
        self,
        layer_idx: int,
        logits: np.ndarray,
        probs: np.ndarray,
        key_positions: np.ndarray,
        step: int,
    ) -> np.ndarray | None:
        """Indices to keep after a decoding step; ``None`` keeps everything."""
        return None

    def reorder(self, batch_indices: np.ndarray) -> None:
        """Reorder the batch/beam dimension of any per-token state (beam search).

        The base policy is stateless; score-based policies override/extend this
        through their score accumulators.
        """
        score = getattr(self, "score", None)
        if score is not None:
            score.reorder(batch_indices)

    # ------------------------------------------------------------------
    def _full_selection(self, shape_prefix: tuple[int, ...], length: int) -> np.ndarray:
        idx = np.arange(length)
        return np.broadcast_to(idx, shape_prefix + (length,)).copy()

    def describe(self) -> dict:
        """Human-readable summary used in experiment reports."""
        return {
            "policy": self.name,
            "budget": self.budget,
            "recent_window": self.recent_window,
            "kv_fraction": self.config.kv_fraction,
        }


class FullAttentionPolicy(EvictionPolicy):
    """Keep every token — the paper's accuracy gold standard."""

    name = "full"

    def setup(self, n_layers, n_heads, batch_size, prompt_len, max_new_tokens) -> None:
        super().setup(n_layers, n_heads, batch_size, prompt_len, max_new_tokens)
        # Full attention ignores the configured fraction: the budget is the
        # whole sequence.
        self.budget = prompt_len + max_new_tokens
        self.recent_window = self.budget


class WindowAttentionPolicy(EvictionPolicy):
    """Keep only the most recent ``budget`` tokens (sliding window)."""

    name = "window"

    def __init__(self, config: CachePolicyConfig | None = None):
        super().__init__(config)
        # The suffix selection depends only on the geometry, which is
        # constant in steady-state decoding (length == budget + 1 every
        # step) — memoize it instead of rebuilding the index array per layer
        # per step.  Consumers treat selections as read-only.
        self._selection_cache: tuple[tuple[int, int, int], np.ndarray] | None = None

    def setup(self, n_layers, n_heads, batch_size, prompt_len, max_new_tokens) -> None:
        super().setup(n_layers, n_heads, batch_size, prompt_len, max_new_tokens)
        self._selection_cache = None

    def _window_selection(self, b: int, h: int, length: int) -> np.ndarray:
        key = (b, h, length)
        if self._selection_cache is not None and self._selection_cache[0] == key:
            return self._selection_cache[1]
        idx = np.arange(length - self.budget, length)
        selection = np.broadcast_to(idx, (b, h, self.budget)).copy()
        self._selection_cache = (key, selection)
        return selection

    def initial_selection(self, layer_idx, attn_probs, attn_logits=None, positions=None):
        b, h, _, t = attn_probs.shape
        if t <= self.budget:
            return None
        return self._window_selection(b, h, t)

    def step_selection(self, layer_idx, logits, probs, key_positions, step):
        b, h, length = logits.shape
        if length <= self.budget:
            return None
        return self._window_selection(b, h, length)


class DilatedWindowPolicy(EvictionPolicy):
    """Keep every ``dilation + 1``-th token counting back from the newest."""

    name = "dilated-window"

    def __init__(self, config: CachePolicyConfig | None = None, dilation: int = 1):
        super().__init__(config)
        if dilation < 0:
            raise ValueError("dilation must be non-negative")
        self.dilation = dilation

    def _dilated_indices(self, length: int, shape_prefix: tuple[int, ...]) -> np.ndarray | None:
        if length <= self.budget:
            return None
        stride = self.dilation + 1
        idx = length - 1 - stride * np.arange(self.budget)
        idx = idx[idx >= 0]
        if idx.size < self.budget:
            # Fall back to a dense window for the remainder.
            missing = self.budget - idx.size
            extra = np.setdiff1d(np.arange(length), idx)[:missing]
            idx = np.concatenate([idx, extra])
        idx = np.sort(idx)
        return np.broadcast_to(idx, shape_prefix + (self.budget,)).copy()

    def initial_selection(self, layer_idx, attn_probs, attn_logits=None, positions=None):
        b, h, _, t = attn_probs.shape
        return self._dilated_indices(t, (b, h))

    def step_selection(self, layer_idx, logits, probs, key_positions, step):
        b, h, length = logits.shape
        return self._dilated_indices(length, (b, h))


class _ScoreBasedPolicy(EvictionPolicy):
    """Shared logic for policies that rank tokens by an accumulated score."""

    needs_prompt_attention = True

    def __init__(self, config: CachePolicyConfig | None = None, damping: float = 1.0):
        super().__init__(config)
        self.damping = damping
        self.score = AccumulatedAttentionScore(
            shared=False, damping=damping, prompt_mode=self.config.prompt_mode
        )

    def setup(self, n_layers, n_heads, batch_size, prompt_len, max_new_tokens) -> None:
        super().setup(n_layers, n_heads, batch_size, prompt_len, max_new_tokens)
        self.score.reset()

    def _select(self, layer_idx: int, recent_window: int) -> np.ndarray:
        scores = self.score.get(layer_idx)
        selection = mixed_topk_selection(scores, self.budget, recent_window)
        self.score.gather(layer_idx, selection)
        return selection

    def initial_selection(self, layer_idx, attn_probs, attn_logits=None, positions=None):
        self.score.init_from_prompt(layer_idx, attn_probs, attn_logits, positions)
        t = attn_probs.shape[-1]
        if t <= self.budget:
            return None
        return self._select(layer_idx, self._recent_for_selection())

    def step_selection(self, layer_idx, logits, probs, key_positions, step):
        self.score.update(layer_idx, logits, probs, positions=key_positions, step=step)
        if logits.shape[-1] <= self.budget:
            return None
        return self._select(layer_idx, self._recent_for_selection())

    def _recent_for_selection(self) -> int:
        return self.recent_window


class H2OPolicy(_ScoreBasedPolicy):
    """Heavy-Hitter Oracle: recent window + top accumulated-attention tokens.

    Follows Zhang et al. (2023): the budget is split between a recent window
    and "heavy hitter" tokens ranked by accumulated post-softmax attention.
    The default split is 50/50, matching the H2O paper, but the recent ratio
    is configurable through :class:`CachePolicyConfig`.
    """

    name = "h2o"

    def __init__(self, config: CachePolicyConfig | None = None, damping: float = 1.0):
        if config is None:
            config = CachePolicyConfig(recent_ratio=0.5)
        super().__init__(config, damping=damping)


class KeyAttentionPolicy(_ScoreBasedPolicy):
    """Pure key-token attention: top-``budget`` scored tokens, no recent window.

    This is the "Key Attention" baseline of Figure 3c, demonstrating that key
    tokens alone (without a recent window) are not sufficient.
    """

    name = "key-only"

    def _recent_for_selection(self) -> int:
        return 0


class StreamingLLMPolicy(EvictionPolicy):
    """StreamingLLM attention sinks: first ``n_sinks`` tokens + recent window."""

    name = "streaming-llm"

    def __init__(self, config: CachePolicyConfig | None = None, n_sinks: int = 4):
        super().__init__(config)
        if n_sinks < 0:
            raise ValueError("n_sinks must be non-negative")
        self.n_sinks = n_sinks

    def _sink_selection(self, length: int, shape_prefix: tuple[int, ...]) -> np.ndarray | None:
        if length <= self.budget:
            return None
        n_sinks = min(self.n_sinks, self.budget)
        n_recent = self.budget - n_sinks
        idx = np.concatenate(
            [np.arange(n_sinks), np.arange(length - n_recent, length)]
        )
        idx = np.unique(idx)
        if idx.size < self.budget:
            extra = np.setdiff1d(np.arange(length), idx)[: self.budget - idx.size]
            idx = np.sort(np.concatenate([idx, extra]))
        return np.broadcast_to(idx, shape_prefix + (idx.size,)).copy()

    def initial_selection(self, layer_idx, attn_probs, attn_logits=None, positions=None):
        b, h, _, t = attn_probs.shape
        return self._sink_selection(t, (b, h))

    def step_selection(self, layer_idx, logits, probs, key_positions, step):
        b, h, length = logits.shape
        return self._sink_selection(length, (b, h))


class RandomEvictionPolicy(EvictionPolicy):
    """Recent window + uniformly random older tokens (sanity-check baseline)."""

    name = "random"

    def _random_selection(self, length: int, shape_prefix: tuple[int, ...]) -> np.ndarray | None:
        if length <= self.budget:
            return None
        n_key = self.budget - self.recent_window
        recent = np.arange(length - self.recent_window, length)
        total = int(np.prod(shape_prefix)) if shape_prefix else 1
        picks = np.empty((total, n_key), dtype=np.int64)
        for i in range(total):
            picks[i] = self.rng.choice(length - self.recent_window, size=n_key, replace=False)
        picks = picks.reshape(shape_prefix + (n_key,))
        recent = np.broadcast_to(recent, shape_prefix + (self.recent_window,))
        return np.sort(np.concatenate([picks, recent], axis=-1), axis=-1)

    def initial_selection(self, layer_idx, attn_probs, attn_logits=None, positions=None):
        b, h, _, t = attn_probs.shape
        return self._random_selection(t, (b, h))

    def step_selection(self, layer_idx, logits, probs, key_positions, step):
        b, h, length = logits.shape
        return self._random_selection(length, (b, h))
