"""Policy registry: build any eviction policy from a name plus keyword options."""

from __future__ import annotations

from typing import Any

from repro.core.config import CachePolicyConfig, KeyformerConfig
from repro.core.keyformer import KeyformerPolicy
from repro.core.policies import (
    DilatedWindowPolicy,
    EvictionPolicy,
    FullAttentionPolicy,
    H2OPolicy,
    KeyAttentionPolicy,
    RandomEvictionPolicy,
    StreamingLLMPolicy,
    WindowAttentionPolicy,
)

__all__ = ["POLICIES", "make_policy"]

POLICIES = (
    "full",
    "window",
    "dilated-window",
    "key-only",
    "h2o",
    "streaming-llm",
    "random",
    "keyformer",
)

_CONFIG_FIELDS = set(CachePolicyConfig.__dataclass_fields__)
_KEYFORMER_FIELDS = set(KeyformerConfig.__dataclass_fields__)


def _split_kwargs(kwargs: dict[str, Any], allowed: set[str]) -> tuple[dict, dict]:
    config_kwargs = {k: v for k, v in kwargs.items() if k in allowed}
    other_kwargs = {k: v for k, v in kwargs.items() if k not in allowed}
    return config_kwargs, other_kwargs


def make_policy(name: str, **kwargs: Any) -> EvictionPolicy:
    """Instantiate an eviction policy by name.

    Budget options (``kv_fraction``, ``kv_budget``, ``recent_ratio``,
    ``positional_mode``, ``seed``, ...) are routed into the policy's config
    dataclass; policy-specific options (``dilation``, ``n_sinks``, ``noise``,
    ``tau_init``, ...) are routed to the policy constructor or Keyformer
    config as appropriate.

    Examples
    --------
    >>> make_policy("keyformer", kv_fraction=0.5, recent_ratio=0.3).name
    'keyformer'
    >>> make_policy("h2o", kv_fraction=0.6).name
    'h2o'
    """
    key = name.lower().replace("_", "-")
    if key == "full":
        cfg_kwargs, rest = _split_kwargs(kwargs, _CONFIG_FIELDS)
        _reject_unknown(rest, key)
        return FullAttentionPolicy(CachePolicyConfig(**cfg_kwargs) if cfg_kwargs else None)
    if key == "window":
        cfg_kwargs, rest = _split_kwargs(kwargs, _CONFIG_FIELDS)
        _reject_unknown(rest, key)
        return WindowAttentionPolicy(CachePolicyConfig(**cfg_kwargs) if cfg_kwargs else None)
    if key == "dilated-window":
        cfg_kwargs, rest = _split_kwargs(kwargs, _CONFIG_FIELDS)
        dilation = rest.pop("dilation", 1)
        _reject_unknown(rest, key)
        return DilatedWindowPolicy(
            CachePolicyConfig(**cfg_kwargs) if cfg_kwargs else None, dilation=dilation
        )
    if key == "key-only":
        cfg_kwargs, rest = _split_kwargs(kwargs, _CONFIG_FIELDS)
        damping = rest.pop("damping", 1.0)
        _reject_unknown(rest, key)
        return KeyAttentionPolicy(
            CachePolicyConfig(**cfg_kwargs) if cfg_kwargs else None, damping=damping
        )
    if key == "h2o":
        cfg_kwargs, rest = _split_kwargs(kwargs, _CONFIG_FIELDS)
        damping = rest.pop("damping", 1.0)
        _reject_unknown(rest, key)
        cfg_kwargs.setdefault("recent_ratio", 0.5)
        return H2OPolicy(CachePolicyConfig(**cfg_kwargs), damping=damping)
    if key == "streaming-llm":
        cfg_kwargs, rest = _split_kwargs(kwargs, _CONFIG_FIELDS)
        n_sinks = rest.pop("n_sinks", 4)
        _reject_unknown(rest, key)
        return StreamingLLMPolicy(
            CachePolicyConfig(**cfg_kwargs) if cfg_kwargs else None, n_sinks=n_sinks
        )
    if key == "random":
        cfg_kwargs, rest = _split_kwargs(kwargs, _CONFIG_FIELDS)
        _reject_unknown(rest, key)
        return RandomEvictionPolicy(CachePolicyConfig(**cfg_kwargs) if cfg_kwargs else None)
    if key == "keyformer":
        cfg_kwargs, rest = _split_kwargs(kwargs, _KEYFORMER_FIELDS)
        _reject_unknown(rest, key)
        return KeyformerPolicy(KeyformerConfig(**cfg_kwargs))
    raise KeyError(f"unknown policy {name!r}; available: {POLICIES}")


def _reject_unknown(rest: dict[str, Any], name: str) -> None:
    if rest:
        raise TypeError(f"unexpected options for policy {name!r}: {sorted(rest)}")
