"""Score functions used to identify key tokens.

Two families are implemented:

* :class:`AccumulatedAttentionScore` — the H2O-style score ``f_θ(acc attn)``
  that accumulates post-softmax attention probabilities over decoding steps
  (Eq. 2–3), optionally damped by a factor α (§2.3.3, Figure 5).
* :class:`KeyformerScore` — the paper's Gumbel-softmax score (Eq. 9): the
  unnormalized logits are perturbed with noise ζ drawn from a configurable
  distribution and normalized with a temperature τ that grows as tokens are
  discarded (Eq. 10).

Both maintain one accumulator per decoder layer (per head, per batch element)
or a single shared accumulator (Table 3 ablation).  Accumulators are kept in
*cache order*: index ``j`` of the accumulator corresponds to the ``j``-th
entry of the layer's KV cache, and :meth:`gather` must be called whenever the
cache evicts entries so the two stay aligned.
"""

from __future__ import annotations

import numpy as np

from repro.core.distributions import NoiseDistribution, make_noise
from repro.core.temperature import ConstantTauSchedule, LinearTauSchedule, TauSchedule
from repro.models.tensor_ops import softmax

__all__ = ["entropy", "BaseScore", "AccumulatedAttentionScore", "KeyformerScore"]


def entropy(probabilities: np.ndarray, axis: int = -1) -> np.ndarray:
    """Shannon entropy ``H(p) = -Σ p log p`` along ``axis`` (natural log)."""
    p = np.asarray(probabilities, dtype=np.float64)
    safe = np.where(p > 0, p, 1.0)
    return -np.sum(p * np.log(safe), axis=axis)


class BaseScore:
    """Common storage/gather logic for per-layer score accumulators.

    Accumulators live in preallocated slabs of shape ``(B, H, capacity)``
    with a live-length cursor (mirroring the KV-cache slab layout), so the
    per-token score update is an in-place add and eviction is an in-place
    compaction — no concatenate-growth on the decode hot path.  The slab
    dtype follows the contribution dtype, which is how the model's
    ``compute_dtype`` reaches the score accumulators.
    """

    def __init__(self, shared: bool = False):
        self.shared = shared
        self._slabs: dict[int, np.ndarray] = {}
        self._lens: dict[int, int] = {}
        # Cached flat row offsets for the gather kernel, keyed like _slabs;
        # invalidated whenever a slab is reallocated or reordered.
        self._offsets: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _key(self, layer_idx: int) -> int:
        return 0 if self.shared else layer_idx

    def reset(self) -> None:
        """Drop all accumulated state (called at the start of each sequence)."""
        self._slabs = {}
        self._lens = {}
        self._offsets = {}

    def get(self, layer_idx: int) -> np.ndarray:
        """Current accumulator for ``layer_idx`` (shape ``(B, H, L)``).

        Returns a live view into the slab; it is valid until the next
        ``_accumulate``/``gather``/``reorder`` call for this layer.
        """
        key = self._key(layer_idx)
        if key not in self._slabs:
            raise KeyError(f"score for layer {layer_idx} not initialized")
        return self._slabs[key][..., : self._lens[key]]

    def has(self, layer_idx: int) -> bool:
        return self._key(layer_idx) in self._slabs

    def set(self, layer_idx: int, scores: np.ndarray) -> None:
        scores = np.asarray(scores)
        if not np.issubdtype(scores.dtype, np.floating):
            scores = scores.astype(np.float64)
        key = self._key(layer_idx)
        self._slabs[key] = scores.copy()
        self._lens[key] = scores.shape[-1]
        self._offsets.pop(key, None)

    def _grow(self, key: int, needed: int) -> None:
        slab = self._slabs[key]
        new_cap = max(16, 2 * slab.shape[-1], needed)
        fresh = np.empty(slab.shape[:-1] + (new_cap,), dtype=slab.dtype)
        fresh[..., : self._lens[key]] = slab[..., : self._lens[key]]
        self._slabs[key] = fresh
        self._offsets.pop(key, None)

    def _scale(self, layer_idx: int, factor: float) -> None:
        """Multiply the live accumulator in place (score damping)."""
        key = self._key(layer_idx)
        if key in self._slabs:
            self._slabs[key][..., : self._lens[key]] *= factor

    def _accumulate(self, layer_idx: int, contribution: np.ndarray) -> np.ndarray:
        """Add ``contribution`` (shape ``(B, H, L)``), growing the accumulator
        with zero-initialized slots for newly appended cache entries."""
        contribution = np.asarray(contribution)
        key = self._key(layer_idx)
        length = contribution.shape[-1]
        if key not in self._slabs:
            dtype = (
                contribution.dtype
                if np.issubdtype(contribution.dtype, np.floating)
                else np.float64
            )
            self._slabs[key] = contribution.astype(dtype, copy=True)
            self._lens[key] = length
            return self.get(layer_idx)
        current_len = self._lens[key]
        if current_len > length:
            raise ValueError(
                f"score length {current_len} exceeds contribution length {length}; "
                "cache and score are out of sync"
            )
        if length > self._slabs[key].shape[-1]:
            self._grow(key, length)
        if current_len < length:
            self._slabs[key][..., current_len:length] = 0.0
            self._lens[key] = length
        self._slabs[key][..., :length] += contribution
        return self.get(layer_idx)

    def gather(self, layer_idx: int, indices: np.ndarray) -> None:
        """Keep only the accumulator entries selected by ``indices`` (B, H, K).

        Compacts the slab in place; an identity selection is a no-op.
        """
        key = self._key(layer_idx)
        if key not in self._slabs:
            return
        indices = np.asarray(indices)
        length = self._lens[key]
        k = indices.shape[-1]
        if k == length and bool((indices == np.arange(length)).all()):
            return
        slab = self._slabs[key]
        n_rows = int(np.prod(slab.shape[:-1]))
        offsets = self._offsets.get(key)
        if offsets is None:
            offsets = (np.arange(n_rows) * slab.shape[-1])[:, None]
            self._offsets[key] = offsets
        # Flattened row-gather (much cheaper than take_along_axis per step).
        gidx = (offsets + indices.reshape(n_rows, k)).reshape(-1)
        slab[..., :k] = slab.reshape(-1).take(gidx).reshape(slab.shape[:-1] + (k,))
        self._lens[key] = k

    def reorder(self, batch_indices: np.ndarray) -> None:
        """Reorder the batch/beam dimension of every accumulator (beam search)."""
        batch_indices = np.asarray(batch_indices, dtype=np.int64)
        for key, slab in self._slabs.items():
            self._slabs[key] = slab[batch_indices]
        self._offsets = {}


class AccumulatedAttentionScore(BaseScore):
    """H2O-style accumulated attention score with optional damping."""

    name = "accumulated-attention"

    def __init__(self, shared: bool = False, damping: float = 1.0, prompt_mode: str = "all"):
        super().__init__(shared=shared)
        if not (0.0 < damping <= 1.0):
            raise ValueError("damping must be in (0, 1]")
        self.damping = damping
        self.prompt_mode = prompt_mode

    def init_from_prompt(
        self,
        layer_idx: int,
        attn_probs: np.ndarray,
        attn_logits: np.ndarray | None = None,
        positions: np.ndarray | None = None,
    ) -> np.ndarray:
        """Accumulate the prompt-phase attention matrix ``(B, H, T, T)``."""
        if self.prompt_mode == "all":
            contribution = attn_probs.sum(axis=-2)
        else:
            contribution = attn_probs[..., -1, :]
        return self._accumulate(layer_idx, contribution)

    def update(
        self,
        layer_idx: int,
        logits: np.ndarray,
        probs: np.ndarray,
        positions: np.ndarray | None = None,
        step: int = 0,
    ) -> np.ndarray:
        """Accumulate one decoding step's attention probabilities ``(B, H, L)``."""
        if self.damping < 1.0:
            self._scale(layer_idx, self.damping)
        return self._accumulate(layer_idx, probs)


class KeyformerScore(BaseScore):
    """Keyformer's Gumbel-softmax score function (Eq. 9).

    Parameters
    ----------
    noise:
        A :class:`NoiseDistribution` instance or one of the names accepted by
        :func:`repro.core.distributions.make_noise`.
    tau_schedule:
        Temperature schedule; defaults to the paper's linear 1 → 2 schedule
        when ``total_steps`` is provided via :meth:`configure_schedule`.
    shared:
        Share one accumulator across layers (Table 3 ablation).
    max_positions:
        Length of the noise vector ζ indexed by original token position.
    resample:
        ``"per-step"`` (default) redraws ζ at every decoding step, as in the
        Gumbel-softmax reparameterization the paper builds on (Jang et al.,
        2016) — the noise then acts as a regularizer whose effect averages out
        over the accumulation.  ``"fixed"`` draws ζ once per sequence
        (a literal reading of Algorithm 1's initialization line); at the small
        scale of this reproduction a fixed draw permanently biases a few
        arbitrary positions and measurably hurts accuracy, so it is exposed
        only as an ablation knob.
    """

    name = "keyformer"

    def __init__(
        self,
        noise: NoiseDistribution | str = "gumbel",
        tau_schedule: TauSchedule | None = None,
        shared: bool = False,
        max_positions: int = 4096,
        seed: int = 0,
        prompt_mode: str = "all",
        damping: float = 1.0,
        resample: str = "per-step",
    ):
        super().__init__(shared=shared)
        if resample not in ("per-step", "fixed"):
            raise ValueError(f"resample must be 'per-step' or 'fixed', got {resample!r}")
        self.noise = make_noise(noise) if isinstance(noise, str) else noise
        self.tau_schedule = tau_schedule or ConstantTauSchedule(1.0)
        self.max_positions = max_positions
        self.seed = seed
        self.prompt_mode = prompt_mode
        self.damping = damping
        self.resample = resample
        self.rng = np.random.default_rng(seed)
        self.zeta = self.noise.sample(max_positions, self.rng)
        self._last_resample_step: int | None = None

    # ------------------------------------------------------------------
    def configure_schedule(self, tau_init: float, tau_end: float, total_steps: int) -> None:
        """Install the dynamic τ schedule of Eq. 10 for a generation of
        ``total_steps`` tokens."""
        self.tau_schedule = LinearTauSchedule(tau_init, tau_end, total_steps)

    def reset(self) -> None:
        """Reset accumulators and re-sample the noise vector ζ."""
        super().reset()
        self.rng = np.random.default_rng(self.seed)
        self.zeta = self.noise.sample(self.max_positions, self.rng)
        self._last_resample_step = None

    def _zeta_for(self, positions: np.ndarray) -> np.ndarray:
        """Fixed-mode noise values for the given original positions."""
        idx = np.clip(np.asarray(positions, dtype=np.int64), 0, self.max_positions - 1)
        return self.zeta[idx]

    def noisy_softmax(
        self, logits: np.ndarray, positions: np.ndarray | None, tau: float
    ) -> np.ndarray:
        """``softmax((x + ζ)/τ)`` over the last axis, leaving ``-inf`` masked.

        In ``per-step`` mode the adjustment ζ is drawn fresh for every call
        (element-wise, as in the Gumbel-softmax reparameterization); in
        ``fixed`` mode token ``i`` always receives the same ζ_i, indexed by its
        original position.
        """
        logits = np.asarray(logits)
        if not np.issubdtype(logits.dtype, np.floating):
            logits = logits.astype(np.float64)
        if self.resample == "per-step":
            zeta = self.noise.sample(logits.size, self.rng).reshape(logits.shape)
        elif positions is None:
            zeta = self.zeta[: logits.shape[-1]]
        else:
            zeta = self._zeta_for(positions)
        zeta = np.asarray(zeta, dtype=logits.dtype)
        # Masked entries are exactly -inf and the noise is finite, so
        # (-inf + zeta) / tau == -inf without an explicit isfinite mask.
        adjusted = logits + zeta
        adjusted /= tau
        return softmax(adjusted, axis=-1)

    # ------------------------------------------------------------------
    def init_from_prompt(
        self,
        layer_idx: int,
        attn_probs: np.ndarray,
        attn_logits: np.ndarray | None = None,
        positions: np.ndarray | None = None,
    ) -> np.ndarray:
        """Prompt-phase accumulation using the unnormalized logits ``(B, H, T, T)``.

        The prompt phase uses τ(0) = τ_init (no tokens have been discarded
        yet), so with τ_init = 1 the noisy softmax is close to the standard
        softmax as described in §3.3.1.
        """
        if attn_logits is None:
            raise ValueError("KeyformerScore requires the unnormalized prompt logits")
        tau = self.tau_schedule(0)
        seq_len = attn_logits.shape[-1]
        pos = np.arange(seq_len) if positions is None else np.asarray(positions)
        noisy = self.noisy_softmax(attn_logits, pos, tau)
        if self.prompt_mode == "all":
            contribution = noisy.sum(axis=-2)
        else:
            contribution = noisy[..., -1, :]
        return self._accumulate(layer_idx, contribution)

    def update(
        self,
        layer_idx: int,
        logits: np.ndarray,
        probs: np.ndarray,
        positions: np.ndarray | None = None,
        step: int = 0,
    ) -> np.ndarray:
        """Decoding-step accumulation using the step's unnormalized logits."""
        tau = self.tau_schedule(step)
        if self.damping < 1.0:
            self._scale(layer_idx, self.damping)
        contribution = self.noisy_softmax(logits, positions, tau)
        return self._accumulate(layer_idx, contribution)
