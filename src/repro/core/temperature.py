"""Temperature schedules for the Keyformer score function (Eq. 10)."""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["TauSchedule", "ConstantTauSchedule", "LinearTauSchedule"]


class TauSchedule(ABC):
    """Maps a decoding-step index to a temperature value τ."""

    @abstractmethod
    def __call__(self, step: int) -> float:
        """Temperature at decoding step ``step`` (0 = prompt phase)."""


class ConstantTauSchedule(TauSchedule):
    """Static temperature used for the Figure 16 ablation."""

    def __init__(self, tau: float = 1.0):
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.tau = tau

    def __call__(self, step: int) -> float:
        return self.tau

    def __repr__(self) -> str:
        return f"ConstantTauSchedule(tau={self.tau})"


class LinearTauSchedule(TauSchedule):
    """Linearly increasing temperature ``τ = τ_init + t·Δτ`` (Eq. 10).

    ``Δτ = (τ_end − τ_init) / T`` where ``T`` is the expected text-generation
    length.  As more tokens are discarded the schedule increases randomness in
    the score function, compensating for the missing probability mass of the
    discarded tokens.
    """

    def __init__(self, tau_init: float = 1.0, tau_end: float = 2.0, total_steps: int = 1):
        if tau_init <= 0 or tau_end <= 0:
            raise ValueError("temperatures must be positive")
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.tau_init = tau_init
        self.tau_end = tau_end
        self.total_steps = total_steps
        self.delta = (tau_end - tau_init) / total_steps

    def __call__(self, step: int) -> float:
        step = max(int(step), 0)
        tau = self.tau_init + step * self.delta
        low, high = sorted((self.tau_init, self.tau_end))
        return float(min(max(tau, low), high))

    def __repr__(self) -> str:
        return (
            f"LinearTauSchedule(tau_init={self.tau_init}, tau_end={self.tau_end}, "
            f"total_steps={self.total_steps})"
        )
