"""Synthetic datasets standing in for the paper's evaluation corpora.

The paper evaluates on CNN/DailyMail and GovReport (summarization), SODA
(conversation) and four lm-eval-harness multiple-choice tasks.  Those corpora
are unavailable offline, so this subpackage generates synthetic analogues that
preserve the property the paper's evaluation depends on: *a small set of
distant "key" tokens (salient facts) carries the information needed to produce
the reference output*, so cache-eviction policies that keep those tokens
(Keyformer, H2O) succeed while purely recency-based policies (window
attention) fail.
"""

from repro.data.world import SyntheticWorld, Fact
from repro.data.summarization import (
    SummarizationExample,
    SummarizationDataset,
    SummarizationConfig,
)
from repro.data.conversation import (
    ConversationExample,
    ConversationDataset,
    ConversationConfig,
)
from repro.data.fewshot import (
    MCQExample,
    FewShotTask,
    FewShotConfig,
    FEWSHOT_TASKS,
    make_fewshot_task,
)
from repro.data.registry import DATASETS, make_dataset, build_shared_tokenizer

__all__ = [
    "SyntheticWorld",
    "Fact",
    "SummarizationExample",
    "SummarizationDataset",
    "SummarizationConfig",
    "ConversationExample",
    "ConversationDataset",
    "ConversationConfig",
    "MCQExample",
    "FewShotTask",
    "FewShotConfig",
    "FEWSHOT_TASKS",
    "make_fewshot_task",
    "DATASETS",
    "make_dataset",
    "build_shared_tokenizer",
]
