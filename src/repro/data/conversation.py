"""Synthetic multi-turn conversation dataset (SODA analogue).

Each example is a dialogue in which persona facts are stated in the opening
turns, several filler turns follow, and the final user turn asks about one of
the persona facts.  The reference response restates the fact — so, exactly as
in the summarization task, producing the reference requires attending to
tokens far outside a recent window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.world import Fact, SyntheticWorld
from repro.data.summarization import IGNORE_INDEX
from repro.tokenizer.word import WordTokenizer

__all__ = ["ConversationConfig", "ConversationExample", "ConversationDataset"]


@dataclass
class ConversationConfig:
    """Parameters of the synthetic dialogue generator."""

    n_examples: int = 64
    n_persona_facts: tuple[int, int] = (2, 3)
    n_filler_turns: tuple[int, int] = (4, 8)
    filler_sentence_length: int = 7
    seed: int = 0
    name: str = "synthetic-soda"

    def __post_init__(self) -> None:
        if self.n_examples <= 0:
            raise ValueError("n_examples must be positive")


@dataclass
class ConversationExample:
    """A dialogue prompt and its reference response."""

    dialogue: str
    question: str
    response: str
    facts: list[Fact] = field(default_factory=list)

    def prompt_text(self) -> str:
        """The text the model conditions on (dialogue plus final question)."""
        return f"{self.dialogue} {self.question}"


class ConversationDataset:
    """Deterministic collection of synthetic dialogues."""

    def __init__(self, world: SyntheticWorld, config: ConversationConfig | None = None):
        self.world = world
        self.config = config or ConversationConfig()
        self.examples: list[ConversationExample] = self._generate()

    # ------------------------------------------------------------------
    def _generate(self) -> list[ConversationExample]:
        rng = np.random.default_rng(self.config.seed)
        cfg = self.config
        examples = []
        for _ in range(cfg.n_examples):
            n_facts = int(rng.integers(cfg.n_persona_facts[0], cfg.n_persona_facts[1] + 1))
            n_filler = int(rng.integers(cfg.n_filler_turns[0], cfg.n_filler_turns[1] + 1))
            facts = self.world.sample_facts(n_facts, rng)

            turns = [f"{fact.entity} said that {fact.sentence()}" for fact in facts]
            turns += self.world.filler_text(n_filler, rng, cfg.filler_sentence_length)
            target_fact = facts[int(rng.integers(0, len(facts)))]
            # The closing question names only the entity, so answering requires
            # recalling the relation *and* value stated in the opening turns —
            # a recency-only cache cannot reconstruct the reply.
            question = f"question : {target_fact.entity} ?"
            response = target_fact.sentence()
            examples.append(
                ConversationExample(
                    dialogue=" ".join(turns),
                    question=question,
                    response=response,
                    facts=facts,
                )
            )
        return examples

    def __len__(self) -> int:
        return len(self.examples)

    def __getitem__(self, idx: int) -> ConversationExample:
        return self.examples[idx]

    # ------------------------------------------------------------------
    def corpus_text(self) -> list[str]:
        return [ex.prompt_text() + " " + ex.response for ex in self.examples]

    def max_sequence_length(self, tokenizer: WordTokenizer) -> int:
        longest = 0
        for ex in self.examples:
            n = (
                len(tokenizer.encode(ex.prompt_text()))
                + len(tokenizer.encode(ex.response))
                + 3
            )
            longest = max(longest, n)
        return longest

    def to_training_pairs(
        self, tokenizer: WordTokenizer, max_len: int
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Fixed-length training pairs; loss active only on the response."""
        pairs = []
        for ex in self.examples:
            prompt_ids = (
                [tokenizer.vocab.bos_id]
                + tokenizer.encode(ex.prompt_text())
                + [tokenizer.vocab.sep_id]
            )
            response_ids = tokenizer.encode(ex.response) + [tokenizer.vocab.eos_id]
            full = (prompt_ids + response_ids)[:max_len]
            inputs = np.full(max_len, tokenizer.vocab.pad_id, dtype=np.int64)
            inputs[: len(full)] = full
            targets = np.full(max_len, IGNORE_INDEX, dtype=np.int64)
            start = len(prompt_ids) - 1
            end = min(len(full) - 1, max_len - 1)
            for t in range(start, end):
                targets[t] = full[t + 1]
            pairs.append((inputs, targets))
        return pairs

    def to_eval_prompts(
        self, tokenizer: WordTokenizer, limit: int | None = None
    ) -> list[tuple[list[int], str]]:
        """(prompt_ids, reference_response) pairs for generation evaluation."""
        prompts = []
        for ex in self.examples[: limit or len(self.examples)]:
            prompt = (
                [tokenizer.vocab.bos_id]
                + tokenizer.encode(ex.prompt_text())
                + [tokenizer.vocab.sep_id]
            )
            prompts.append((prompt, ex.response))
        return prompts
