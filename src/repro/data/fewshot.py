"""Synthetic multiple-choice few-shot tasks (lm-eval-harness analogues).

The paper's Table 2 evaluates COPA, OpenBookQA, Winogrande and PIQA with 0 and
5 shots under 50 % KV-cache reduction.  The synthetic analogues below share
the evaluation protocol — a few-shot prompt of question/answer exemplars
followed by a query whose candidate answers are scored by log-likelihood —
while drawing content from :class:`repro.data.world.SyntheticWorld`.  Each of
the four named tasks uses a different surface template so the prompts differ
in length and structure, mirroring the diversity of the original tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.data.world import Fact, SyntheticWorld
from repro.tokenizer.word import WordTokenizer

__all__ = ["FewShotConfig", "MCQExample", "FewShotTask", "FEWSHOT_TASKS", "make_fewshot_task"]


@dataclass
class FewShotConfig:
    """Parameters of a synthetic few-shot task."""

    n_examples: int = 32
    n_options: int = 2
    n_context_facts: int = 3
    n_filler_sentences: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_options < 2:
            raise ValueError("n_options must be at least 2")
        if self.n_examples <= 0:
            raise ValueError("n_examples must be positive")


@dataclass
class MCQExample:
    """A context, a question, candidate answers and the correct index."""

    context: str
    question: str
    options: list[str]
    answer_index: int
    facts: list[Fact] = field(default_factory=list)

    def prompt_text(self) -> str:
        return f"{self.context} question : {self.question} answer :"

    def render_with_answer(self) -> str:
        """Exemplar rendering used in few-shot prompts."""
        return f"{self.prompt_text()} {self.options[self.answer_index]} ."


# ----------------------------------------------------------------------
# Task templates
# ----------------------------------------------------------------------

def _copa_template(fact: Fact) -> tuple[str, str]:
    """COPA-like: choose the plausible consequence of a stated fact."""
    question = f"what {fact.relation} {fact.entity} ?"
    return fact.sentence(), question


def _openbookqa_template(fact: Fact) -> tuple[str, str]:
    question = f"the thing that {fact.entity} {fact.relation} is"
    return f"it is true that {fact.sentence()}", question


def _winogrande_template(fact: Fact) -> tuple[str, str]:
    question = f"{fact.entity} {fact.relation} which"
    return f"{fact.entity} is a person . {fact.sentence()}", question


def _piqa_template(fact: Fact) -> tuple[str, str]:
    question = f"best choice for {fact.entity} about {fact.relation}"
    return f"{fact.sentence()} so then", question


_TEMPLATES: dict[str, Callable[[Fact], tuple[str, str]]] = {
    "copa-synthetic": _copa_template,
    "openbookqa-synthetic": _openbookqa_template,
    "winogrande-synthetic": _winogrande_template,
    "piqa-synthetic": _piqa_template,
}

FEWSHOT_TASKS = tuple(_TEMPLATES.keys())


class FewShotTask:
    """A named synthetic multiple-choice task."""

    def __init__(self, name: str, world: SyntheticWorld, config: FewShotConfig | None = None):
        if name not in _TEMPLATES:
            raise KeyError(f"unknown few-shot task {name!r}; available: {sorted(_TEMPLATES)}")
        self.name = name
        self.world = world
        self.config = config or FewShotConfig()
        self.template = _TEMPLATES[name]
        self.examples: list[MCQExample] = self._generate()

    # ------------------------------------------------------------------
    def _generate(self) -> list[MCQExample]:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + hash(self.name) % (2**16))
        examples = []
        for _ in range(cfg.n_examples):
            facts = self.world.sample_facts(cfg.n_context_facts, rng)
            target = facts[int(rng.integers(0, len(facts)))]
            context_sentences = [f.sentence() for f in facts]
            context_sentences += self.world.filler_text(cfg.n_filler_sentences, rng)
            order = rng.permutation(len(context_sentences))
            context = " ".join(context_sentences[i] for i in order)

            template_context, question = self.template(target)
            context = f"{template_context} {context}"

            options = [target.value]
            while len(options) < cfg.n_options:
                distractor = self.world.distractor_value(target, rng)
                if distractor not in options:
                    options.append(distractor)
            answer_index = int(rng.integers(0, cfg.n_options))
            options[0], options[answer_index] = options[answer_index], options[0]
            examples.append(
                MCQExample(
                    context=context,
                    question=question,
                    options=options,
                    answer_index=answer_index,
                    facts=facts,
                )
            )
        return examples

    def __len__(self) -> int:
        return len(self.examples)

    def __getitem__(self, idx: int) -> MCQExample:
        return self.examples[idx]

    # ------------------------------------------------------------------
    def corpus_text(self) -> list[str]:
        return [ex.render_with_answer() for ex in self.examples]

    def build_prompt(
        self,
        query: MCQExample,
        n_shots: int,
        exemplars: Sequence[MCQExample],
    ) -> str:
        """Compose an ``n_shots`` few-shot prompt ending at ``answer :``."""
        if n_shots > len(exemplars):
            raise ValueError(f"requested {n_shots} shots but only {len(exemplars)} exemplars")
        shots = [ex.render_with_answer() for ex in exemplars[:n_shots]]
        return " ".join(shots + [query.prompt_text()])

    def evaluation_items(
        self, tokenizer: WordTokenizer, n_shots: int = 0, limit: int | None = None
    ) -> list[dict]:
        """Render examples into log-likelihood scoring items.

        Each item contains the encoded prompt, the encoded candidate
        continuations and the index of the correct candidate.  Exemplars for
        few-shot prompts are drawn from the *end* of the example list so they
        never overlap with the queries being evaluated.
        """
        n_queries = limit or max(len(self.examples) - n_shots, 1)
        n_queries = min(n_queries, len(self.examples) - n_shots)
        if n_queries <= 0:
            raise ValueError("not enough examples for the requested number of shots")
        exemplars = self.examples[len(self.examples) - n_shots:] if n_shots else []
        items = []
        for query in self.examples[:n_queries]:
            prompt = self.build_prompt(query, n_shots, exemplars)
            prompt_ids = [tokenizer.vocab.bos_id] + tokenizer.encode(prompt)
            option_ids = [tokenizer.encode(" " + opt) for opt in query.options]
            items.append(
                {
                    "prompt_ids": prompt_ids,
                    "option_ids": option_ids,
                    "answer_index": query.answer_index,
                    "task": self.name,
                    "n_shots": n_shots,
                }
            )
        return items


def make_fewshot_task(
    name: str, world: SyntheticWorld | None = None, config: FewShotConfig | None = None
) -> FewShotTask:
    """Factory for a named synthetic few-shot task."""
    world = world or SyntheticWorld(seed=0)
    return FewShotTask(name, world, config)
