"""Dataset registry and shared tokenizer construction."""

from __future__ import annotations

from typing import Any

from repro.data.conversation import ConversationConfig, ConversationDataset
from repro.data.fewshot import FEWSHOT_TASKS, FewShotConfig, FewShotTask
from repro.data.summarization import SummarizationConfig, SummarizationDataset
from repro.data.world import SyntheticWorld
from repro.tokenizer.word import WordTokenizer

__all__ = ["DATASETS", "make_dataset", "build_shared_tokenizer"]

DATASETS = (
    "cnn_dailymail",
    "govreport",
    "soda",
) + FEWSHOT_TASKS


def build_shared_tokenizer(world: SyntheticWorld | None = None) -> WordTokenizer:
    """Build one tokenizer that covers every dataset generated from the world.

    Using a single closed-vocabulary tokenizer for all tasks mirrors the paper
    setup, where one pretrained tokenizer serves every evaluation dataset.
    """
    world = world or SyntheticWorld(seed=0)
    return WordTokenizer.from_corpus([world.full_vocabulary_text()])


def make_dataset(name: str, world: SyntheticWorld | None = None, **kwargs: Any):
    """Instantiate a dataset (or few-shot task) by registry name.

    Parameters
    ----------
    name:
        One of :data:`DATASETS`: ``cnn_dailymail``, ``govreport``, ``soda`` or
        a few-shot task name.
    world:
        Optional shared :class:`SyntheticWorld`; a seed-0 world is created if
        omitted.
    kwargs:
        Forwarded to the dataset config (e.g. ``n_examples=...``, ``seed=...``).
    """
    world = world or SyntheticWorld(seed=0)
    if name == "cnn_dailymail":
        return SummarizationDataset(world, SummarizationConfig.cnn_dailymail_mini(**kwargs))
    if name == "govreport":
        return SummarizationDataset(world, SummarizationConfig.govreport_mini(**kwargs))
    if name == "soda":
        return ConversationDataset(world, ConversationConfig(**kwargs))
    if name in FEWSHOT_TASKS:
        return FewShotTask(name, world, FewShotConfig(**kwargs) if kwargs else None)
    raise KeyError(f"unknown dataset {name!r}; available: {DATASETS}")
