"""Synthetic summarization datasets (CNN/DailyMail and GovReport analogues).

Each example is a *document* (fact sentences buried in filler) and a
*reference summary* (the facts, in order of appearance).  The training format
is ``<bos> document <sep> summary <eos>`` with the loss masked on the document
part; the evaluation format is the prompt ``<bos> document <sep>`` from which
the model must generate the summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.world import Fact, SyntheticWorld
from repro.tokenizer.word import WordTokenizer

__all__ = ["SummarizationConfig", "SummarizationExample", "SummarizationDataset"]

IGNORE_INDEX = -100


@dataclass
class SummarizationConfig:
    """Parameters controlling document/summary sizes.

    The default configuration mimics CNN/DailyMail at mini scale; the
    ``long_document`` preset mimics GovReport (longer documents, more facts)
    and is used for the long-context experiment (Figure 8).
    """

    n_examples: int = 64
    n_facts: tuple[int, int] = (2, 4)
    n_filler_sentences: tuple[int, int] = (6, 10)
    filler_sentence_length: int = 8
    seed: int = 0
    name: str = "synthetic-cnndm"

    def __post_init__(self) -> None:
        if self.n_examples <= 0:
            raise ValueError("n_examples must be positive")
        if self.n_facts[0] > self.n_facts[1] or self.n_facts[0] <= 0:
            raise ValueError("n_facts must be a non-empty (low, high) range")
        if self.n_filler_sentences[0] > self.n_filler_sentences[1]:
            raise ValueError("n_filler_sentences must be a (low, high) range")

    @classmethod
    def cnn_dailymail_mini(cls, n_examples: int = 64, seed: int = 0) -> "SummarizationConfig":
        """Standard-length summarization preset (CNN/DailyMail analogue)."""
        return cls(n_examples=n_examples, seed=seed, name="synthetic-cnndm")

    @classmethod
    def govreport_mini(cls, n_examples: int = 32, seed: int = 0) -> "SummarizationConfig":
        """Long-document preset (GovReport analogue) for Figure 8."""
        return cls(
            n_examples=n_examples,
            n_facts=(4, 7),
            n_filler_sentences=(22, 30),
            filler_sentence_length=9,
            seed=seed,
            name="synthetic-govreport",
        )


@dataclass
class SummarizationExample:
    """A single document/summary pair with its underlying facts."""

    document: str
    summary: str
    facts: list[Fact] = field(default_factory=list)


class SummarizationDataset:
    """Deterministic collection of synthetic summarization examples."""

    def __init__(self, world: SyntheticWorld, config: SummarizationConfig | None = None):
        self.world = world
        self.config = config or SummarizationConfig()
        self.examples: list[SummarizationExample] = self._generate()

    # ------------------------------------------------------------------
    def _generate(self) -> list[SummarizationExample]:
        rng = np.random.default_rng(self.config.seed)
        examples = []
        for _ in range(self.config.n_examples):
            n_facts = int(rng.integers(self.config.n_facts[0], self.config.n_facts[1] + 1))
            n_filler = int(
                rng.integers(
                    self.config.n_filler_sentences[0], self.config.n_filler_sentences[1] + 1
                )
            )
            facts = self.world.sample_facts(n_facts, rng)
            document = self.world.compose_document(
                facts,
                n_filler,
                rng,
                sentence_length=self.config.filler_sentence_length,
            )
            summary = " ".join(fact.sentence() for fact in facts)
            examples.append(SummarizationExample(document, summary, facts))
        return examples

    def __len__(self) -> int:
        return len(self.examples)

    def __getitem__(self, idx: int) -> SummarizationExample:
        return self.examples[idx]

    # ------------------------------------------------------------------
    def corpus_text(self) -> list[str]:
        """All raw text (for tokenizer fitting)."""
        return [ex.document + " " + ex.summary for ex in self.examples]

    def max_sequence_length(self, tokenizer: WordTokenizer) -> int:
        """Longest ``<bos> doc <sep> summary <eos>`` sequence in the dataset."""
        longest = 0
        for ex in self.examples:
            n = (
                len(tokenizer.encode(ex.document))
                + len(tokenizer.encode(ex.summary))
                + 3  # bos, sep, eos
            )
            longest = max(longest, n)
        return longest

    def to_training_pairs(
        self, tokenizer: WordTokenizer, max_len: int
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Render examples as fixed-length (input_ids, target_ids) pairs.

        ``target_ids[t]`` is the token the model should predict after seeing
        ``input_ids[:t+1]``; document positions and padding are masked with
        ``IGNORE_INDEX`` so only the summary is learned.
        """
        pairs = []
        for ex in self.examples:
            doc_ids = [tokenizer.vocab.bos_id] + tokenizer.encode(ex.document) + [
                tokenizer.vocab.sep_id
            ]
            sum_ids = tokenizer.encode(ex.summary) + [tokenizer.vocab.eos_id]
            full = doc_ids + sum_ids
            full = full[:max_len]
            inputs = np.full(max_len, tokenizer.vocab.pad_id, dtype=np.int64)
            inputs[: len(full)] = full

            targets = np.full(max_len, IGNORE_INDEX, dtype=np.int64)
            # Predict summary tokens: position t predicts token t+1, so targets
            # are active from the <sep> position through the second-to-last
            # summary token.
            start = len(doc_ids) - 1
            end = min(len(full) - 1, max_len - 1)
            for t in range(start, end):
                targets[t] = full[t + 1]
            pairs.append((inputs, targets))
        return pairs

    def to_eval_prompts(
        self, tokenizer: WordTokenizer, limit: int | None = None
    ) -> list[tuple[list[int], str]]:
        """Render examples as (prompt_ids, reference_summary) for generation."""
        prompts = []
        for ex in self.examples[: limit or len(self.examples)]:
            prompt = (
                [tokenizer.vocab.bos_id]
                + tokenizer.encode(ex.document)
                + [tokenizer.vocab.sep_id]
            )
            prompts.append((prompt, ex.summary))
        return prompts

    def summary_lengths(self, tokenizer: WordTokenizer) -> list[int]:
        """Token length of each reference summary (plus EOS)."""
        return [len(tokenizer.encode(ex.summary)) + 1 for ex in self.examples]
