"""Closed-vocabulary synthetic world from which all datasets are generated.

The world defines a set of entities, relations and values plus a pool of
filler words.  Every dataset (summarization, conversation, few-shot QA) embeds
*facts* — ``(entity, relation, value)`` triples rendered as short sentences —
inside longer filler text.  Reference outputs are derived from the facts, so a
model can only produce them by attending back to the fact tokens, which makes
the fact tokens the "key tokens" in the paper's sense.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Fact", "SyntheticWorld"]

_ENTITIES = [
    "alice", "bob", "carol", "david", "erin", "frank", "grace", "henry",
    "irene", "jack", "karen", "leo", "mona", "nate", "olga", "peter",
    "quinn", "rosa", "sam", "tina", "ursula", "victor", "wendy", "xavier",
]

_RELATIONS = {
    "likes": ["music", "chess", "coffee", "hiking", "poetry", "cycling", "painting", "tennis"],
    "visited": ["paris", "tokyo", "cairo", "oslo", "lima", "delhi", "rome", "sydney"],
    "studies": ["physics", "history", "biology", "law", "economics", "geology", "math", "art"],
    "owns": ["boat", "piano", "telescope", "garden", "bakery", "drone", "library", "farm"],
    "works": ["hospital", "school", "museum", "bank", "theater", "airport", "factory", "studio"],
}

_FILLER_WORDS = [
    "the", "report", "meanwhile", "later", "committee", "noted", "weather",
    "remained", "calm", "during", "afternoon", "people", "gathered", "near",
    "market", "street", "traffic", "moved", "slowly", "past", "old", "bridge",
    "officials", "discussed", "various", "routine", "matters", "without",
    "reaching", "any", "conclusion", "local", "residents", "continued",
    "their", "usual", "activities", "throughout", "day", "several", "minor",
    "events", "took", "place", "around", "town", "nothing", "unusual",
    "happened", "again", "morning", "evening", "quiet", "crowd", "small",
]


@dataclass(frozen=True)
class Fact:
    """A single (entity, relation, value) triple."""

    entity: str
    relation: str
    value: str

    def sentence(self) -> str:
        """Render the fact as a short declarative sentence."""
        return f"{self.entity} {self.relation} {self.value} ."

    def question(self) -> str:
        """Render the fact as a question whose answer is :attr:`value`."""
        return f"what {self.relation} {self.entity} ?"

    def answer(self) -> str:
        return self.value


class SyntheticWorld:
    """Deterministic generator of facts and filler text.

    Parameters
    ----------
    seed:
        Seed of the internal random generator; two worlds built with the same
        seed generate identical content.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.entities = list(_ENTITIES)
        self.relations = {k: list(v) for k, v in _RELATIONS.items()}
        self.filler_words = list(_FILLER_WORDS)

    # ------------------------------------------------------------------
    def full_vocabulary_text(self) -> str:
        """A text covering every word the world can emit (for tokenizer fitting)."""
        parts = list(self.entities) + list(self.relations.keys()) + self.filler_words
        for values in self.relations.values():
            parts.extend(values)
        parts.extend(
            ["what", "?", ".", ":", "summary", "document", "question", "answer",
             "said", "that", "is", "true", "false", "because", "so", "then",
             "dialogue", "reply", "choice", "best", "person", "thing"]
        )
        return " ".join(parts)

    # ------------------------------------------------------------------
    def sample_fact(
        self, rng: np.random.Generator | None = None, exclude: set[str] | None = None
    ) -> Fact:
        """Sample a random fact; ``exclude`` avoids re-using entities."""
        rng = rng or self.rng
        exclude = exclude or set()
        candidates = [e for e in self.entities if e not in exclude] or self.entities
        entity = str(rng.choice(candidates))
        relation = str(rng.choice(list(self.relations.keys())))
        value = str(rng.choice(self.relations[relation]))
        return Fact(entity, relation, value)

    def sample_facts(self, n: int, rng: np.random.Generator | None = None) -> list[Fact]:
        """Sample ``n`` facts about distinct entities."""
        rng = rng or self.rng
        used: set[str] = set()
        facts = []
        for _ in range(n):
            fact = self.sample_fact(rng, exclude=used)
            used.add(fact.entity)
            facts.append(fact)
        return facts

    def distractor_value(self, fact: Fact, rng: np.random.Generator | None = None) -> str:
        """Return a value from the same relation that differs from the fact's value."""
        rng = rng or self.rng
        options = [v for v in self.relations[fact.relation] if v != fact.value]
        return str(rng.choice(options))

    def filler_sentence(self, rng: np.random.Generator | None = None, length: int = 8) -> str:
        """A sentence of filler words carrying no fact content."""
        rng = rng or self.rng
        words = rng.choice(self.filler_words, size=length, replace=True)
        return " ".join(str(w) for w in words) + " ."

    def filler_text(
        self, n_sentences: int, rng: np.random.Generator | None = None, sentence_length: int = 8
    ) -> list[str]:
        """A list of filler sentences."""
        rng = rng or self.rng
        return [self.filler_sentence(rng, length=sentence_length) for _ in range(n_sentences)]

    # ------------------------------------------------------------------
    def compose_document(
        self,
        facts: Sequence[Fact],
        n_filler_sentences: int,
        rng: np.random.Generator | None = None,
        sentence_length: int = 8,
        keep_facts_early: bool = True,
    ) -> str:
        """Interleave fact sentences with filler sentences into a document.

        When ``keep_facts_early`` is true the facts are placed in the first
        two thirds of the document, guaranteeing they fall outside a recent
        window of realistic size — the situation where Keyformer's key-token
        retention matters most.
        """
        rng = rng or self.rng
        filler = self.filler_text(n_filler_sentences, rng, sentence_length)
        total_slots = len(facts) + len(filler)
        if keep_facts_early:
            upper = max(int(total_slots * 2 / 3), len(facts))
            fact_slots = sorted(rng.choice(upper, size=len(facts), replace=False).tolist())
        else:
            fact_slots = sorted(rng.choice(total_slots, size=len(facts), replace=False).tolist())

        sentences: list[str] = []
        fact_iter = iter(facts)
        filler_iter = iter(filler)
        fact_slot_set = set(fact_slots)
        for slot in range(total_slots):
            if slot in fact_slot_set:
                sentences.append(next(fact_iter).sentence())
            else:
                try:
                    sentences.append(next(filler_iter))
                except StopIteration:
                    sentences.append(next(fact_iter).sentence())
        return " ".join(sentences)
