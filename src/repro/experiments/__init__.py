"""Experiment runners — one per table/figure of the paper's evaluation.

Every runner returns one or more :class:`repro.analysis.reporting.ResultTable`
objects whose rows mirror the series the paper plots/tabulates.  The benchmark
harness in ``benchmarks/`` calls these runners, prints the tables, and writes
them under ``results/`` so EXPERIMENTS.md can record paper-vs-measured values.
"""

from repro.experiments.common import ExperimentContext, get_context, EVAL_SEED
from repro.experiments.accuracy_sweep import (
    run_accuracy_sweep,
    run_fig3_accuracy_comparison,
    run_long_context_sweep,
)
from repro.experiments.ablations import (
    run_damping_sweep,
    run_recent_ratio_sweep,
    run_temperature_sweep,
    run_table3_ablations,
    run_table4_distributions,
)
from repro.experiments.fewshot import run_fewshot_table
from repro.experiments.performance import (
    run_fig1_motivation,
    run_fig9_speedup,
    run_fig10_breakdown,
    run_table1_throughput,
)
from repro.experiments.attention_analysis import (
    run_fig3_sparsity_and_cdf,
    run_fig4_distribution_shift,
    run_fig11_threshold_sparsity,
    run_heatmap_figures,
)
from repro.experiments.qualitative import run_qualitative_comparison

__all__ = [
    "ExperimentContext",
    "get_context",
    "EVAL_SEED",
    "run_accuracy_sweep",
    "run_fig3_accuracy_comparison",
    "run_long_context_sweep",
    "run_damping_sweep",
    "run_recent_ratio_sweep",
    "run_temperature_sweep",
    "run_table3_ablations",
    "run_table4_distributions",
    "run_fewshot_table",
    "run_fig1_motivation",
    "run_fig9_speedup",
    "run_fig10_breakdown",
    "run_table1_throughput",
    "run_fig3_sparsity_and_cdf",
    "run_fig4_distribution_shift",
    "run_fig11_threshold_sparsity",
    "run_heatmap_figures",
    "run_qualitative_comparison",
]
