"""``python -m repro.experiments`` — regenerate individual paper experiments."""

from repro.experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
