"""Ablation studies: damping, recent-ratio, temperature, score sharing, positions, noise.

Covers Figure 5, Figure 12, Figure 16, Table 3 and Table 4.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.reporting import ResultTable
from repro.core.policies import H2OPolicy
from repro.core.config import CachePolicyConfig
from repro.experiments.common import ExperimentContext, get_context

__all__ = [
    "run_damping_sweep",
    "run_recent_ratio_sweep",
    "run_temperature_sweep",
    "run_table3_ablations",
    "run_table4_distributions",
]


def run_damping_sweep(
    model_name: str = "cerebras_mini",
    damping_factors: Sequence[float] = (1.0, 0.975, 0.95, 0.925, 0.9, 0.875),
    kv_fraction: float = 0.5,
    recent_ratio: float = 0.2,
    limit: int = 6,
    context: ExperimentContext | None = None,
) -> ResultTable:
    """Figure 5: damping the accumulated-attention score does not recover accuracy.

    The damped score is the H2O-style accumulated attention multiplied by a
    factor α at every decoding step (§2.3.3); the table also contains the
    full-attention reference row.
    """
    context = context or get_context()
    pipeline = context.summarization_pipeline(model_name)
    dataset = context.dataset("cnn_dailymail")

    table = ResultTable(
        name="fig05_damping_sweep",
        headers=["model", "damping", "kv_budget", "rouge1", "rouge2", "rougeL"],
        notes="Damped accumulated-attention score (H2O-style) at 50% KV cache, 20% recent ratio.",
    )
    full = pipeline.evaluate_dataset(dataset, policy=context.policy("full"), limit=limit)
    table.add_row(
        model_name,
        "full-attention",
        1.0,
        full.rouge["rouge1"],
        full.rouge["rouge2"],
        full.rouge["rougeL"],
    )
    for alpha in damping_factors:
        policy = H2OPolicy(
            CachePolicyConfig(kv_fraction=kv_fraction, recent_ratio=recent_ratio),
            damping=alpha,
        )
        report = pipeline.evaluate_dataset(dataset, policy=policy, limit=limit)
        table.add_row(
            model_name, alpha, kv_fraction,
            report.rouge["rouge1"], report.rouge["rouge2"], report.rouge["rougeL"],
        )
    return table


def run_recent_ratio_sweep(
    models: Sequence[str] = ("gptj_mini", "cerebras_mini", "mpt_mini"),
    recent_ratios: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    kv_fraction: float = 0.7,
    limit: int = 6,
    context: ExperimentContext | None = None,
) -> ResultTable:
    """Figure 12 / §4.4.4: sweep the recent-window share w of the 70 % budget."""
    context = context or get_context()
    table = ResultTable(
        name="fig12_recent_ratio_sweep",
        headers=["model", "recent_ratio", "kv_budget", "rouge2"],
        notes="Keyformer with a fixed 70% KV budget; the recent window takes recent_ratio of it.",
    )
    for model_name in models:
        pipeline = context.summarization_pipeline(model_name)
        dataset = context.dataset("cnn_dailymail")
        for ratio in recent_ratios:
            policy = context.policy("keyformer", kv_fraction=kv_fraction, recent_ratio=ratio)
            report = pipeline.evaluate_dataset(dataset, policy=policy, limit=limit)
            table.add_row(model_name, ratio, kv_fraction, report.rouge["rouge2"])
    return table


def run_temperature_sweep(
    model_name: str = "mpt_mini",
    static_taus: Sequence[float] = (1.0, 2.0, 3.0, 5.0, 10.0, 15.0),
    kv_fraction: float = 0.5,
    limit: int = 6,
    context: ExperimentContext | None = None,
) -> ResultTable:
    """Figure 16 / Appendix A.8: static τ values vs the dynamic τ: 1 → 2 schedule."""
    context = context or get_context()
    pipeline = context.summarization_pipeline(model_name)
    dataset = context.dataset("cnn_dailymail")
    table = ResultTable(
        name="fig16_temperature_sweep",
        headers=["model", "tau", "kv_budget", "rouge2"],
        notes="'dynamic' is the paper's tau_init=1 -> tau_end=2 schedule (Eq. 10).",
    )
    dynamic = context.policy("keyformer", kv_fraction=kv_fraction, tau_init=1.0, tau_end=2.0)
    report = pipeline.evaluate_dataset(dataset, policy=dynamic, limit=limit)
    table.add_row(model_name, "dynamic(1->2)", kv_fraction, report.rouge["rouge2"])
    for tau in static_taus:
        policy = context.policy("keyformer", kv_fraction=kv_fraction, static_tau=tau)
        report = pipeline.evaluate_dataset(dataset, policy=policy, limit=limit)
        table.add_row(model_name, tau, kv_fraction, report.rouge["rouge2"])
    return table


def run_table3_ablations(
    model_name: str = "mpt_mini",
    kv_fraction: float = 0.6,
    limit: int = 6,
    context: ExperimentContext | None = None,
) -> ResultTable:
    """Table 3: attention methods, score-function sharing and positional handling.

    Rows mirror the paper: Full, Full 99 % threshold, Window, H2O (per-layer),
    StreamingLLM, Keyformer (New Pos), Keyformer (Org Pos, per-layer) and
    Keyformer (Org Pos, shared score), all at a 60 % KV-cache budget.
    """
    context = context or get_context()
    pipeline = context.summarization_pipeline(model_name)
    dataset = context.dataset("cnn_dailymail")
    table = ResultTable(
        name="table3_score_fn_and_positions",
        headers=["method", "score_fn", "kv_budget", "rouge1", "rouge2", "rougeL"],
        notes=f"Summarization task (CNN/DailyMail analogue), model={model_name}.",
    )

    def add(method: str, score_fn: str, budget, report) -> None:
        table.add_row(
            method, score_fn, budget,
            report.rouge["rouge1"], report.rouge["rouge2"], report.rouge["rougeL"],
        )

    full = pipeline.evaluate_dataset(dataset, policy=context.policy("full"), limit=limit)
    add("Full", "-", "original", full)
    table.add_row(
        "Full (99% Accuracy)", "-", "original",
        0.99 * full.rouge["rouge1"], 0.99 * full.rouge["rouge2"], 0.99 * full.rouge["rougeL"],
    )

    window = pipeline.evaluate_dataset(
        dataset, policy=context.policy("window", kv_fraction=kv_fraction), limit=limit
    )
    add("Window", "-", kv_fraction, window)

    h2o = pipeline.evaluate_dataset(
        dataset, policy=context.policy("h2o", kv_fraction=kv_fraction), limit=limit
    )
    add("H2O", "Per-Layer", kv_fraction, h2o)

    streaming = pipeline.evaluate_dataset(
        dataset, policy=context.policy("streaming-llm", kv_fraction=kv_fraction), limit=limit
    )
    add("StreamingLLM", "-", kv_fraction, streaming)

    kf_newpos = pipeline.evaluate_dataset(
        dataset,
        policy=context.policy("keyformer", kv_fraction=kv_fraction, positional_mode="new"),
        limit=limit,
    )
    add("Keyformer (New Pos)", "Per-Layer", kv_fraction, kf_newpos)

    kf_orgpos = pipeline.evaluate_dataset(
        dataset,
        policy=context.policy("keyformer", kv_fraction=kv_fraction, positional_mode="original"),
        limit=limit,
    )
    add("Keyformer (Org Pos)", "Per-Layer", kv_fraction, kf_orgpos)

    kf_shared = pipeline.evaluate_dataset(
        dataset,
        policy=context.policy(
            "keyformer", kv_fraction=kv_fraction, positional_mode="original", shared_score=True
        ),
        limit=limit,
    )
    add("Keyformer (Org Pos)", "Shared", kv_fraction, kf_shared)
    return table


def run_table4_distributions(
    models: Sequence[str] = ("gptj_mini", "cerebras_mini", "mpt_mini"),
    kv_fraction: float = 0.6,
    limit: int = 6,
    context: ExperimentContext | None = None,
) -> ResultTable:
    """Table 4: Gumbel vs Gaussian vs constant vs no logit adjustment (60 % cache)."""
    context = context or get_context()
    table = ResultTable(
        name="table4_logit_adjustment_distributions",
        headers=["model", "noise", "kv_budget", "rouge2"],
        notes="Keyformer score with different logit-adjustment distributions.",
    )
    for model_name in models:
        pipeline = context.summarization_pipeline(model_name)
        dataset = context.dataset("cnn_dailymail")
        for noise in ("gumbel", "gaussian", "constant", "none"):
            policy = context.policy("keyformer", kv_fraction=kv_fraction, noise=noise)
            report = pipeline.evaluate_dataset(dataset, policy=policy, limit=limit)
            table.add_row(model_name, noise, kv_fraction, report.rouge["rouge2"])
    return table
