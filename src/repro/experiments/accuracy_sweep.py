"""Accuracy-vs-KV-cache-budget sweeps (Figures 3c, 7, 8, 13).

These runners evaluate generation quality (ROUGE) for Full Attention, Window
Attention, H2O and Keyformer while sweeping the KV-cache budget, on the
summarization and conversation tasks, across the three mini model families.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.reporting import ResultTable
from repro.experiments.common import ExperimentContext, get_context

__all__ = [
    "run_accuracy_sweep",
    "run_fig3_accuracy_comparison",
    "run_long_context_sweep",
]

DEFAULT_BUDGETS = (0.2, 0.3, 0.5, 0.7, 0.9)
DEFAULT_POLICIES = ("window", "h2o", "keyformer")


def _pipeline_for(context: ExperimentContext, task: str, model_name: str):
    if task == "conversation":
        return context.conversation_pipeline(model_name), context.dataset("soda")
    if task == "long-summarization":
        return (
            context.summarization_pipeline(model_name),
            context.dataset("govreport", n_examples=12),
        )
    return context.summarization_pipeline(model_name), context.dataset("cnn_dailymail")


def run_accuracy_sweep(
    models: Sequence[str] = ("gptj_mini", "cerebras_mini", "mpt_mini"),
    tasks: Sequence[str] = ("summarization", "conversation"),
    budgets: Sequence[float] = DEFAULT_BUDGETS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    limit: int = 6,
    context: ExperimentContext | None = None,
) -> ResultTable:
    """Figure 7 (and 13): ROUGE vs KV-cache budget for every model × task × policy.

    The returned table contains ROUGE-1/2/L for every configuration plus the
    full-attention reference row (budget = 1.0) per model × task, so both the
    ROUGE-2 sweep (Figure 7) and the ROUGE-1/L sweeps (Figure 13) can be read
    from a single run.
    """
    context = context or get_context()
    table = ResultTable(
        name="fig07_accuracy_vs_kv_budget",
        headers=["model", "task", "policy", "kv_budget", "rouge1", "rouge2", "rougeL"],
        notes="Full attention row has kv_budget=1.0; 99% MLPerf threshold applies to it.",
    )
    for model_name in models:
        for task in tasks:
            pipeline, dataset = _pipeline_for(context, task, model_name)
            full_report = pipeline.evaluate_dataset(
                dataset, policy=context.policy("full"), limit=limit
            )
            table.add_row(
                model_name,
                task,
                "full",
                1.0,
                full_report.rouge["rouge1"],
                full_report.rouge["rouge2"],
                full_report.rouge["rougeL"],
            )
            for policy_name in policies:
                for budget in budgets:
                    report = pipeline.evaluate_dataset(
                        dataset,
                        policy=context.policy(policy_name, kv_fraction=budget),
                        limit=limit,
                    )
                    table.add_row(
                        model_name,
                        task,
                        policy_name,
                        budget,
                        report.rouge["rouge1"],
                        report.rouge["rouge2"],
                        report.rouge["rougeL"],
                    )
    return table


def run_fig3_accuracy_comparison(
    models: Sequence[str] = ("gptj_mini", "cerebras_mini", "mpt_mini"),
    kv_fraction: float = 0.5,
    limit: int = 6,
    context: ExperimentContext | None = None,
) -> ResultTable:
    """Figure 3c: Full vs Key-only vs Window vs H2O at 50 % KV cache (summarization)."""
    context = context or get_context()
    table = ResultTable(
        name="fig03c_attention_scheme_accuracy",
        headers=["model", "scheme", "kv_budget", "rouge2"],
        notes="Key/Window/H2O at 50% of the KV cache; Full uses the whole cache.",
    )
    schemes = [
        ("full", 1.0),
        ("key-only", kv_fraction),
        ("window", kv_fraction),
        ("h2o", kv_fraction),
    ]
    for model_name in models:
        pipeline = context.summarization_pipeline(model_name)
        dataset = context.dataset("cnn_dailymail")
        for scheme, budget in schemes:
            report = pipeline.evaluate_dataset(
                dataset, policy=context.policy(scheme, kv_fraction=budget), limit=limit
            )
            table.add_row(model_name, scheme, budget, report.rouge["rouge2"])
    return table


def run_long_context_sweep(
    model_name: str = "mpt_storywriter_mini",
    budgets: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5),
    policies: Sequence[str] = ("h2o", "keyformer"),
    limit: int = 4,
    context: ExperimentContext | None = None,
) -> ResultTable:
    """Figure 8: long-context summarization (GovReport analogue) at 10–50 % cache."""
    context = context or get_context()
    pipeline, dataset = _pipeline_for(context, "long-summarization", model_name)
    table = ResultTable(
        name="fig08_long_context_summarization",
        headers=["model", "policy", "kv_budget", "rouge2"],
        notes="MPT-storywriter analogue on the long-document (GovReport-like) dataset.",
    )
    full_report = pipeline.evaluate_dataset(dataset, policy=context.policy("full"), limit=limit)
    table.add_row(model_name, "full", 1.0, full_report.rouge["rouge2"])
    for policy_name in policies:
        for budget in budgets:
            report = pipeline.evaluate_dataset(
                dataset, policy=context.policy(policy_name, kv_fraction=budget), limit=limit
            )
            table.add_row(model_name, policy_name, budget, report.rouge["rouge2"])
    return table
