"""Attention-structure analyses (Figures 3a/3b, 4, 11, 14, 15)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.heatmap import collect_attention_maps, heatmap_to_ascii
from repro.analysis.reporting import ResultTable
from repro.analysis.sparsity import sparsity_by_layer, sparsity_threshold_sweep
from repro.core.score import entropy
from repro.experiments.common import ExperimentContext, get_context
from repro.metrics.attention_stats import attention_score_cdf
from repro.models.tensor_ops import softmax

__all__ = [
    "run_fig3_sparsity_and_cdf",
    "run_fig4_distribution_shift",
    "run_fig11_threshold_sparsity",
    "run_heatmap_figures",
]


def _example_sequences(context: ExperimentContext, n_examples: int = 4) -> list[np.ndarray]:
    """Full (document + summary) token sequences used for attention analysis."""
    dataset = context.dataset("cnn_dailymail", n_examples=max(n_examples, 4))
    tokenizer = context.tokenizer
    sequences = []
    for example in dataset.examples[:n_examples]:
        ids = (
            [tokenizer.vocab.bos_id]
            + tokenizer.encode(example.document)
            + [tokenizer.vocab.sep_id]
            + tokenizer.encode(example.summary)
            + [tokenizer.vocab.eos_id]
        )
        sequences.append(np.asarray(ids, dtype=np.int64))
    return sequences


def run_fig3_sparsity_and_cdf(
    models: Sequence[str] = ("gptj_mini", "cerebras_mini", "mpt_mini"),
    n_examples: int = 3,
    sparsity_threshold: float = 0.01,
    context: ExperimentContext | None = None,
) -> tuple[ResultTable, ResultTable]:
    """Figure 3a/3b: per-layer attention sparsity and the attention-mass CDF."""
    context = context or get_context()
    sequences = _example_sequences(context, n_examples)

    sparsity_table = ResultTable(
        name="fig03a_attention_sparsity",
        headers=["model", "layer", "sparsity_pct"],
        notes=f"Entries below {sparsity_threshold:.2%} of the row maximum count as sparse.",
    )
    cdf_table = ResultTable(
        name="fig03b_attention_mass_cdf",
        headers=["model", "token_fraction", "attention_mass"],
        notes="Average attention mass captured by the top token_fraction of tokens.",
    )
    for model_name in models:
        model = context.model(model_name)
        per_layer_sum: list[list[float]] = []
        cdf_values: list[list[float]] = []
        fractions: list[float] = []
        for seq in sequences:
            maps = collect_attention_maps(model, seq)
            per_layer_sum.append(sparsity_by_layer(maps, threshold=sparsity_threshold))
            stacked = np.concatenate([m for m in maps], axis=1)  # merge layers into heads
            fractions, mass = attention_score_cdf(stacked)
            cdf_values.append(mass)
        layer_means = np.mean(np.asarray(per_layer_sum), axis=0)
        for layer_idx, value in enumerate(layer_means):
            sparsity_table.add_row(model_name, layer_idx, float(value))
        mass_means = np.mean(np.asarray(cdf_values), axis=0)
        for fraction, value in zip(fractions, mass_means):
            cdf_table.add_row(model_name, fraction, float(value))
    return sparsity_table, cdf_table


def run_fig4_distribution_shift(
    model_name: str = "mpt_mini",
    kv_fraction: float = 0.5,
    context: ExperimentContext | None = None,
) -> ResultTable:
    """Figure 4: removing tokens redistributes the softmax mass unevenly.

    For the last query row of a prompt we compare the full-attention softmax
    with the softmax recomputed over only the top-``kv_fraction`` retained
    tokens, reporting the maximum probability and the entropy of both
    distributions — the uneven concentration after reduction is what motivates
    Keyformer's logit regularization.
    """
    context = context or get_context()
    model = context.model(model_name)
    seq = _example_sequences(context, 1)[0]
    maps = collect_attention_maps(model, seq)
    # Last query row of the first layer/head group, averaged over heads.
    attn = maps[0][0]  # (H, T, T)
    last_row = attn[:, -1, :]  # (H, T)
    t = last_row.shape[-1]
    keep = max(int(round(kv_fraction * t)), 1)

    table = ResultTable(
        name="fig04_score_distribution_shift",
        headers=["quantity", "full_attention", "reduced_cache"],
        notes=f"Last-query-row softmax before/after keeping the top {keep}/{t} tokens.",
    )
    top_idx = np.argsort(-last_row, axis=-1)[:, :keep]
    reduced = np.take_along_axis(last_row, top_idx, axis=-1)
    reduced = reduced / np.maximum(reduced.sum(axis=-1, keepdims=True), 1e-12)

    table.add_row(
        "max probability", float(last_row.max(axis=-1).mean()), float(reduced.max(axis=-1).mean())
    )
    table.add_row(
        "entropy", float(entropy(last_row, axis=-1).mean()), float(entropy(reduced, axis=-1).mean())
    )
    table.add_row("tokens", int(t), int(keep))
    table.add_row(
        "mass of retained tokens (pre-normalization)",
        1.0,
        float(np.take_along_axis(last_row, top_idx, axis=-1).sum(axis=-1).mean()),
    )
    return table


def run_fig11_threshold_sparsity(
    model_name: str = "mpt_mini",
    thresholds: Sequence[float] = (0.0, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.03, 0.05),
    n_examples: int = 2,
    context: ExperimentContext | None = None,
) -> ResultTable:
    """Figure 11: attention sparsity per layer as the threshold grows (Appendix A.3)."""
    context = context or get_context()
    model = context.model(model_name)
    sequences = _example_sequences(context, n_examples)
    accum: dict[float, np.ndarray] = {}
    for seq in sequences:
        maps = collect_attention_maps(model, seq)
        sweep = sparsity_threshold_sweep(maps, thresholds)
        for threshold, per_layer in sweep.items():
            arr = np.asarray(per_layer)
            accum[threshold] = accum.get(threshold, 0) + arr / len(sequences)

    table = ResultTable(
        name="fig11_threshold_sparsity",
        headers=["threshold_pct_of_max", "layer", "sparsity_pct"],
        notes=f"Model {model_name}; thresholds are fractions of the per-row maximum score.",
    )
    for threshold, per_layer in sorted(accum.items()):
        for layer_idx, value in enumerate(per_layer):
            table.add_row(100.0 * threshold, layer_idx, float(value))
    return table


def run_heatmap_figures(
    models: Sequence[str] = ("gptj_mini", "mpt_mini"),
    max_heads: int = 4,
    context: ExperimentContext | None = None,
) -> dict[str, list[str]]:
    """Figures 14/15: per-layer/head attention heatmaps rendered as ASCII density maps."""
    context = context or get_context()
    seq = _example_sequences(context, 1)[0]
    rendered: dict[str, list[str]] = {}
    for model_name in models:
        model = context.model(model_name)
        maps = collect_attention_maps(model, seq, generated_rows_only=True)
        panels = []
        for layer_idx, layer_map in enumerate(maps):
            for head_idx in range(min(layer_map.shape[1], max_heads)):
                title = f"{model_name} L_{layer_idx},H_{head_idx}"
                panels.append(title + "\n" + heatmap_to_ascii(layer_map[0, head_idx]))
        rendered[model_name] = panels
    return rendered
