"""Command-line entry point for regenerating individual paper experiments.

Usage::

    python -m repro.experiments fig07 --limit 8
    python -m repro.experiments table1
    python -m repro.experiments --list

Each experiment name maps to the runner that regenerates the corresponding
table/figure; results are printed and optionally written to ``--output-dir``.
The benchmark harness in ``benchmarks/`` wraps the same runners with
pytest-benchmark timing; this CLI is the convenient one-off interface.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from repro.analysis.reporting import ResultTable
from repro.experiments import (
    run_accuracy_sweep,
    run_damping_sweep,
    run_fewshot_table,
    run_fig1_motivation,
    run_fig3_accuracy_comparison,
    run_fig3_sparsity_and_cdf,
    run_fig4_distribution_shift,
    run_fig9_speedup,
    run_fig10_breakdown,
    run_fig11_threshold_sparsity,
    run_heatmap_figures,
    run_long_context_sweep,
    run_qualitative_comparison,
    run_recent_ratio_sweep,
    run_table1_throughput,
    run_table3_ablations,
    run_table4_distributions,
    run_temperature_sweep,
)
from repro.experiments.common import get_context

__all__ = ["EXPERIMENTS", "main"]


def _tables(result) -> list[ResultTable]:
    """Normalize runner return values to a list of tables."""
    if isinstance(result, ResultTable):
        return [result]
    if isinstance(result, tuple):
        return [item for item in result if isinstance(item, ResultTable)]
    return []


#: experiment id -> (description, callable accepting (context, limit))
EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "fig01": (
        "Latency growth and KV-cache vs model size",
        lambda ctx, limit: run_fig1_motivation(),
    ),
    "fig03ab": (
        "Attention sparsity and mass CDF",
        lambda ctx, limit: run_fig3_sparsity_and_cdf(context=ctx),
    ),
    "fig03c": (
        "Attention-scheme accuracy at 50% cache",
        lambda ctx, limit: run_fig3_accuracy_comparison(limit=limit, context=ctx),
    ),
    "fig04": (
        "Score-distribution shift after reduction",
        lambda ctx, limit: run_fig4_distribution_shift(context=ctx),
    ),
    "fig05": (
        "Damping-factor sweep",
        lambda ctx, limit: run_damping_sweep(limit=limit, context=ctx),
    ),
    "fig07": (
        "Accuracy vs KV-cache budget sweep",
        lambda ctx, limit: run_accuracy_sweep(limit=limit, context=ctx),
    ),
    "fig08": (
        "Long-context summarization sweep",
        lambda ctx, limit: run_long_context_sweep(limit=max(limit // 2, 2), context=ctx),
    ),
    "fig09": ("Iso-accuracy speedup", lambda ctx, limit: run_fig9_speedup()),
    "fig10": (
        "KV-movement / scaled-dot-product breakdown",
        lambda ctx, limit: run_fig10_breakdown(),
    ),
    "fig11": (
        "Threshold sparsity sweep",
        lambda ctx, limit: run_fig11_threshold_sparsity(context=ctx),
    ),
    "fig12": (
        "Recent-ratio sweep",
        lambda ctx, limit: run_recent_ratio_sweep(limit=limit, context=ctx),
    ),
    "fig16": (
        "Temperature sweep",
        lambda ctx, limit: run_temperature_sweep(limit=limit, context=ctx),
    ),
    "table1": ("Generation throughput", lambda ctx, limit: run_table1_throughput()),
    "table2": (
        "Few-shot accuracy",
        lambda ctx, limit: run_fewshot_table(limit=limit, context=ctx),
    ),
    "table3": (
        "Score-function / position ablations",
        lambda ctx, limit: run_table3_ablations(limit=limit, context=ctx),
    ),
    "table4": (
        "Logit-adjustment distributions",
        lambda ctx, limit: run_table4_distributions(limit=limit, context=ctx),
    ),
    "appendix-a1": (
        "Qualitative comparison",
        lambda ctx, limit: run_qualitative_comparison(context=ctx)[0],
    ),
    "heatmaps": (
        "Attention heatmaps (fig 14/15)",
        lambda ctx, limit: run_heatmap_figures(context=ctx),
    ),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("experiment", nargs="?", help="experiment id (see --list)")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--limit", type=int, default=8, help="evaluation examples per configuration"
    )
    parser.add_argument(
        "--output-dir", type=Path, default=None, help="write tables to this directory"
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        print("Available experiments:")
        for name, (description, _) in EXPERIMENTS.items():
            print(f"  {name:14s} {description}")
        return 0

    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; use --list", file=sys.stderr)
        return 2

    description, runner = EXPERIMENTS[args.experiment]
    print(f"Running {args.experiment}: {description}")
    context = get_context()
    result = runner(context, args.limit)

    if args.experiment == "heatmaps":
        for model_name, panels in result.items():
            print(f"\n--- {model_name} ---")
            print("\n\n".join(panels[:4]))
        return 0

    for table in _tables(result):
        print()
        print(table.to_text())
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            path = args.output_dir / f"{table.name}.txt"
            path.write_text(table.to_text() + "\n")
            print(f"[saved to {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
