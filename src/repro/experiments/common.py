"""Shared experiment context: trained models, tokenizers, datasets and policies.

Models come from the zoo (trained once and cached on disk); evaluation
datasets are generated with seeds disjoint from the training seeds so every
experiment evaluates on held-out documents.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.core.registry import make_policy
from repro.data.registry import build_shared_tokenizer, make_dataset
from repro.data.world import SyntheticWorld
from repro.generation.pipeline import (
    ConversationPipeline,
    FewShotEvaluator,
    SummarizationPipeline,
)
from repro.models.model_zoo import load_or_train

__all__ = ["ExperimentContext", "get_context", "EVAL_SEED", "MODEL_LABELS", "TASK_DATASETS"]

#: Seed offset for evaluation datasets (training uses seeds < 100).
EVAL_SEED = 100

#: Paper model name → zoo model name.
MODEL_LABELS = {
    "gptj_mini": "GPT-J-6B (mini analogue)",
    "cerebras_mini": "Cerebras-GPT-6.7B (mini analogue)",
    "mpt_mini": "MPT-7B (mini analogue)",
    "mpt_storywriter_mini": "MPT-7B-storywriter (mini analogue)",
}

#: Task name → (dataset registry name, pipeline kind).
TASK_DATASETS = {
    "summarization": ("cnn_dailymail", "summarization"),
    "conversation": ("soda", "conversation"),
    "long-summarization": ("govreport", "summarization"),
}


class ExperimentContext:
    """Caches trained models and evaluation datasets across experiment runners."""

    def __init__(self, cache_dir: Path | str | None = None):
        self.cache_dir = cache_dir
        self.world = SyntheticWorld(seed=0)
        self.tokenizer = build_shared_tokenizer(self.world)
        self._models: dict[str, Any] = {}
        self._datasets: dict[tuple, Any] = {}

    # ------------------------------------------------------------------
    def model(self, name: str):
        """Trained model from the zoo (trains and caches on first use)."""
        if name not in self._models:
            model, _, _ = load_or_train(name, cache_dir=self.cache_dir)
            self._models[name] = model
        return self._models[name]

    def dataset(self, name: str, n_examples: int = 24, seed: int = EVAL_SEED):
        """Held-out evaluation dataset (seeded away from the training data)."""
        key = (name, n_examples, seed)
        if key not in self._datasets:
            self._datasets[key] = make_dataset(
                name, world=self.world, n_examples=n_examples, seed=seed
            )
        return self._datasets[key]

    # ------------------------------------------------------------------
    def summarization_pipeline(self, model_name: str) -> SummarizationPipeline:
        return SummarizationPipeline(self.model(model_name), self.tokenizer)

    def conversation_pipeline(self, model_name: str) -> ConversationPipeline:
        return ConversationPipeline(self.model(model_name), self.tokenizer)

    def fewshot_evaluator(self, model_name: str) -> FewShotEvaluator:
        return FewShotEvaluator(self.model(model_name), self.tokenizer)

    # ------------------------------------------------------------------
    @staticmethod
    def policy(name: str, kv_fraction: float = 0.5, **kwargs: Any):
        """Build an eviction policy with experiment-default hyper-parameters.

        Keyformer uses a 30 % recent window (the paper's recommended 20–30 %
        range), H2O uses its canonical 50/50 split; both are overridable.
        """
        if name == "keyformer":
            kwargs.setdefault("recent_ratio", 0.3)
        if name == "h2o":
            kwargs.setdefault("recent_ratio", 0.5)
        return make_policy(name, kv_fraction=kv_fraction, **kwargs)


_CONTEXT: ExperimentContext | None = None


def get_context(cache_dir: Path | str | None = None) -> ExperimentContext:
    """Process-wide shared context (models are expensive to load/train)."""
    global _CONTEXT
    if _CONTEXT is None:
        _CONTEXT = ExperimentContext(cache_dir=cache_dir)
    return _CONTEXT
