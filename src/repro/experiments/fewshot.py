"""Few-shot multiple-choice evaluation under KV-cache reduction (Table 2)."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.reporting import ResultTable
from repro.data.fewshot import FEWSHOT_TASKS
from repro.experiments.common import ExperimentContext, get_context

__all__ = ["run_fewshot_table"]


def run_fewshot_table(
    models: Sequence[str] = ("cerebras_mini", "mpt_mini"),
    tasks: Sequence[str] = FEWSHOT_TASKS,
    shots: Sequence[int] = (0, 5),
    policies: Sequence[str] = ("full", "h2o", "keyformer"),
    kv_fraction: float = 0.5,
    limit: int = 12,
    context: ExperimentContext | None = None,
) -> ResultTable:
    """Table 2: 0-shot and 5-shot accuracy for Full / H2O / Keyformer at 50 % cache.

    Tasks are the synthetic analogues of COPA, OpenBookQA, Winogrande and PIQA
    (see :mod:`repro.data.fewshot`); options are scored by length-normalized
    log-likelihood with the eviction policy active during prompt processing
    and option scoring, exactly as during generation.
    """
    context = context or get_context()
    table = ResultTable(
        name="table2_fewshot_accuracy",
        headers=["task", "model", "policy", "n_shots", "kv_budget", "accuracy"],
        notes="Accuracy (%) of length-normalized log-likelihood option selection.",
    )
    for task_name in tasks:
        task = context.dataset(task_name, n_examples=max(limit + max(shots), 16))
        for model_name in models:
            evaluator = context.fewshot_evaluator(model_name)
            for n_shots in shots:
                items = task.evaluation_items(context.tokenizer, n_shots=n_shots, limit=limit)
                for policy_name in policies:
                    budget = 1.0 if policy_name == "full" else kv_fraction
                    report = evaluator.evaluate_items(
                        items, policy=context.policy(policy_name, kv_fraction=budget)
                    )
                    table.add_row(
                        task_name, model_name, policy_name, n_shots, budget, report.accuracy
                    )
    return table
