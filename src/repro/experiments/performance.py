"""Performance experiments on the analytical A100 model (Figures 1, 9, 10, Table 1).

The inputs mirror the paper's setup: the MPT-7B architecture, beam size 4,
prompt length equal to generation length, and a Keyformer/H2O score-function
overhead term.  Additionally, the Keyformer score-function overhead used in
Figure 10 can be *measured* from this repository's own implementation (time
per cached token of the Gumbel-softmax score update) and fed back into the
analytical model.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.analysis.reporting import ResultTable
from repro.core.score import KeyformerScore
from repro.perfmodel.hardware import A100_80GB, HardwareSpec
from repro.perfmodel.latency import AttentionPolicyOverhead, LatencyModel
from repro.perfmodel.memory import MPT_7B, MemoryModel, PerfModelSpec
from repro.perfmodel.throughput import ThroughputModel

__all__ = [
    "run_fig1_motivation",
    "run_fig9_speedup",
    "run_fig10_breakdown",
    "run_table1_throughput",
    "measure_score_function_overhead",
]


def run_fig1_motivation(
    spec: PerfModelSpec = MPT_7B,
    hardware: HardwareSpec = A100_80GB,
    seq_lens: Sequence[int] = (512, 2048, 8192),
    beam_size: int = 4,
) -> tuple[ResultTable, ResultTable]:
    """Figure 1: (a) latency vs sequence length with the KV-movement share,
    (b) KV-cache size vs model size."""
    latency_model = LatencyModel(spec, hardware)
    memory = MemoryModel(spec)

    latency_table = ResultTable(
        name="fig01a_latency_vs_seqlen",
        headers=[
            "seq_len", "normalized_latency", "kv_movement_fraction",
            "kv_movement_s", "other_s",
        ],
        notes="50% context + 50% generation, batch 1, beam 4; normalized to seq 512.",
    )
    base_time = None
    for seq in seq_lens:
        prompt = seq // 2
        gen = seq - prompt
        breakdown = latency_model.generation_breakdown(prompt, gen, 1, beam_size, 1.0)
        if base_time is None:
            base_time = breakdown.total_time
        latency_table.add_row(
            seq,
            breakdown.total_time / base_time,
            breakdown.kv_movement_fraction,
            breakdown.kv_data_movement_time,
            breakdown.total_time - breakdown.kv_data_movement_time,
        )

    size_table = ResultTable(
        name="fig01b_kv_cache_vs_model_size",
        headers=["seq_len", "model_size_gb", "kv_cache_size_gb"],
        notes="KV cache grows linearly and crosses the model size near 8k tokens (beam 4).",
    )
    for seq in seq_lens:
        size_table.add_row(
            seq,
            memory.model_bytes() / 1e9,
            memory.kv_cache_bytes(seq, batch_size=1, beam_size=beam_size) / 1e9,
        )
    return latency_table, size_table


def run_fig9_speedup(
    spec: PerfModelSpec = MPT_7B,
    hardware: HardwareSpec = A100_80GB,
    seq_configs: Sequence[tuple[int, int]] = ((1024, 1024), (2048, 2048), (4096, 4096)),
    beam_size: int = 4,
) -> ResultTable:
    """Figure 9: iso-accuracy inference speedup (Keyformer 50 %, H2O 90 % cache)."""
    latency_model = LatencyModel(spec, hardware)
    table = ResultTable(
        name="fig09_speedup",
        headers=["sequence", "policy", "kv_budget", "speedup_vs_full"],
        notes="Iso-accuracy setting: H2O needs 90% cache, Keyformer only 50% (batch 1, beam 4).",
    )
    for prompt, gen in seq_configs:
        label = f"{prompt}+{gen}"
        table.add_row(label, "full", 1.0, 1.0)
        table.add_row(
            label, "h2o", 0.9,
            latency_model.speedup_vs_full(
                prompt, gen, 0.9, 1, beam_size, AttentionPolicyOverhead.h2o()
            ),
        )
        table.add_row(
            label, "keyformer", 0.5,
            latency_model.speedup_vs_full(
                prompt, gen, 0.5, 1, beam_size, AttentionPolicyOverhead.keyformer()
            ),
        )
    return table


def measure_score_function_overhead(
    kv_len: int = 2048, n_heads: int = 32, n_trials: int = 5, seed: int = 0
) -> float:
    """Measure the per-step wall-clock cost of Keyformer's Gumbel-softmax score
    update in this repository's implementation (seconds per layer per step).

    This grounds the "Keyformer Gumbel Softmax Overhead" component of
    Figure 10 in a real measurement rather than a guess.
    """
    rng = np.random.default_rng(seed)
    score = KeyformerScore(seed=seed, max_positions=kv_len + 1)
    logits = rng.normal(size=(1, n_heads, kv_len))
    probs = np.abs(logits)
    positions = np.broadcast_to(np.arange(kv_len), (1, n_heads, kv_len))
    # Warm-up and reset so the accumulator shape stays constant.
    score.update(0, logits, probs, positions=positions, step=1)
    times = []
    for trial in range(n_trials):
        score.reset()
        start = time.perf_counter()
        score.update(0, logits, probs, positions=positions, step=trial + 1)
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def run_fig10_breakdown(
    spec: PerfModelSpec = MPT_7B,
    hardware: HardwareSpec = A100_80GB,
    seq_lens: Sequence[int] = (512, 1024, 2048, 4096),
    kv_fraction: float = 0.5,
    beam_size: int = 4,
) -> ResultTable:
    """Figure 10: normalized KV data movement and scaled-dot-product time.

    Values are normalized to the full-attention time of each sequence length,
    and Keyformer's bar includes the score-function (Gumbel softmax) overhead.
    """
    latency_model = LatencyModel(spec, hardware)
    table = ResultTable(
        name="fig10_breakdown",
        headers=[
            "seq_len",
            "kv_movement_full", "kv_movement_keyformer",
            "sdp_full", "sdp_keyformer",
            "keyformer_score_overhead", "keyformer_total",
        ],
        notes=(
            "kv_movement and sdp columns are normalized to the full-attention value at each "
            "sequence length; keyformer_score_overhead and keyformer_total are normalized to the "
            "full-attention (kv + sdp) time, so keyformer_total < 1 means the Gumbel-softmax "
            "overhead does not erase the savings."
        ),
    )
    overhead = AttentionPolicyOverhead.keyformer()
    for seq in seq_lens:
        prompt = seq // 2
        gen = seq - prompt
        full = latency_model.generation_breakdown(prompt, gen, 1, beam_size, 1.0)
        keyformer = latency_model.generation_breakdown(
            prompt, gen, 1, beam_size, kv_fraction, overhead
        )
        kv_norm = max(full.kv_data_movement_time, 1e-12)
        sdp_norm = max(full.attention_compute_time, 1e-12)
        total_norm = kv_norm + sdp_norm
        keyformer_total = (
            keyformer.kv_data_movement_time
            + keyformer.attention_compute_time
            + keyformer.score_overhead_time
        )
        table.add_row(
            seq,
            1.0,
            keyformer.kv_data_movement_time / kv_norm,
            1.0,
            keyformer.attention_compute_time / sdp_norm,
            keyformer.score_overhead_time / total_norm,
            keyformer_total / total_norm,
        )
    return table


def run_table1_throughput(
    spec: PerfModelSpec = MPT_7B,
    hardware: HardwareSpec = A100_80GB,
    beam_size: int = 4,
) -> ResultTable:
    """Table 1: generation throughput (tokens/s) for Full, H2O (90 %) and Keyformer (50 %)."""
    throughput = ThroughputModel(spec, hardware)
    table = ResultTable(
        name="table1_throughput",
        headers=["sequence", "batch_size", "full", "h2o_90", "keyformer_50"],
        notes="tokens/s from the analytical A100 model; OOM marks configurations that do not fit.",
    )
    configs = [
        (1024, 1024, 1),
        (2048, 2048, 1),
        (4096, 4096, 1),
        (4096, 4096, 2),
    ]
    for prompt, gen, batch in configs:
        full = throughput.evaluate(prompt, gen, batch, beam_size, 1.0)
        h2o = throughput.evaluate(prompt, gen, batch, beam_size, 0.9, AttentionPolicyOverhead.h2o())
        keyformer = throughput.evaluate(
            prompt, gen, batch, beam_size, 0.5, AttentionPolicyOverhead.keyformer()
        )
        table.add_row(
            f"{prompt}+{gen}" + (f" (BS={batch})" if batch > 1 else ""),
            batch,
            full.formatted(),
            h2o.formatted(),
            keyformer.formatted(),
        )
    return table
