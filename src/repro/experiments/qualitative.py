"""Qualitative generation comparison (Appendix A.1).

Generates a summary for one held-out document under Full Attention, Window
Attention, H2O and Keyformer (all reduced policies at 50 % KV cache) and
reports the per-sample ROUGE scores alongside the generated text.
"""

from __future__ import annotations

from repro.analysis.reporting import ResultTable
from repro.experiments.common import ExperimentContext, get_context
from repro.metrics.rouge import rouge_all
from repro.models.config import GenerationConfig
from repro.generation.generator import Generator

__all__ = ["run_qualitative_comparison"]


def run_qualitative_comparison(
    model_name: str = "mpt_mini",
    kv_fraction: float = 0.5,
    example_index: int = 0,
    max_new_tokens: int = 24,
    context: ExperimentContext | None = None,
) -> tuple[ResultTable, dict[str, str]]:
    """Appendix A.1: per-method generations and ROUGE for one document.

    Returns the score table and a mapping ``method -> generated text`` (plus
    the reference under key ``"reference"`` and the input document under
    ``"document"``).
    """
    context = context or get_context()
    model = context.model(model_name)
    tokenizer = context.tokenizer
    dataset = context.dataset("cnn_dailymail")
    example = dataset.examples[example_index]
    prompt_ids = (
        [tokenizer.vocab.bos_id]
        + tokenizer.encode(example.document)
        + [tokenizer.vocab.sep_id]
    )

    table = ResultTable(
        name="appendix_a1_qualitative",
        headers=["method", "kv_budget", "rouge1", "rouge2", "rougeL"],
        notes=f"Single-document comparison, model={model_name}.",
    )
    texts = {"document": example.document, "reference": example.summary}
    methods = [
        ("full", 1.0),
        ("window", kv_fraction),
        ("h2o", kv_fraction),
        ("keyformer", kv_fraction),
    ]
    config = GenerationConfig(max_new_tokens=max_new_tokens, eos_token_id=tokenizer.vocab.eos_id)
    for method, budget in methods:
        generator = Generator(model, context.policy(method, kv_fraction=budget))
        result = generator.generate(prompt_ids, config)
        text = tokenizer.decode(result.sequences[0])
        scores = rouge_all(text, example.summary)
        table.add_row(
            method,
            budget,
            100 * scores["rouge1"].f1,
            100 * scores["rouge2"].f1,
            100 * scores["rougeL"].f1,
        )
        texts[method] = text
    return table, texts
