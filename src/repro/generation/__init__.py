"""Autoregressive generation on top of the NumPy substrate with pluggable KV-cache policies."""

from repro.generation.sampler import GreedySampler, TopKSampler, make_sampler
from repro.generation.generator import Generator, GenerationResult
from repro.generation.beam import BeamSearch, BeamSearchResult
from repro.generation.pipeline import (
    GenerationEvaluator,
    SummarizationPipeline,
    ConversationPipeline,
    FewShotEvaluator,
)

__all__ = [
    "GreedySampler",
    "TopKSampler",
    "make_sampler",
    "Generator",
    "GenerationResult",
    "BeamSearch",
    "BeamSearchResult",
    "GenerationEvaluator",
    "SummarizationPipeline",
    "ConversationPipeline",
    "FewShotEvaluator",
]
