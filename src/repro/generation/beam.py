"""Beam search over the incremental decode path with KV-cache eviction.

The paper uses a fixed beam size of 4 in its accuracy evaluation and notes
that Keyformer discards tokens "across heads, layers and beams"; here every
beam carries its own reduced KV cache (the beam dimension is mapped onto the
batch dimension of the caches) and beams are re-ordered after every step,
which re-orders caches and policy score state alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.policies import EvictionPolicy, FullAttentionPolicy
from repro.models.config import GenerationConfig
from repro.models.tensor_ops import log_softmax
from repro.models.transformer import DecoderLM
from repro.generation.generator import Generator

__all__ = ["BeamSearch", "BeamSearchResult", "BeamHypothesis"]


@dataclass(order=True)
class BeamHypothesis:
    """A finished (or best-effort) hypothesis with its length-normalized score."""

    normalized_score: float
    tokens: list[int] = field(compare=False)
    raw_score: float = field(default=0.0, compare=False)


@dataclass
class BeamSearchResult:
    """Outcome of a beam-search decode."""

    best: BeamHypothesis
    hypotheses: list[BeamHypothesis]
    n_steps: int
    policy: dict = field(default_factory=dict)

    @property
    def tokens(self) -> list[int]:
        return self.best.tokens


class BeamSearch:
    """Length-penalized beam search with per-beam KV caches."""

    def __init__(
        self,
        model: DecoderLM,
        policy: EvictionPolicy | None = None,
        positional_mode: str | None = None,
    ):
        self.model = model
        self.policy = policy or FullAttentionPolicy()
        self.generator = Generator(model, self.policy, positional_mode=positional_mode)

    # ------------------------------------------------------------------
    def _normalize(self, score: float, length: int, penalty: float) -> float:
        return score / max(length, 1) ** penalty

    def search(self, prompt_ids, config: GenerationConfig | None = None) -> BeamSearchResult:
        """Run beam search for a single prompt sequence."""
        config = config or GenerationConfig(beam_size=4)
        beam_size = config.beam_size
        prompt = np.asarray(prompt_ids, dtype=np.int64).reshape(-1)
        if prompt.size == 0:
            raise ValueError("prompt must contain at least one token")

        # Replicate the prompt across beams so each beam owns a cache row.
        batch_prompt = np.tile(prompt[None, :], (beam_size, 1))
        logits, manager = self.generator._prompt_forward(batch_prompt, config.max_new_tokens)
        next_logits = logits[:, -1, :]

        logprobs = log_softmax(next_logits[0:1], axis=-1)[0]
        top = np.argsort(-logprobs)[:beam_size]
        beam_tokens: list[list[int]] = [[int(t)] for t in top]
        beam_scores = logprobs[top].astype(np.float64)
        beam_alive = np.ones(beam_size, dtype=bool)
        finished: list[BeamHypothesis] = []

        if config.eos_token_id is not None:
            for i, t in enumerate(top):
                if int(t) == config.eos_token_id:
                    finished.append(
                        BeamHypothesis(
                            self._normalize(float(beam_scores[i]), 1, config.length_penalty),
                            [int(t)],
                            float(beam_scores[i]),
                        )
                    )
                    beam_alive[i] = False

        n_steps = 0
        layer_views = manager.layer_views()
        for step in range(1, config.max_new_tokens):
            if not beam_alive.any():
                break
            current = np.asarray([seq[-1] for seq in beam_tokens], dtype=np.int64)
            next_logits = self.model.decode_step(
                current, manager.current_position, layer_views
            )
            manager.advance()
            n_steps += 1

            logprobs = log_softmax(next_logits, axis=-1)
            vocab = logprobs.shape[-1]
            expanded = beam_scores[:, None] + logprobs
            # Dead beams must not spawn candidates.
            expanded[~beam_alive, :] = -np.inf

            flat = expanded.reshape(-1)
            top_flat = np.argsort(-flat)[: 2 * beam_size]
            parents = top_flat // vocab
            tokens = top_flat % vocab

            new_tokens: list[list[int]] = []
            new_scores: list[float] = []
            new_parents: list[int] = []
            for parent, token, flat_idx in zip(parents, tokens, top_flat):
                score = float(flat[flat_idx])
                if not np.isfinite(score):
                    continue
                candidate = beam_tokens[parent] + [int(token)]
                if config.eos_token_id is not None and int(token) == config.eos_token_id:
                    finished.append(
                        BeamHypothesis(
                            self._normalize(score, len(candidate), config.length_penalty),
                            candidate,
                            score,
                        )
                    )
                    continue
                new_tokens.append(candidate)
                new_scores.append(score)
                new_parents.append(int(parent))
                if len(new_tokens) == beam_size:
                    break

            if not new_tokens:
                break

            # Pad with repeats of the best beam if eos consumed too many slots.
            while len(new_tokens) < beam_size:
                new_tokens.append(list(new_tokens[0]))
                new_scores.append(new_scores[0])
                new_parents.append(new_parents[0])

            manager.reorder(np.asarray(new_parents, dtype=np.int64))
            beam_tokens = new_tokens
            beam_scores = np.asarray(new_scores, dtype=np.float64)
            beam_alive = np.ones(beam_size, dtype=bool)

        for seq, score in zip(beam_tokens, beam_scores):
            finished.append(
                BeamHypothesis(
                    self._normalize(float(score), len(seq), config.length_penalty),
                    seq,
                    float(score),
                )
            )

        finished.sort(reverse=True)
        return BeamSearchResult(
            best=finished[0],
            hypotheses=finished,
            n_steps=n_steps,
            policy=self.policy.describe(),
        )
