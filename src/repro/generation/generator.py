"""The Generator: prompt processing + token generation with KV-cache policies.

This is the inference engine the paper's evaluation runs on.  It mirrors the
two phases described in §2.1:

1. **Prompt processing** — the prompt is processed with full causal attention
   (one batched forward pass); keys/values of all prompt tokens are captured
   and handed to the :class:`~repro.kvcache.manager.CacheManager`, which lets
   the configured eviction policy reduce the cache from ``n`` to ``k`` tokens.
2. **Token generation** — tokens are generated auto-regressively; each step
   appends one KV entry per layer, attends over the reduced cache, and lets
   the policy evict back down to ``k`` entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.policies import EvictionPolicy, FullAttentionPolicy
from repro.kvcache.manager import CacheManager
from repro.kvcache.stats import CacheStats
from repro.models.config import GenerationConfig
from repro.models.tensor_ops import log_softmax
from repro.models.transformer import DecoderLM
from repro.generation.sampler import Sampler, make_sampler

__all__ = ["Generator", "GenerationResult"]


@dataclass
class GenerationResult:
    """Outcome of one generation call."""

    sequences: list[list[int]]
    prompt_lengths: list[int]
    cache_stats: CacheStats
    policy: dict = field(default_factory=dict)
    n_steps: int = 0
    log_probs: list[float] = field(default_factory=list)
    #: Draft/verify telemetry when the result came from speculative decoding
    #: (see :class:`repro.speculative.telemetry.SpeculationStats`); empty
    #: for vanilla generation.
    speculation: dict = field(default_factory=dict)

    @property
    def n_generated(self) -> int:
        return max((len(seq) for seq in self.sequences), default=0)


class Generator:
    """Autoregressive generator with a pluggable KV-cache eviction policy."""

    def __init__(
        self,
        model: DecoderLM,
        policy: EvictionPolicy | None = None,
        positional_mode: str | None = None,
        kv_dtype: str | None = None,
    ):
        self.model = model
        self.policy = policy or FullAttentionPolicy()
        self.positional_mode = positional_mode
        #: KV-page storage format: ``None`` keeps full-precision pages (the
        #: bit-exact default), ``"int8"`` stores quantized pages — see
        #: :mod:`repro.kvcache.quant` and ``docs/quantization.md``.
        self.kv_dtype = kv_dtype

    # ------------------------------------------------------------------
    # prompt phase
    # ------------------------------------------------------------------
    def _prompt_forward(
        self, prompt_ids: np.ndarray, max_new_tokens: int
    ) -> tuple[np.ndarray, CacheManager]:
        """Run the prompt through the model and build the reduced KV cache."""
        logits = self.model.forward(prompt_ids, store_attention=True)
        prompt_kv, prompt_attn, prompt_logits = [], [], []
        for block in self.model.blocks:
            if block.attn.last_kv is None or block.attn.last_scores is None:
                raise RuntimeError("prompt forward did not store attention tensors")
            prompt_kv.append(block.attn.last_kv)
            prompt_attn.append(block.attn.last_attention)
            prompt_logits.append(block.attn.last_scores)

        config = self.model.config
        manager = CacheManager(
            self.policy,
            n_layers=config.n_layers,
            n_heads=config.n_heads,
            d_head=config.d_head,
            positional_mode=self.positional_mode,
            dtype=config.np_dtype,
            rope_dims=config.rope_dims if config.positional == "rope" else 0,
            kv_dtype=self.kv_dtype,
        )
        manager.initialize_from_prompt(prompt_kv, prompt_attn, prompt_logits, max_new_tokens)
        return logits, manager

    @staticmethod
    def _as_batch(prompt_ids) -> np.ndarray:
        arr = np.asarray(prompt_ids, dtype=np.int64)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2:
            raise ValueError(f"prompt_ids must be 1-D or 2-D, got shape {arr.shape}")
        if arr.shape[1] == 0:
            raise ValueError("prompt must contain at least one token")
        return arr

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def generate(
        self, prompt_ids, config: GenerationConfig | None = None, sampler: Sampler | None = None
    ) -> GenerationResult:
        """Generate ``config.max_new_tokens`` tokens after the prompt.

        ``prompt_ids`` may be a single sequence or a batch of equal-length
        sequences.  Generation is greedy unless ``config`` requests sampling
        or a custom ``sampler`` is supplied.  Beam search lives in
        :class:`repro.generation.beam.BeamSearch`.
        """
        config = config or GenerationConfig()
        prompt = self._as_batch(prompt_ids)
        batch_size = prompt.shape[0]
        sampler = sampler or make_sampler(config.temperature, config.top_k, config.seed)

        logits, manager = self._prompt_forward(prompt, config.max_new_tokens)
        next_logits = logits[:, -1, :]
        # The per-layer cache views are stateless facades; build them once and
        # reuse them every step instead of reallocating view objects per token.
        layer_views = manager.layer_views()

        sequences: list[list[int]] = [[] for _ in range(batch_size)]
        finished = np.zeros(batch_size, dtype=bool)
        total_logprob = np.zeros(batch_size)

        tokens = sampler(next_logits)
        for step in range(config.max_new_tokens):
            logprobs = log_softmax(next_logits, axis=-1)
            total_logprob += np.where(
                finished, 0.0, logprobs[np.arange(batch_size), tokens]
            )
            for b in range(batch_size):
                if not finished[b]:
                    sequences[b].append(int(tokens[b]))
            if config.eos_token_id is not None:
                finished |= tokens == config.eos_token_id
            if finished.all() or step == config.max_new_tokens - 1:
                break

            next_logits = self.model.decode_step(
                tokens, manager.current_position, layer_views
            )
            manager.advance()
            tokens = sampler(next_logits)

        return GenerationResult(
            sequences=sequences,
            prompt_lengths=[prompt.shape[1]] * batch_size,
            cache_stats=manager.stats,
            policy=self.policy.describe(),
            n_steps=manager.generation_step,
            log_probs=[float(lp) for lp in total_logprob],
        )

    # ------------------------------------------------------------------
    # continuation scoring (few-shot evaluation)
    # ------------------------------------------------------------------
    def score_continuation(self, prompt_ids, continuation_ids) -> float:
        """Log-likelihood of ``continuation_ids`` following ``prompt_ids``.

        The prompt is processed once (with the eviction policy applied exactly
        as during generation) and the continuation is teacher-forced through
        the incremental decode path, so KV-cache reduction affects the scores
        the same way it would affect generation — this is the protocol of the
        paper's few-shot evaluation (Table 2).
        """
        prompt = self._as_batch(prompt_ids)
        continuation = [int(t) for t in np.asarray(continuation_ids).reshape(-1)]
        if not continuation:
            raise ValueError("continuation must contain at least one token")

        logits, manager = self._prompt_forward(prompt, max_new_tokens=len(continuation))
        next_logits = logits[:, -1, :]
        layer_views = manager.layer_views()
        total = 0.0
        for i, token in enumerate(continuation):
            logprobs = log_softmax(next_logits, axis=-1)
            total += float(logprobs[0, token])
            if i == len(continuation) - 1:
                break
            next_logits = self.model.decode_step(
                np.asarray([token]), manager.current_position, layer_views
            )
            manager.advance()
        return total

    # ------------------------------------------------------------------
    def perplexity(self, token_ids) -> float:
        """Teacher-forced perplexity of a full sequence under the policy.

        The first token is treated as the prompt; every subsequent token is
        scored through the incremental decode path with cache eviction active.
        """
        ids = [int(t) for t in np.asarray(token_ids).reshape(-1)]
        if len(ids) < 2:
            raise ValueError("need at least two tokens to compute perplexity")
        logprob = self.score_continuation([ids[0]], ids[1:])
        return float(np.exp(-logprob / (len(ids) - 1)))
