"""Task pipelines: summarization/conversation generation and few-shot scoring.

These wrap :class:`~repro.generation.generator.Generator` into the evaluation
protocols used by the paper: generate a summary/response for each prompt and
report ROUGE (Figures 7, 8, 13, Tables 3–4), or score multiple-choice options
by log-likelihood and report accuracy (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.policies import EvictionPolicy, FullAttentionPolicy
from repro.metrics.accuracy import multiple_choice_accuracy, pick_option
from repro.metrics.rouge import aggregate_rouge
from repro.models.config import GenerationConfig
from repro.models.transformer import DecoderLM
from repro.tokenizer.word import WordTokenizer
from repro.generation.generator import Generator

__all__ = [
    "EvaluationReport",
    "GenerationEvaluator",
    "SummarizationPipeline",
    "ConversationPipeline",
    "FewShotEvaluator",
]


@dataclass
class EvaluationReport:
    """ROUGE report plus cache statistics for one policy/dataset combination."""

    policy: dict
    rouge: dict[str, float]
    candidates: list[str] = field(default_factory=list)
    references: list[str] = field(default_factory=list)
    mean_cache_length: float = 0.0
    peak_cache_length: int = 0
    n_examples: int = 0

    def score(self, metric: str = "rouge2") -> float:
        """Convenience accessor, e.g. ``report.score('rouge2')``."""
        return self.rouge[metric]


class GenerationEvaluator:
    """Generate continuations for (prompt, reference) pairs and score with ROUGE."""

    def __init__(self, model: DecoderLM, tokenizer: WordTokenizer):
        self.model = model
        self.tokenizer = tokenizer

    def evaluate(
        self,
        eval_prompts: Sequence[tuple[list[int], str]],
        policy: EvictionPolicy | None = None,
        max_new_tokens: int = 32,
        positional_mode: str | None = None,
        limit: int | None = None,
    ) -> EvaluationReport:
        """Run generation over ``eval_prompts`` under ``policy`` and report ROUGE."""
        policy = policy or FullAttentionPolicy()
        generator = Generator(self.model, policy, positional_mode=positional_mode)
        config = GenerationConfig(
            max_new_tokens=max_new_tokens,
            eos_token_id=self.tokenizer.vocab.eos_id,
        )

        candidates: list[str] = []
        references: list[str] = []
        cache_lengths: list[float] = []
        peaks: list[int] = []
        for prompt_ids, reference in eval_prompts[: limit or len(eval_prompts)]:
            result = generator.generate(np.asarray(prompt_ids), config)
            candidates.append(self.tokenizer.decode(result.sequences[0]))
            references.append(reference)
            cache_lengths.append(result.cache_stats.mean_cache_length())
            peaks.append(result.cache_stats.peak_cache_length())

        rouge = aggregate_rouge(candidates, references)
        return EvaluationReport(
            policy=policy.describe(),
            rouge=rouge,
            candidates=candidates,
            references=references,
            mean_cache_length=float(np.mean(cache_lengths)) if cache_lengths else 0.0,
            peak_cache_length=int(max(peaks)) if peaks else 0,
            n_examples=len(candidates),
        )


class SummarizationPipeline(GenerationEvaluator):
    """Summarization evaluation (CNN/DailyMail and GovReport analogues)."""

    def evaluate_dataset(
        self,
        dataset,
        policy: EvictionPolicy | None = None,
        max_new_tokens: int | None = None,
        limit: int | None = None,
        positional_mode: str | None = None,
    ) -> EvaluationReport:
        """Evaluate a :class:`~repro.data.summarization.SummarizationDataset`."""
        prompts = dataset.to_eval_prompts(self.tokenizer, limit=limit)
        if max_new_tokens is None:
            max_new_tokens = int(max(dataset.summary_lengths(self.tokenizer)) + 2)
        return self.evaluate(
            prompts,
            policy=policy,
            max_new_tokens=max_new_tokens,
            positional_mode=positional_mode,
            limit=limit,
        )


class ConversationPipeline(GenerationEvaluator):
    """Dialogue-response evaluation (SODA analogue)."""

    def evaluate_dataset(
        self,
        dataset,
        policy: EvictionPolicy | None = None,
        max_new_tokens: int = 16,
        limit: int | None = None,
        positional_mode: str | None = None,
    ) -> EvaluationReport:
        """Evaluate a :class:`~repro.data.conversation.ConversationDataset`."""
        prompts = dataset.to_eval_prompts(self.tokenizer, limit=limit)
        return self.evaluate(
            prompts,
            policy=policy,
            max_new_tokens=max_new_tokens,
            positional_mode=positional_mode,
            limit=limit,
        )


@dataclass
class FewShotReport:
    """Accuracy report for one few-shot task under one policy."""

    task: str
    n_shots: int
    accuracy: float
    policy: dict
    n_items: int


class FewShotEvaluator:
    """Log-likelihood multiple-choice evaluation (lm-eval-harness protocol)."""

    def __init__(self, model: DecoderLM, tokenizer: WordTokenizer):
        self.model = model
        self.tokenizer = tokenizer

    def evaluate_items(
        self,
        items: Sequence[dict],
        policy: EvictionPolicy | None = None,
        normalize_by_length: bool = True,
    ) -> FewShotReport:
        """Score each item's options and report accuracy.

        ``items`` follow the format produced by
        :meth:`repro.data.fewshot.FewShotTask.evaluation_items`.
        """
        if not items:
            raise ValueError("items must be non-empty")
        policy = policy or FullAttentionPolicy()
        generator = Generator(self.model, policy)

        predictions: list[int] = []
        answers: list[int] = []
        for item in items:
            scores = [
                generator.score_continuation(item["prompt_ids"], option_ids)
                for option_ids in item["option_ids"]
            ]
            lengths = [len(o) for o in item["option_ids"]] if normalize_by_length else None
            predictions.append(pick_option(scores, lengths))
            answers.append(item["answer_index"])

        return FewShotReport(
            task=items[0].get("task", "unknown"),
            n_shots=items[0].get("n_shots", 0),
            accuracy=multiple_choice_accuracy(predictions, answers),
            policy=policy.describe(),
            n_items=len(items),
        )
