"""Next-token selection strategies."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.models.tensor_ops import softmax

__all__ = ["Sampler", "GreedySampler", "TopKSampler", "make_sampler", "sample_rows"]


class Sampler(ABC):
    """Maps next-token logits ``(batch, vocab)`` to token ids ``(batch,)``."""

    @abstractmethod
    def __call__(self, logits: np.ndarray) -> np.ndarray:
        ...


class GreedySampler(Sampler):
    """Deterministic argmax decoding (used by the accuracy experiments)."""

    def __call__(self, logits: np.ndarray) -> np.ndarray:
        logits = np.atleast_2d(np.asarray(logits))
        return np.argmax(logits, axis=-1).astype(np.int64)


class TopKSampler(Sampler):
    """Temperature + top-k sampling."""

    def __init__(self, top_k: int = 10, temperature: float = 1.0, seed: int = 0):
        if top_k < 0:
            raise ValueError("top_k must be non-negative (0 disables truncation)")
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.top_k = top_k
        self.temperature = temperature
        self.rng = np.random.default_rng(seed)

    def __call__(self, logits: np.ndarray) -> np.ndarray:
        logits = np.atleast_2d(np.asarray(logits, dtype=np.float64)) / self.temperature
        if self.top_k:
            k = min(self.top_k, logits.shape[-1])
            thresholds = np.partition(logits, -k, axis=-1)[:, -k][:, None]
            logits = np.where(logits < thresholds, -np.inf, logits)
        probs = softmax(logits, axis=-1)
        out = np.empty(probs.shape[0], dtype=np.int64)
        for i, row in enumerate(probs):
            out[i] = self.rng.choice(row.size, p=row)
        return out


def sample_rows(samplers: Sequence[Sampler], logits: np.ndarray) -> np.ndarray:
    """Sample one token per row, each row with its own sampler.

    Used by the continuous-batching engine: every in-flight request carries
    its own sampler (and RNG stream), so stochastic sampling stays
    bit-identical to running that request alone.  The all-greedy common case
    runs as a single batched argmax — ``np.argmax`` reduces each row
    independently, so the batched call matches per-row calls bit for bit.
    """
    logits = np.atleast_2d(np.asarray(logits))
    if logits.shape[0] != len(samplers):
        raise ValueError(
            f"got {logits.shape[0]} logit rows for {len(samplers)} samplers"
        )
    if all(type(s) is GreedySampler for s in samplers):
        return np.argmax(logits, axis=-1).astype(np.int64)
    out = np.empty(len(samplers), dtype=np.int64)
    for row, sampler in enumerate(samplers):
        out[row] = sampler(logits[row : row + 1])[0]
    return out


def make_sampler(
    temperature: float = 1.0, top_k: int = 0, seed: int = 0
) -> Sampler:
    """Greedy when no randomness is requested, otherwise top-k sampling.

    ``temperature == 0`` is the conventional spelling of greedy decoding
    (the zero-temperature limit of softmax sampling is argmax), so it maps
    to :class:`GreedySampler` regardless of ``top_k``.
    """
    if temperature == 0.0 or (top_k == 0 and temperature == 1.0):
        return GreedySampler()
    return TopKSampler(top_k=top_k or 0, temperature=temperature, seed=seed)
