"""KV-cache data structures and the cache managers that apply eviction policies.

Storage is paged: both the solo cache (:class:`LayerKVCache`) and the serving
batch cache (:class:`BatchedLayerKVCache`) are thin views over per-layer
:class:`BlockPool` page pools with ref-counted, copy-on-write pages — see
:mod:`repro.kvcache.paged`.  A ``kv_dtype="int8"`` knob swaps the pools for
:class:`QuantizedBlockPool` (int8 pages with per-page/per-head scales, see
:mod:`repro.kvcache.quant`) without changing any cache-facing API.

An ``admission_policy="wtinylfu"`` knob swaps the prefix registry's LRU
leaf-first reclaim for frequency-aware W-TinyLFU admission
(:class:`FrequencySketch` + :class:`WTinyLFUAdmissionPolicy`, see
:mod:`repro.kvcache.admission`) so hot shared prompt prefixes survive scan
bursts of unique prompts.

A ``tier0_pages`` knob enables **tiered KV offload**
(:mod:`repro.kvcache.offload`): each pool keeps only that many pages
resident in its tier-0 slabs and spills cold pages byte-exactly to a tier-1
arena (``spill_backend="compressed"`` or ``"mmap"``), restoring them
transparently on access — outputs stay bit-identical with offload on or off.
"""

from repro.kvcache.admission import (
    ADMISSION_POLICIES,
    FrequencySketch,
    WTinyLFUAdmissionPolicy,
    resolve_admission_policy,
)
from repro.kvcache.batch import BatchedCacheManager, BatchedLayerKVCache, BatchedLayerView
from repro.kvcache.cache import LayerKVCache
from repro.kvcache.manager import CacheManager, LayerCacheView
from repro.kvcache.paged import (
    DEFAULT_PAGE_SIZE,
    BlockPool,
    PagedKVStore,
    PageTable,
    PoolExhausted,
    PrefixMatch,
    PrefixRegistry,
    chunk_digest,
    resolve_pool_class,
)
from repro.kvcache.offload import (
    SPILL_BACKENDS,
    CompressedSpillArena,
    MmapSpillArena,
    TieredBlockPool,
    TieredQuantizedBlockPool,
    resolve_spill_arena,
    resolve_tiered_pool_class,
)
from repro.kvcache.quant import QuantizedBlockPool
from repro.kvcache.stats import CacheStats

__all__ = [
    "ADMISSION_POLICIES",
    "FrequencySketch",
    "WTinyLFUAdmissionPolicy",
    "resolve_admission_policy",
    "LayerKVCache",
    "CacheManager",
    "LayerCacheView",
    "CacheStats",
    "BatchedLayerKVCache",
    "BatchedCacheManager",
    "BatchedLayerView",
    "BlockPool",
    "PageTable",
    "PagedKVStore",
    "PoolExhausted",
    "PrefixMatch",
    "PrefixRegistry",
    "QuantizedBlockPool",
    "SPILL_BACKENDS",
    "CompressedSpillArena",
    "MmapSpillArena",
    "TieredBlockPool",
    "TieredQuantizedBlockPool",
    "chunk_digest",
    "resolve_pool_class",
    "resolve_spill_arena",
    "resolve_tiered_pool_class",
    "DEFAULT_PAGE_SIZE",
]
