"""KV-cache data structures and the cache managers that apply eviction policies."""

from repro.kvcache.batch import BatchedCacheManager, BatchedLayerKVCache, BatchedLayerView
from repro.kvcache.cache import LayerKVCache
from repro.kvcache.manager import CacheManager, LayerCacheView
from repro.kvcache.stats import CacheStats

__all__ = [
    "LayerKVCache",
    "CacheManager",
    "LayerCacheView",
    "CacheStats",
    "BatchedLayerKVCache",
    "BatchedCacheManager",
    "BatchedLayerView",
]
