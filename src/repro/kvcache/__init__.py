"""KV-cache data structures and the cache manager that applies eviction policies."""

from repro.kvcache.cache import LayerKVCache
from repro.kvcache.manager import CacheManager, LayerCacheView
from repro.kvcache.stats import CacheStats

__all__ = ["LayerKVCache", "CacheManager", "LayerCacheView", "CacheStats"]
