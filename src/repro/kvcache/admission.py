"""Frequency-aware prefix-cache admission: count-min sketch + W-TinyLFU SLRU.

The :class:`~repro.kvcache.paged.PrefixRegistry` historically reclaimed its
pinned prompt chunks LRU leaf-first.  Under realistic multi-tenant traffic
that scan-thrashes: one burst of unique prompts registers a train of
never-reused chunks whose recency beats every hot shared system-prompt
chunk, so the prefixes everyone shares are exactly the ones evicted.  This
module provides the classic cure — W-TinyLFU admission (Einziger et al.)
over the registry's chunk keys:

* :class:`FrequencySketch` — a count-min sketch estimating how often each
  chunk key was touched.  **Conservative update** increments only the
  counters currently at the minimum (tightening over-estimation without
  ever under-counting), and **exponential aging** halves every counter once
  each time ``sample_size`` increments have been recorded, so stale history
  decays instead of pinning yesterday's hot set forever.
* :class:`WTinyLFUAdmissionPolicy` — segments tracked chunk keys into
  ``window`` → ``probation`` → ``protected`` SLRU tiers (new chunks enter
  the window; a re-accessed window chunk moves to probation; a re-accessed
  probation chunk is promoted to protected, demoting the protected LRU back
  to probation when the protected tier overflows).  At reclaim time the
  registry asks :meth:`WTinyLFUAdmissionPolicy.choose_victim` to pick among
  the *eligible* chunks (the registry still enforces freeability and the
  parent-before-child chain rule): the window's oldest eligible chunk is
  the admission **candidate**, the probation tier's oldest eligible chunk
  the incumbent **victim**, and the candidate is admitted into main — the
  victim evicted — only if its sketched frequency strictly beats the
  victim's.  Protected chunks are touched only when no window or probation
  chunk is eligible.

Everything here is deterministic: chunk keys are process-stable
:func:`~repro.kvcache.paged.chunk_digest` bytes, the sketch hashes them with
a fixed seeded mix (never Python's randomized ``hash``), and segment order
is plain dict insertion order — so admission is a pure function of the
request stream and the serving engines' bit-exactness contract extends to
the ``"wtinylfu"`` policy unchanged.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "ADMISSION_POLICIES",
    "FrequencySketch",
    "WTinyLFUAdmissionPolicy",
    "resolve_admission_policy",
]

#: Valid values of the ``admission_policy`` knob threaded through
#: ``PagedKVStore`` / ``PrefixRegistry`` / the serving engines.
ADMISSION_POLICIES = ("lru", "wtinylfu")

_MASK64 = (1 << 64) - 1
#: Per-row seeds folded into the key hash (one per hash row, cycled).
_ROW_SEEDS = (0x9E3779B1, 0x85EBCA77, 0xC2B2AE3D, 0x27D4EB2F)
#: Saturation cap of every sketch counter (4 aging halvings to forget).
_COUNTER_CAP = 255


def _mix64(value: int) -> int:
    """Murmur3's 64-bit finalizer: avalanche ``value`` into a mixed hash."""
    value &= _MASK64
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & _MASK64
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & _MASK64
    value ^= value >> 33
    return value


def _key_base(key) -> int:
    """Process-stable 64-bit base hash of a sketch key.

    Chunk keys are :func:`~repro.kvcache.paged.chunk_digest` bytes; their
    leading 8 bytes are already uniformly mixed, so they are used directly.
    Integers are accepted for tests and ad-hoc use.  Python's builtin
    ``hash`` is deliberately avoided — it is randomized per process, which
    would break the cross-process determinism the sharded engines rely on.
    """
    if isinstance(key, (bytes, bytearray)):
        return int.from_bytes(bytes(key[:8]).ljust(8, b"\0"), "little")
    return int(key) & _MASK64


class FrequencySketch:
    """Count-min sketch over chunk keys with conservative update and aging.

    Parameters
    ----------
    width:
        Counters per hash row; rounded up to a power of two (minimum 64) so
        row indexing is a mask.
    depth:
        Number of independent hash rows; the estimate is the row minimum.
    sample_size:
        Aging threshold: after this many recorded increments every counter
        is halved (floor division) exactly once and the increment counter
        resets — the exponential-decay window of "recent" frequency.
        ``None`` disables aging entirely (used by the never-under-counts
        property tests).
    conservative:
        When true (default) :meth:`record` increments only the counters
        currently at the row minimum — the TinyLFU conservative update,
        which is pointwise ≤ the plain update and still never under-counts.
    """

    def __init__(
        self,
        width: int = 1024,
        depth: int = 4,
        sample_size: int | None = None,
        conservative: bool = True,
    ):
        if depth <= 0:
            raise ValueError("depth must be positive")
        if sample_size is not None and sample_size <= 0:
            raise ValueError("sample_size must be positive (or None)")
        w = 64
        while w < width:
            w *= 2
        self.width = w
        self.depth = int(depth)
        self.mask = w - 1
        self.sample_size = (
            int(sample_size) if sample_size is not None else None
        )
        self.conservative = bool(conservative)
        self._tables = np.zeros((self.depth, w), dtype=np.int64)
        #: Increments recorded since the last aging pass.
        self.ops_since_aging = 0
        #: Total increments ever recorded.
        self.n_increments = 0
        #: Aging passes performed (each halves every counter once).
        self.n_agings = 0

    # ------------------------------------------------------------------
    def _indexes(self, key) -> list[int]:
        """Row-local counter index of ``key`` in every hash row."""
        base = _key_base(key)
        return [
            _mix64(base ^ (_ROW_SEEDS[row % len(_ROW_SEEDS)] + row)) & self.mask
            for row in range(self.depth)
        ]

    def record(self, key) -> None:
        """Count one access of ``key`` (then age if the sample filled up)."""
        idxs = self._indexes(key)
        tables = self._tables
        if self.conservative:
            current = [int(tables[row, idx]) for row, idx in enumerate(idxs)]
            floor = min(current)
            if floor < _COUNTER_CAP:
                for row, idx in enumerate(idxs):
                    if tables[row, idx] == floor:
                        tables[row, idx] = floor + 1
        else:
            for row, idx in enumerate(idxs):
                if tables[row, idx] < _COUNTER_CAP:
                    tables[row, idx] += 1
        self.n_increments += 1
        self.ops_since_aging += 1
        if self.sample_size is not None and self.ops_since_aging >= self.sample_size:
            self._age()

    def _age(self) -> None:
        """Halve every counter once (exponential decay of stale history)."""
        self._tables >>= 1
        self.ops_since_aging = 0
        self.n_agings += 1

    def estimate(self, key) -> int:
        """Estimated access count of ``key`` — the minimum over hash rows.

        Without aging this never under-counts the true number of
        :meth:`record` calls for ``key`` (collisions only inflate it).
        """
        idxs = self._indexes(key)
        return int(min(self._tables[row, idx] for row, idx in enumerate(idxs)))

    def counters(self) -> np.ndarray:
        """Copy of the raw counter matrix, shape ``(depth, width)`` (tests)."""
        return self._tables.copy()


class WTinyLFUAdmissionPolicy:
    """Window → probation → protected SLRU segmentation with sketch admission.

    The policy tracks registry chunk *keys* only (no pages, no refcounts —
    the registry keeps enforcing freeability and chain safety) and decides
    which eligible chunk to sacrifice when the pool runs dry.

    Segment lifecycle
    -----------------
    * a newly registered chunk enters the **window**; window overflow spills
      the window LRU into **probation** (main's entry tier);
    * a window hit promotes the chunk to probation; a probation hit promotes
      it to **protected**; a protected hit refreshes its recency;
    * protected overflow demotes the protected LRU back to probation (most
      recent end) — the SLRU demotion path.

    Eviction-time competitive admission
    -----------------------------------
    :meth:`choose_victim` compares the oldest eligible window chunk (the
    candidate) against the oldest eligible probation chunk (the incumbent
    victim): the candidate is admitted into main — and the incumbent evicted
    — only when the candidate's sketched frequency strictly beats the
    incumbent's; otherwise the candidate itself is evicted.  One-shot scan
    chunks therefore evict each other inside the window while frequently
    reused chunks ride out the burst in probation/protected.

    Parameters
    ----------
    capacity:
        Nominal capacity in chunks (the registry passes its per-layer pool
        page count — the most chunks it could ever pin).  Sizes the window
        and protected tiers and, by default, the sketch.
    window_fraction, protected_fraction:
        Fraction of ``capacity`` kept as admission window, and fraction of
        the remaining main capacity kept protected (Caffeine's defaults).
    sketch:
        Optional pre-built :class:`FrequencySketch`; by default one is sized
        at four counters per capacity slot with a ``16 * capacity`` aging
        sample.
    """

    def __init__(
        self,
        capacity: int = 1024,
        window_fraction: float = 0.2,
        protected_fraction: float = 0.8,
        sketch: FrequencySketch | None = None,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < window_fraction < 1.0:
            raise ValueError("window_fraction must be in (0, 1)")
        if not 0.0 < protected_fraction <= 1.0:
            raise ValueError("protected_fraction must be in (0, 1]")
        self.capacity = int(capacity)
        self.window_cap = max(1, round(window_fraction * capacity))
        main_cap = max(1, self.capacity - self.window_cap)
        self.protected_cap = max(1, round(protected_fraction * main_cap))
        self.sketch = sketch or FrequencySketch(
            width=4 * capacity, sample_size=16 * capacity
        )
        # Plain dicts: insertion order is LRU (front) -> MRU (back).
        self._window: dict = {}
        self._probation: dict = {}
        self._protected: dict = {}
        #: Candidates admitted into main at a victim's expense.
        self.n_admitted = 0
        #: Candidates evicted because their frequency lost the comparison.
        self.n_rejected = 0
        #: Evictions charged to each segment.
        self.n_evicted_window = 0
        self.n_evicted_probation = 0
        self.n_evicted_protected = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._window) + len(self._probation) + len(self._protected)

    def __contains__(self, key) -> bool:
        return (
            key in self._window or key in self._probation or key in self._protected
        )

    def segment_of(self, key) -> str | None:
        """Segment name currently holding ``key`` (``None`` if untracked)."""
        if key in self._window:
            return "window"
        if key in self._probation:
            return "probation"
        if key in self._protected:
            return "protected"
        return None

    def segments(self) -> dict[str, list]:
        """Snapshot of every segment's keys in LRU→MRU order (tests/audits)."""
        return {
            "window": list(self._window),
            "probation": list(self._probation),
            "protected": list(self._protected),
        }

    # ------------------------------------------------------------------
    # lifecycle events (driven by the registry)
    # ------------------------------------------------------------------
    def on_insert(self, key) -> None:
        """A new chunk was registered: sketch it and admit it to the window."""
        self.sketch.record(key)
        if key in self:
            # Defensive re-insert of a tracked key: treat as an access.
            self.on_access(key)
            return
        self._window[key] = None
        self._spill_window()

    def on_access(self, key) -> None:
        """A tracked chunk was matched/refreshed: sketch it and promote it."""
        self.sketch.record(key)
        if key in self._window:
            del self._window[key]
            self._probation[key] = None
        elif key in self._probation:
            del self._probation[key]
            self._protected[key] = None
            self._spill_protected()
        elif key in self._protected:
            del self._protected[key]
            self._protected[key] = None
        else:
            # Untracked (e.g. policy attached to a pre-populated registry):
            # start it in the window like a fresh insert.
            self._window[key] = None
            self._spill_window()

    def on_drop(self, key) -> None:
        """A chunk was reclaimed (or cleared): forget its segment entry."""
        for segment in (self._window, self._probation, self._protected):
            if key in segment:
                del segment[key]
                return

    def _spill_window(self) -> None:
        """Move window-LRU overflow into probation (main's entry tier)."""
        while len(self._window) > self.window_cap:
            key = next(iter(self._window))
            del self._window[key]
            self._probation[key] = None

    def _spill_protected(self) -> None:
        """Demote protected-LRU overflow back to probation (MRU end)."""
        while len(self._protected) > self.protected_cap:
            key = next(iter(self._protected))
            del self._protected[key]
            self._probation[key] = None

    # ------------------------------------------------------------------
    # reclaim-time victim selection
    # ------------------------------------------------------------------
    def choose_victim(self, eligible: Sequence):
        """Pick which of ``eligible`` chunk keys to reclaim.

        ``eligible`` is the registry's already-filtered victim set (freeable
        leaves, or chain-unblocking leaves) — this method only ranks it.
        When both a window candidate and a probation incumbent are eligible
        the competitive admission rule applies (see class docstring); an
        admitted candidate is moved from the window into probation before
        the incumbent's key is returned.
        """
        if not eligible:
            raise ValueError("choose_victim needs at least one eligible key")
        pool = set(eligible)
        candidate = next((k for k in self._window if k in pool), None)
        incumbent = next((k for k in self._probation if k in pool), None)
        if candidate is not None and incumbent is not None:
            if self.sketch.estimate(candidate) > self.sketch.estimate(incumbent):
                self.n_admitted += 1
                del self._window[candidate]
                self._probation[candidate] = None
                self.n_evicted_probation += 1
                return incumbent
            self.n_rejected += 1
            self.n_evicted_window += 1
            return candidate
        if candidate is not None:
            self.n_evicted_window += 1
            return candidate
        if incumbent is not None:
            self.n_evicted_probation += 1
            return incumbent
        victim = next((k for k in self._protected if k in pool), None)
        if victim is not None:
            self.n_evicted_protected += 1
            return victim
        # Untracked keys (defensive): evict the first eligible as given.
        return eligible[0]

    # ------------------------------------------------------------------
    # auditing & telemetry
    # ------------------------------------------------------------------
    def audit(self, tracked_keys: Iterable) -> list[str]:
        """Cross-check segment state against the registry's chunk set.

        Verifies the SLRU invariants — no key in two segments, window and
        protected within their capacity bounds — and that segment
        membership is exactly ``tracked_keys`` (the registry's registered
        chunks, each of which pins refcounted pages), so a segment entry can
        never outlive or predate its chunk's pins.  Returns violation
        strings (empty = clean).
        """
        violations: list[str] = []
        window = set(self._window)
        probation = set(self._probation)
        protected = set(self._protected)
        for name_a, set_a, name_b, set_b in (
            ("window", window, "probation", probation),
            ("window", window, "protected", protected),
            ("probation", probation, "protected", protected),
        ):
            overlap = set_a & set_b
            if overlap:
                violations.append(
                    f"admission: {len(overlap)} key(s) in both {name_a} and {name_b}"
                )
        if len(self._window) > self.window_cap:
            violations.append(
                f"admission: window holds {len(self._window)} keys "
                f"(cap {self.window_cap})"
            )
        if len(self._protected) > self.protected_cap:
            violations.append(
                f"admission: protected holds {len(self._protected)} keys "
                f"(cap {self.protected_cap})"
            )
        tracked = set(tracked_keys)
        segmented = window | probation | protected
        missing = tracked - segmented
        if missing:
            violations.append(
                f"admission: {len(missing)} registered chunk(s) in no segment"
            )
        stale = segmented - tracked
        if stale:
            violations.append(
                f"admission: {len(stale)} segment key(s) reference reclaimed "
                "chunks (stale pins)"
            )
        return violations

    def telemetry(self) -> dict:
        """Sketch / segment / admission-decision counters (all deterministic)."""
        return {
            "window_chunks": len(self._window),
            "probation_chunks": len(self._probation),
            "protected_chunks": len(self._protected),
            "window_cap": self.window_cap,
            "protected_cap": self.protected_cap,
            "admitted": self.n_admitted,
            "rejected": self.n_rejected,
            "evicted_window": self.n_evicted_window,
            "evicted_probation": self.n_evicted_probation,
            "evicted_protected": self.n_evicted_protected,
            "sketch_increments": self.sketch.n_increments,
            "sketch_agings": self.sketch.n_agings,
        }


def resolve_admission_policy(
    name: str | None, capacity: int
) -> WTinyLFUAdmissionPolicy | None:
    """Admission-policy instance for an ``admission_policy`` knob value.

    ``None`` or ``"lru"`` returns ``None`` — the registry keeps its
    historical LRU leaf-first reclaim byte-exactly; ``"wtinylfu"`` builds a
    :class:`WTinyLFUAdmissionPolicy` sized for ``capacity`` chunks.
    """
    if name in (None, "lru"):
        return None
    if str(name) == "wtinylfu":
        return WTinyLFUAdmissionPolicy(capacity=capacity)
    raise ValueError(
        f"unknown admission_policy {name!r}; expected one of {ADMISSION_POLICIES}"
    )
