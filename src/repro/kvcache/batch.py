"""Batched per-sequence KV storage for the continuous-batching engine.

The serving engine keeps many in-flight sequences resident at once.  Each
sequence row is a :class:`~repro.kvcache.paged.PageTable` into the same
per-layer :class:`~repro.kvcache.paged.BlockPool` the solo cache uses — the
batched cache adds no storage logic of its own, it only drives the pool's
single implementation of append/extend/gather for a set of rows:

* ``append_rows`` resolves one page slot per active sequence and writes all
  rows with one vectorized scatter per slab;
* ``gather_row`` compacts a single sequence when its eviction policy drops
  tokens (the pool keeps the suffix-eviction O(1) fast path that makes
  sliding-window serving cheap);
* ``join_row`` / ``join_row_shared`` / ``free_row`` manage the persistent
  batch: a retiring row's pages go straight back to the pool (an O(1)
  refcount drop — no slab copy, unlike the historical dense-slab design),
  and a joining row may *map* already-resident pages for a shared prompt
  prefix instead of storing a duplicate.

The attention step consumes padded ``(rows, heads, max_len, d)`` tensors
assembled by a page-gather per row (zero-copy when a lone row sits on
physically contiguous pages).  Bit-exactness contract: every stored value is
produced by the same per-token elementwise operations as the single-sequence
cache, so row ``b`` of the padded view restricted to ``lengths[b]`` entries
is bit-identical to the cache of a sequence decoded alone.
:class:`BatchedCacheManager` mirrors
:class:`~repro.kvcache.manager.CacheManager` — per-layer caches, positional
modes, eviction bookkeeping — but drives one policy *instance per sequence*
so that policy state (score accumulators, noise RNGs) evolves exactly as it
would in a dedicated single-sequence run.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.core.policies import EvictionPolicy
from repro.kvcache.paged import (
    DEFAULT_PAGE_SIZE,
    BlockPool,
    PagedKVStore,
    PageTable,
    PrefixMatch,
    PrefixRegistry,
    pages_needed,
    tag_fault_row,
)
from repro.kvcache.stats import CacheStats
from repro.models.positional import RopeTable, get_rope_table

__all__ = ["BatchedLayerKVCache", "BatchedCacheManager", "BatchedLayerView"]

_MIN_CAPACITY = 16


class _RowSnapshot:
    """Pre-step state of one row (see :meth:`BatchedCacheManager.snapshot_row`)."""

    __slots__ = ("tables", "policy", "total_appended", "total_evicted", "step_lengths")

    def __init__(
        self,
        tables: list[PageTable],
        policy: EvictionPolicy,
        total_appended: int,
        total_evicted: int,
        step_lengths: list[int],
    ):
        self.tables = tables
        self.policy = policy
        self.total_appended = total_appended
        self.total_evicted = total_evicted
        self.step_lengths = step_lengths


class BatchedLayerKVCache:
    """Key/value storage for one decoder layer shared by a batch of sequences.

    Parameters
    ----------
    max_batch:
        Number of sequence rows.
    n_heads, d_head:
        Attention geometry (shared by all sequences).
    capacity:
        Initial token slots to size a private pool for (ignored when ``pool``
        is passed); the pool grows geometrically on demand when growable.
    dtype:
        Storage dtype of keys/values.
    rope_dims:
        When positive, the pool maintains a rotated-key slab alongside the
        raw keys (rotation is eager and elementwise, hence bit-identical to
        the lazy rotation of the historical solo cache).
    pool:
        Optional shared :class:`BlockPool` (the batched manager passes one
        per layer, owned by its :class:`PagedKVStore`).
    """

    def __init__(
        self,
        max_batch: int,
        n_heads: int,
        d_head: int,
        capacity: int = _MIN_CAPACITY,
        dtype: np.dtype | str = np.float64,
        rope_dims: int = 0,
        rope_table: RopeTable | None = None,
        pool: BlockPool | None = None,
        page_size: int | None = None,
    ):
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if pool is None:
            ps = page_size or DEFAULT_PAGE_SIZE
            pool = BlockPool(
                n_heads,
                d_head,
                page_size=ps,
                n_pages=max_batch * max(pages_needed(capacity, ps), 1) + 1,
                dtype=dtype,
                rope_dims=rope_dims,
                rope_table=rope_table,
                growable=True,
            )
        self.pool = pool
        self.dtype = pool.dtype
        self.rope_dims = pool.rope_dims
        self.tables: list[PageTable] = [PageTable() for _ in range(max_batch)]
        # Persistent padded-batch workspace (keys, values, positions), grown
        # on demand: the per-step batch read re-fills live entries in place
        # instead of allocating and zeroing fresh buffers every step.  Zero
        # initialization (and only ever overwriting with stored values) keeps
        # padding slots finite for the masked float32 path.
        self._ws: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    @property
    def max_batch(self) -> int:
        """Number of sequence rows this cache was sized for."""
        return len(self.tables)

    @property
    def n_heads(self) -> int:
        """Attention heads of the backing pool."""
        return self.pool.n_heads

    @property
    def d_head(self) -> int:
        """Per-head feature dimension of the backing pool."""
        return self.pool.d_head

    @property
    def page_size(self) -> int:
        """Tokens per KV page of the backing pool."""
        return self.pool.page_size

    @property
    def capacity(self) -> int:
        """Largest per-row allocated token span (whole pages)."""
        ps = self.pool.page_size
        return max((t.allocated(ps) - t.offset for t in self.tables), default=0)

    @property
    def lengths(self) -> np.ndarray:
        """Live token count of every row."""
        return np.asarray([t.length for t in self.tables], dtype=np.int64)

    # ------------------------------------------------------------------
    def join_row(
        self, row: int, keys: np.ndarray, values: np.ndarray, positions: np.ndarray
    ) -> None:
        """Seed row ``row`` from prompt-phase tensors of shape ``(1, H, T, d)``.

        ``positions`` has shape ``(1, H, T)`` (original token positions).
        """
        keys = np.asarray(keys)
        if keys.ndim != 4 or keys.shape[0] != 1:
            raise ValueError(f"join_row expects (1, H, T, d) keys, got {keys.shape}")
        table = self.tables[row]
        if table.pages:
            self.pool.release_table(table)
        self.pool.extend(
            table,
            keys[0],
            np.asarray(values)[0],
            np.asarray(positions, dtype=np.int64)[0],
        )

    def join_row_shared(
        self,
        row: int,
        shared_pages: list[int],
        shared_len: int,
        keys: np.ndarray,
        values: np.ndarray,
        positions: np.ndarray,
    ) -> None:
        """Seed row ``row`` by *mapping* ``shared_pages`` (a page-aligned
        resident prompt prefix of ``shared_len`` tokens) and storing only the
        freshly computed suffix tensors ``(1, H, S, d)``.

        The mapped pages are refcount-shared; the pool's copy-on-write keeps
        them pristine if this row later evicts or appends into them.
        """
        if shared_len % self.pool.page_size != 0:
            raise ValueError("shared prefix must be page-aligned")
        if shared_len != len(shared_pages) * self.pool.page_size:
            raise ValueError("shared_pages do not cover shared_len tokens")
        table = self.tables[row]
        if table.pages:
            self.pool.release_table(table)
        table.pages = list(shared_pages)
        table.offset = 0
        table.length = shared_len
        self.pool.retain(shared_pages)
        self.pool.extend(
            table,
            np.asarray(keys)[0],
            np.asarray(values)[0],
            np.asarray(positions, dtype=np.int64)[0],
        )

    def free_row(self, row: int, last: int) -> None:
        """Retire ``row``: release its pages and move row ``last`` into it.

        Pure page-table bookkeeping — an O(1) refcount drop plus a pointer
        move, where the dense-slab design copied the whole moved row.
        """
        self.pool.release_table(self.tables[row])
        if row != last:
            self.tables[row] = self.tables[last]
            self.tables[last] = PageTable()

    def append_rows(
        self, n_active: int, k: np.ndarray, v: np.ndarray, positions: np.ndarray
    ) -> None:
        """Append one token per active row at each row's own cursor.

        ``k``/``v`` have shape ``(R, H, d)`` and ``positions`` shape ``(R,)``
        with the original position of each row's new token.
        """
        expected = (n_active, self.n_heads, self.d_head)
        if k.shape != expected:
            raise ValueError(f"append_rows expects shape {expected}, got {k.shape}")
        self.pool.append_rows(self.tables[:n_active], k, v, positions)

    def gather_row(self, row: int, indices: np.ndarray) -> int:
        """Retain only the entries of ``row`` selected by ``indices``.

        ``indices`` has shape ``(1, H, K)`` or ``(H, K)``, ascending per head,
        relative to the row's live region.  Returns the number of evicted
        entries.  Suffix selections (sliding-window steady state) are an O(1)
        page-table bump.
        """
        return self.pool.gather(self.tables[row], indices)

    def append_pages_needed(self, n_active: int) -> int:
        """Pages this layer must allocate to append one token to every active
        row (used by the engine's preemption check before a decode step)."""
        ps = self.pool.page_size
        needed = 0
        for table in self.tables[:n_active]:
            if table.end == table.allocated(ps):
                needed += 1
            elif table.pages and self.pool.refcounts[table.pages[table.end // ps]] > 1:
                needed += 1  # copy-on-write of a shared last page
        return needed

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def row_view(self, row: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense ``(1, H, L, ...)`` keys/values/positions of one row."""
        table = self.tables[row]
        return (
            self.pool.keys_view(table)[None],
            self.pool.values_view(table)[None],
            self.pool.positions_view(table)[None],
        )

    def positions_row(self, row: int) -> np.ndarray:
        """Original positions of row ``row``'s live entries, shape ``(1, H, L)``."""
        return self.pool.positions_view(self.tables[row])[None]

    def padded_batch(
        self, n_active: int, rotated: bool
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
        """Padded ``(R, H, max_len, ...)`` batch tensors read through the page
        tables: ``(keys, values, positions, lengths, max_len)``.

        ``keys`` is the rotated-key slab content when ``rotated`` (RoPE at
        original positions) and the raw keys otherwise.  Row ``b`` is valid up
        to ``lengths[b]`` entries; padding is zero (benign for the masked
        float32 path, ignored by the exact-length float64 path).  A lone
        active row on contiguous pages is returned as zero-copy pool views —
        the contiguous fast path of the paged read.
        """
        pool = self.pool
        lengths = self.lengths[:n_active]
        max_len = int(lengths.max(initial=0))
        if n_active == 1:
            table = self.tables[0]
            keys = pool.rotated_view(table) if rotated else pool.keys_view(table)
            return (
                keys[None],
                pool.values_view(table)[None],
                pool.positions_view(table)[None],
                lengths,
                max_len,
            )
        if self._ws is None or self._ws[0].shape[2] < max_len:
            h, d = self.n_heads, self.d_head
            cap = max(max_len, 2 * (self._ws[0].shape[2] if self._ws else 0), 16)
            self._ws = (
                np.zeros((self.max_batch, h, cap, d), dtype=self.dtype),
                np.zeros((self.max_batch, h, cap, d), dtype=self.dtype),
                np.zeros((self.max_batch, h, cap), dtype=np.int64),
            )
        keys = self._ws[0][:n_active, :, :max_len]
        values = self._ws[1][:n_active, :, :max_len]
        positions = self._ws[2][:n_active, :, :max_len]
        for row in range(n_active):
            try:
                pool.fill_row(
                    self.tables[row], keys[row], values[row], positions[row], rotated
                )
            except Exception as exc:
                # Read-path faults (a tiered pool's spill_io restore) must be
                # row-attributable so the engine can quarantine the row.
                tag_fault_row(exc, row)
                raise
        return keys, values, positions, lengths, max_len


class BatchedLayerView:
    """Per-layer facade of the batched manager, mirroring ``LayerCacheView``."""

    def __init__(self, manager: "BatchedCacheManager", layer_idx: int):
        self.manager = manager
        self.layer_idx = layer_idx

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append one token per active row to this layer."""
        self.manager.append_batch(self.layer_idx, k, v)

    def attention_view(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]:
        """Padded ragged-batch attention inputs for this layer."""
        return self.manager.attention_view_batch(self.layer_idx)

    def observe(self, logits: np.ndarray, probs: np.ndarray) -> None:
        """Feed the step's attention tensors to every row's policy."""
        self.manager.observe_batch(self.layer_idx, logits, probs)


class RowVerifyView:
    """Per-layer speculative-verify facade for one running row.

    Implements the ``VerifyLayerCache`` protocol of
    :meth:`repro.models.block.DecoderBlock.verify_step` against a single
    sequence of the batched store — the serving engine's speculation mode
    verifies each row's draft block through these.
    """

    def __init__(self, manager: "BatchedCacheManager", layer_idx: int, row: int):
        self.manager = manager
        self.layer_idx = layer_idx
        self.row = row

    def append_block(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append the draft block's KV to this row in one write."""
        self.manager.append_block_row(self.layer_idx, self.row, k, v)

    def verify_view(
        self, n_queries: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]:
        """Verify-pass attention inputs over this row's cache."""
        return self.manager.verify_view_row(self.layer_idx, self.row, n_queries)


class BatchedCacheManager:
    """Owns the paged store's per-layer pools and one eviction policy per row.

    The lifecycle mirrors :class:`~repro.kvcache.manager.CacheManager`, but
    sequences ``join`` and ``retire`` independently and every per-sequence
    quantity (policy instance, :class:`CacheStats`, position cursor,
    generation step) lives in a row-indexed list that is compacted together
    with the page tables.

    Parameters
    ----------
    max_pool_tokens:
        When set, the per-layer pools are **fixed** at
        ``ceil(max_pool_tokens / page_size)`` pages and never grow: running
        out becomes :class:`~repro.kvcache.paged.PoolExhausted`, which the
        serving engine answers with registry reclamation and preemption.
        When ``None`` (default) pools grow on demand like the solo cache.
    kv_dtype:
        Page storage format of the shared store: ``None`` (default) keeps
        full-precision pages, ``"int8"`` stores quantized pages (see
        :mod:`repro.kvcache.quant`) — the same fixed byte budget then holds
        roughly 4x (float32) to 8x (float64) more tokens.
    admission_policy:
        Reclaim/admission policy of the prefix registry: ``"lru"``
        (default, byte-exact historical leaf-first reclaim) or
        ``"wtinylfu"`` (frequency-aware W-TinyLFU admission, see
        :mod:`repro.kvcache.admission`).
    tier0_pages:
        When set, enables tiered KV offload (:mod:`repro.kvcache.offload`):
        each layer pool keeps only this many pages resident in tier-0 and
        spills cold pages byte-exactly to a ``spill_backend`` arena
        (``"compressed"`` or ``"mmap"``), restoring them on access.  The
        registry's W-TinyLFU segment ranking (when ``admission_policy`` is
        ``"wtinylfu"``) drives spill-victim selection so hot shared-prefix
        pages stay resident.
    """

    def __init__(
        self,
        n_layers: int,
        n_heads: int,
        d_head: int,
        max_batch: int,
        positional_mode: str = "original",
        dtype: np.dtype | str | None = None,
        rope_dims: int = 0,
        page_size: int = DEFAULT_PAGE_SIZE,
        max_pool_tokens: int | None = None,
        kv_dtype: str | None = None,
        admission_policy: str = "lru",
        tier0_pages: int | None = None,
        spill_backend: str | None = None,
    ):
        if positional_mode not in ("original", "new"):
            raise ValueError(f"unknown positional mode {positional_mode!r}")
        self.n_layers = n_layers
        self.n_heads = n_heads
        self.d_head = d_head
        self.max_batch = max_batch
        self.positional_mode = positional_mode
        self.dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
        self.kv_dtype = kv_dtype
        # Rotated-key caching is only sound for stable original positions —
        # same rule as the single-sequence manager.
        self.rope_dims = int(rope_dims) if positional_mode == "original" else 0
        self._rope_table = get_rope_table(rope_dims) if rope_dims > 0 else None
        n_pages = (
            None if max_pool_tokens is None else max(pages_needed(max_pool_tokens, page_size), 1)
        )
        self.store = PagedKVStore(
            n_layers,
            n_heads,
            d_head,
            page_size=page_size,
            dtype=self.dtype,
            rope_dims=self.rope_dims,
            n_pages=n_pages,
            growable=max_pool_tokens is None,
            kv_dtype=kv_dtype,
            admission_policy=admission_policy,
            tier0_pages=tier0_pages,
            spill_backend=spill_backend,
        )
        self.registry = PrefixRegistry(self.store)
        if tier0_pages is not None:
            # Victim selection reuses the registry's admission ranking:
            # W-TinyLFU-protected prefix pages spill last (pure pool LRU
            # under the default "lru" policy, where ranks are all zero).
            for layer, pool in enumerate(self.store.pools):
                pool.spill_ranker = self.registry.spill_ranker(layer)
        self.caches = [
            BatchedLayerKVCache(
                max_batch, n_heads, d_head, pool=self.store.pools[layer]
            )
            for layer in range(n_layers)
        ]
        self.n_active = 0
        self.policies: list[EvictionPolicy] = []
        self.stats: list[CacheStats] = []
        self.current_position: list[int] = []
        self.generation_step: list[int] = []
        self.prompt_len: list[int] = []
        self._step_lengths: list[list[int]] = []
        self._qpos: np.ndarray | None = None

    # ------------------------------------------------------------------
    # sequence lifecycle
    # ------------------------------------------------------------------
    def join(
        self,
        prompt_kv: list[tuple[np.ndarray, np.ndarray]],
        prompt_attn: list[np.ndarray],
        prompt_logits: list[np.ndarray],
        max_new_tokens: int,
        policy: EvictionPolicy,
        shared_prefix: PrefixMatch | None = None,
        prompt_token_ids: np.ndarray | None = None,
    ) -> int:
        """Admit one sequence and return its row index.

        Without ``shared_prefix``, ``prompt_kv`` holds the full prompt
        tensors; with it, they hold only the recomputed **suffix** — the
        prefix pages are mapped from the registry match.  When
        ``prompt_token_ids`` is given, the seeded prompt's page-aligned
        chunks are registered for future prefix sharing *before* the policy's
        prompt-phase eviction runs (eviction copy-on-writes away from
        registered pages, so they stay pristine).
        """
        if self.n_active >= self.max_batch:
            raise RuntimeError(f"batch is full ({self.max_batch} rows)")
        if len(prompt_kv) != self.n_layers:
            raise ValueError(
                f"expected {self.n_layers} layers of prompt KV, got {len(prompt_kv)}"
            )
        keys0 = prompt_kv[0][0]
        if keys0.shape[0] != 1:
            raise ValueError("join admits one sequence at a time (batch dim must be 1)")
        shared_len = shared_prefix.length if shared_prefix is not None else 0
        suffix_len = keys0.shape[2]
        prompt_len = shared_len + suffix_len
        row = self.n_active

        policy.setup(self.n_layers, self.n_heads, 1, prompt_len, max_new_tokens)
        suffix_positions = np.arange(shared_len, prompt_len)
        pos_bht = np.broadcast_to(suffix_positions, (1, self.n_heads, suffix_len))
        try:
            for layer_idx, (keys, values) in enumerate(prompt_kv):
                cache = self.caches[layer_idx]
                if shared_prefix is not None:
                    cache.join_row_shared(
                        row,
                        shared_prefix.pages_per_layer[layer_idx],
                        shared_len,
                        keys,
                        values,
                        pos_bht,
                    )
                else:
                    cache.join_row(row, keys, values, pos_bht)
        except Exception:
            # A mid-join failure must not leak the pages already seeded into
            # earlier layers — unwind so the engine can preempt and retry.
            # The row has no stats entry yet (it is appended below).
            self.unwind_row(row, [0] * self.n_layers, adjust_stats=False)
            raise
        if prompt_token_ids is not None:
            self.registry.register(
                prompt_token_ids, [cache.tables[row] for cache in self.caches]
            )

        stats = CacheStats(
            n_layers=self.n_layers,
            n_heads=self.n_heads,
            d_head=self.d_head,
            batch_size=1,
            prompt_len=prompt_len,
        )
        stats.kv_token_bytes = self.store.pools[0].kv_token_nbytes()
        stats.total_appended += prompt_len * self.n_layers
        self.policies.append(policy)
        self.stats.append(stats)
        self.current_position.append(prompt_len)
        self.generation_step.append(0)
        self.prompt_len.append(prompt_len)
        self._step_lengths.append([])
        self.n_active += 1

        positions = np.arange(prompt_len)
        shared_selection: np.ndarray | None = None
        try:
            for layer_idx in range(self.n_layers):
                selection = policy.initial_selection(
                    layer_idx, prompt_attn[layer_idx], prompt_logits[layer_idx], positions
                )
                if selection is None:
                    continue
                if getattr(policy, "shared_selection", False):
                    shared_selection = selection
                else:
                    self._apply_row_selection(layer_idx, row, selection)
            if shared_selection is not None:
                for layer_idx in range(self.n_layers):
                    self._apply_row_selection(layer_idx, row, shared_selection)
        except Exception:
            # The prompt-phase eviction can exhaust the pool too (a
            # copy-on-write gather of registry-shared pages allocates fresh
            # ones).  The row is fully admitted at this point, so unwind it
            # through the normal retirement path before re-raising — the
            # engine treats the failure as "join could not be funded".
            self.retire(row)
            raise
        return row

    def prefix_tensors(
        self, shared_prefix: PrefixMatch
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-layer ``(keys_for_attention, values)`` of a mapped prefix,
        each of shape ``(1, H, P, d)``.

        For RoPE models the keys are rotated at their original positions —
        read straight from the rotated pages when the store maintains them,
        recomputed once (bit-identically) in renumbered-position mode.
        Views are zero-copy when the prefix pages are contiguous.
        """
        out = []
        for layer_idx in range(self.n_layers):
            pool = self.store.pools[layer_idx]
            pages = shared_prefix.pages_per_layer[layer_idx]
            if self._rope_table is not None and pool.rope_dims == 0:
                keys, values = pool.page_tokens_view(pages, rotated=False)
                positions = np.arange(shared_prefix.length)
                keys = self._rope_table.rotate(keys, positions)
            else:
                keys, values = pool.page_tokens_view(pages, rotated=pool.rope_dims > 0)
            out.append((keys[None], values[None]))
        return out

    def retire(self, row: int) -> CacheStats:
        """Remove a finished sequence; the last active row moves into its slot.

        Returns the sequence's :class:`CacheStats`.  Callers tracking row
        assignments must note that row ``n_active - 1`` (if different) now
        lives at ``row``.
        """
        if not (0 <= row < self.n_active):
            raise IndexError(f"row {row} out of range (n_active={self.n_active})")
        last = self.n_active - 1
        stats = self.stats[row]
        for cache in self.caches:
            cache.free_row(row, last)
        for values in (
            self.policies,
            self.stats,
            self.current_position,
            self.generation_step,
            self.prompt_len,
            self._step_lengths,
        ):
            values[row] = values[last]
            values.pop()
        self.n_active -= 1
        self._qpos = None
        return stats

    def release_row(self, row: int) -> None:
        """Drop a row without finalizing it (preemption): identical row
        compaction to :meth:`retire`, stats discarded."""
        self.retire(row)

    # ------------------------------------------------------------------
    # fault unwinding and row snapshots
    # ------------------------------------------------------------------
    def row_lengths(self, row: int) -> list[int]:
        """Per-layer live token counts of one row — capture these *before* a
        multi-write operation so :meth:`unwind_row` can roll it back."""
        return [cache.tables[row].length for cache in self.caches]

    def unwind_row(
        self, row: int, lengths_before: list[int], adjust_stats: bool = True
    ) -> int:
        """Roll back one row's partial appends to the captured lengths.

        The single unwind path shared by every append-style failure: a
        mid-join seed, a fault mid decode-step append, or a speculative
        verify round that died after ``append_block_row``.  Per layer: a row
        that had no tokens before releases its table outright (this also
        drops freshly mapped shared-prefix pages); otherwise the extra
        appended tokens are truncated and any trailing page a partially
        failed append allocated but never filled is released.  Returns the
        number of unwound token-appends (summed over layers); when
        ``adjust_stats`` the row's ``total_appended`` is decremented by it.

        Only *appends* are unwound — evictions (gather) are irreversible, so
        a step that may evict must be protected by :meth:`snapshot_row`
        instead.
        """
        unwound = 0
        ps = self.store.page_size
        for layer, cache in enumerate(self.caches):
            table = cache.tables[row]
            before = int(lengths_before[layer])
            if before == 0:
                if table.pages:
                    unwound += table.length
                    cache.pool.release_table(table)
                continue
            extra = table.length - before
            if extra > 0:
                cache.pool.truncate(table, extra)
                unwound += extra
            keep = pages_needed(table.end, ps)
            if len(table.pages) > keep:
                cache.pool.release(table.pages[keep:])
                table.pages = table.pages[:keep]
        if adjust_stats and unwound and row < len(self.stats):
            self.stats[row].total_appended -= unwound
        return unwound

    def snapshot_row(self, row: int) -> "_RowSnapshot":
        """Copy-on-write snapshot of one row's full per-step mutable state.

        Forks the row's page tables (retaining their pages, so subsequent
        writes copy-on-write into fresh pages and the snapshot content stays
        pristine — including int8 quantization parameters, which
        copy-on-write duplicates alongside the codes), deep-copies the row's
        eviction policy, and captures the step-scoped stats counters.  Every
        snapshot must be consumed by exactly one of :meth:`restore_row` or
        :meth:`discard_row_snapshot`, or its page references leak.
        """
        tables = []
        for cache in self.caches:
            fork = cache.tables[row].clone()
            cache.pool.retain(fork.pages)
            tables.append(fork)
        stats = self.stats[row]
        return _RowSnapshot(
            tables,
            copy.deepcopy(self.policies[row]),
            stats.total_appended,
            stats.total_evicted,
            list(self._step_lengths[row]),
        )

    def restore_row(self, row: int, snapshot: "_RowSnapshot") -> None:
        """Reinstate a row's state from :meth:`snapshot_row`, consuming it.

        The snapshot's forked tables become the live tables (its retained
        page references transfer), so a restored snapshot must **not** also
        be discarded.  Restoring replays the row to the exact pre-step state
        — the basis of the survivors-stay-bit-exact quarantine guarantee.
        """
        for cache, fork in zip(self.caches, snapshot.tables):
            cache.pool.release_table(cache.tables[row])
            cache.tables[row] = fork
        self.policies[row] = snapshot.policy
        stats = self.stats[row]
        stats.total_appended = snapshot.total_appended
        stats.total_evicted = snapshot.total_evicted
        self._step_lengths[row] = list(snapshot.step_lengths)
        self._qpos = None

    def discard_row_snapshot(self, snapshot: "_RowSnapshot") -> None:
        """Release an unused snapshot's page references (the success path)."""
        for cache, fork in zip(self.caches, snapshot.tables):
            cache.pool.release_table(fork)

    # ------------------------------------------------------------------
    # integrity auditing
    # ------------------------------------------------------------------
    def check_invariants(
        self, extra_tables_per_layer: list[list[PageTable]] | None = None
    ) -> list[str]:
        """Audit the store against this manager's complete ownership map.

        Active rows' tables plus ``extra_tables_per_layer`` (live forks held
        outside the manager — drafter snapshots, in-flight row snapshots)
        must account for every page reference alongside the registry's pins;
        inactive row slots must be empty.  Returns all violations (empty
        list = clean); see :meth:`BlockPool.check_invariants`.
        """
        violations: list[str] = []
        owners: list[list[PageTable]] = []
        for layer, cache in enumerate(self.caches):
            for idx in range(self.n_active, cache.max_batch):
                table = cache.tables[idx]
                if table.pages or table.length or table.offset:
                    violations.append(
                        f"layer {layer}: inactive row slot {idx} is not empty "
                        f"({len(table.pages)} pages, length {table.length})"
                    )
            tables = list(cache.tables[: self.n_active])
            if extra_tables_per_layer is not None:
                tables.extend(extra_tables_per_layer[layer])
            owners.append(tables)
        violations.extend(
            self.store.check_invariants(owners, self.registry.pinned_pages())
        )
        # Registry structure: parent chains intact, and (under wtinylfu)
        # SLRU segment membership in lockstep with the pinned chunk set.
        violations.extend(self.registry.audit())
        return violations

    # ------------------------------------------------------------------
    # decode phase
    # ------------------------------------------------------------------
    def layer_views(self) -> list[BatchedLayerView]:
        """Per-layer facades handed to ``DecoderBlock.decode_step_batch``."""
        return [BatchedLayerView(self, i) for i in range(self.n_layers)]

    def query_positions(self) -> np.ndarray:
        """Original position of each active sequence's next token, shape ``(R,)``."""
        if self._qpos is None:
            self._qpos = np.asarray(self.current_position, dtype=np.int64)
        return self._qpos

    def append_batch(self, layer_idx: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append one token per active row to one layer's cache."""
        self.caches[layer_idx].append_rows(self.n_active, k, v, self.query_positions())
        for stats in self.stats:
            stats.total_appended += 1

    def append_pages_shortfall(self) -> int:
        """How many pages the tightest layer pool is short of to run one
        decode step's appends.  Zero means the step cannot exhaust the pool;
        positive means the engine must reclaim or preempt first."""
        shortfall = 0
        reclaimable = self.registry.reclaimable_pages()
        for cache in self.caches:
            needed = cache.append_pages_needed(self.n_active)
            available = cache.pool.free_pages + reclaimable
            shortfall = max(shortfall, needed - available)
        return shortfall

    def attention_view_batch(
        self, layer_idx: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]:
        """``(keys, values, key_positions, query_positions, lengths, keys_rotated)``.

        All tensor outputs are padded to the batch's longest row; ``lengths``
        gives each row's live entry count.  Rows are bit-identical (within
        their live region) to the single-sequence attention view.
        """
        cache = self.caches[layer_idx]
        r = self.n_active
        rotated = self.positional_mode == "original" and self.rope_dims > 0
        keys, values, pos, lengths, max_len = cache.padded_batch(r, rotated)
        for i in range(r):
            self._step_lengths[i].append(int(lengths[i]))
        if self.positional_mode == "original":
            key_positions = pos
            query_positions = self.query_positions()
        else:
            key_positions = np.broadcast_to(
                np.arange(max_len), (r, self.n_heads, max_len)
            )
            query_positions = lengths - 1
        return keys, values, key_positions, query_positions, lengths, rotated

    def observe_batch(self, layer_idx: int, logits: np.ndarray, probs: np.ndarray) -> None:
        """Feed each row's exact-length logits/probs slice to its own policy."""
        cache = self.caches[layer_idx]
        for row in range(self.n_active):
            try:
                policy = self.policies[row]
                length = cache.tables[row].length
                selection = policy.step_selection(
                    layer_idx,
                    logits[row : row + 1, :, :length],
                    probs[row : row + 1, :, :length],
                    cache.positions_row(row),
                    self.generation_step[row] + 1,
                )
                if selection is None:
                    continue
                if getattr(policy, "shared_selection", False):
                    for idx in range(self.n_layers):
                        self._apply_row_selection(idx, row, selection)
                else:
                    self._apply_row_selection(layer_idx, row, selection)
            except Exception as exc:
                tag_fault_row(exc, row)
                raise

    def advance(self) -> None:
        """Mark the end of one batched decoding step for every active sequence."""
        for row in range(self.n_active):
            if self._step_lengths[row]:
                self.stats[row].record_step(self._step_lengths[row])
                self._step_lengths[row] = []
            self.generation_step[row] += 1
            self.current_position[row] += 1
        self._qpos = None

    # ------------------------------------------------------------------
    # speculative verify phase (single-row multi-token decode)
    # ------------------------------------------------------------------
    def row_verify_views(self, row: int) -> list[RowVerifyView]:
        """Per-layer verify facades for one row (see :class:`RowVerifyView`)."""
        return [RowVerifyView(self, i, row) for i in range(self.n_layers)]

    def append_block_row(self, layer_idx: int, row: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append ``S`` consecutive tokens to one row of one layer in one write.

        ``k``/``v`` have shape ``(S, heads, d_head)``; tokens land at the
        row's original positions ``current_position[row] ..  + S`` with eager
        RoPE rotation per token (bit-identical to appending sequentially).
        """
        cache = self.caches[layer_idx]
        s = k.shape[0]
        start = self.current_position[row]
        positions = np.arange(start, start + s)
        pos_ht = np.broadcast_to(positions, (self.n_heads, s))
        cache.pool.extend(
            cache.tables[row], k.transpose(1, 0, 2), v.transpose(1, 0, 2), pos_ht
        )
        self.stats[row].total_appended += s

    def verify_view_row(
        self, layer_idx: int, row: int, n_queries: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]:
        """Unbatched verify-pass view of one row (mirrors
        :meth:`repro.kvcache.manager.CacheManager.verify_view`)."""
        cache = self.caches[layer_idx]
        table = cache.tables[row]
        pool = cache.pool
        length = table.length
        lengths = np.arange(length - n_queries + 1, length + 1)
        rotated = self.positional_mode == "original" and self.rope_dims > 0
        keys = pool.rotated_view(table) if rotated else pool.keys_view(table)
        values = pool.values_view(table)
        if self.positional_mode == "original":
            key_positions = pool.positions_view(table)
            start = self.current_position[row]
            query_positions = np.arange(start, start + n_queries)
        else:
            key_positions = np.broadcast_to(np.arange(length), (self.n_heads, length))
            query_positions = lengths - 1
        return keys, values, key_positions, query_positions, lengths, rotated

    def commit_verify_row(self, row: int, n_committed: int, n_appended: int) -> None:
        """Finalize one row's verify round: truncate the rejected tail and
        advance that row's position/step counters by the committed count."""
        drop = n_appended - n_committed
        if drop < 0:
            raise ValueError("cannot commit more tokens than were appended")
        if drop:
            for cache in self.caches:
                cache.pool.truncate(cache.tables[row], drop)
        self.stats[row].record_backdated_steps(
            [cache.tables[row].length for cache in self.caches], n_committed
        )
        self.generation_step[row] += n_committed
        self.current_position[row] += n_committed
        self._qpos = None

    # ------------------------------------------------------------------
    def _apply_row_selection(self, layer_idx: int, row: int, selection: np.ndarray) -> None:
        evicted = self.caches[layer_idx].gather_row(row, selection)
        self.stats[row].total_evicted += evicted

    def cache_lengths(self, row: int) -> list[int]:
        """Current per-layer cache lengths of one sequence."""
        return [cache.tables[row].length for cache in self.caches]

    def pool_usage(self) -> dict:
        """Aggregate page-pool utilization (pages *and* bytes — see
        :meth:`repro.kvcache.paged.PagedKVStore.usage`) plus registry
        occupancy.

        Under the non-default ``"wtinylfu"`` admission policy an
        ``admission`` sub-dict carries the registry's sketch / segment /
        admission-decision counters; the default ``"lru"`` report stays
        byte-identical to the historical schema.
        """
        usage = self.store.usage()
        usage["registry_chunks"] = len(self.registry)
        if self.registry.admission_policy != "lru":
            usage["admission"] = self.registry.telemetry()
        return usage

    def prefetch_decode(self) -> int:
        """Bulk-restore the spilled pages of every active row before a decode
        step — one :meth:`repro.kvcache.offload._TieredMixin.restore_pages`
        call per layer, so the step's reads hit resident frames instead of
        issuing one restore per page access.  No-op (returns 0) on
        single-tier pools."""
        restored = 0
        for cache in self.caches:
            restore = getattr(cache.pool, "restore_pages", None)
            if restore is None:
                return 0
            pages: list[int] = []
            for table in cache.tables[: self.n_active]:
                pages.extend(table.pages)
            if pages:
                restored += restore(pages)
        return restored
