"""Batched per-sequence slab KV storage for the continuous-batching engine.

The serving engine keeps many in-flight sequences resident at once.  Storing
each sequence in its own :class:`~repro.kvcache.cache.LayerKVCache` would
force the batched attention step to re-stack (copy) every cache into one
contiguous tensor per decoding step, which is exactly the O(L) per-step cost
the slab layout was built to avoid.  Instead, :class:`BatchedLayerKVCache`
owns **one** slab of shape ``(max_batch, heads, capacity, d_head)`` in which
every row is an independent sequence with its own live length:

* ``append_rows`` writes one new token per active sequence at that
  sequence's own cursor (a ragged, per-row in-place write);
* ``gather_row`` compacts a single sequence's prefix when its eviction
  policy drops tokens — other rows are untouched;
* ``join_row`` / ``free_row`` implement a *persistent batch*: active
  sequences always occupy rows ``0..n_active-1``, so the attention step can
  take a zero-copy padded view ``slab[:R, :, :Lmax]`` of the whole batch.

Bit-exactness contract: every value stored here is produced by the same
per-token elementwise operations as the single-sequence cache (RoPE rotation
is per-element in the token axis), so the padded view's row ``b`` restricted
to ``lengths[b]`` entries is bit-identical to the slab of a sequence decoded
alone.  :class:`BatchedCacheManager` mirrors
:class:`~repro.kvcache.manager.CacheManager` — per-layer caches, positional
modes, eviction bookkeeping — but drives one policy *instance per sequence*
so that policy state (score accumulators, noise RNGs) evolves exactly as it
would in a dedicated single-sequence run.
"""

from __future__ import annotations

import numpy as np

from repro.core.policies import EvictionPolicy
from repro.kvcache.stats import CacheStats
from repro.models.positional import RopeTable, get_rope_table

__all__ = ["BatchedLayerKVCache", "BatchedCacheManager", "BatchedLayerView"]

_MIN_CAPACITY = 16


class BatchedLayerKVCache:
    """Key/value storage for one decoder layer shared by a batch of sequences.

    Parameters
    ----------
    max_batch:
        Number of sequence rows the slab holds.
    n_heads, d_head:
        Attention geometry (shared by all sequences).
    capacity:
        Initial number of token slots per row; grows geometrically on demand.
    dtype:
        Storage dtype of keys/values.
    rope_dims:
        When positive, maintain a rotated-key slab alongside the raw keys.
        Unlike the lazy single-sequence cache, rotation here is *eager*:
        tokens are rotated at join/append time (rotation is elementwise per
        token, so eager and lazy rotation are bit-identical) which keeps every
        row fully rotated and compaction-safe at all times.
    """

    def __init__(
        self,
        max_batch: int,
        n_heads: int,
        d_head: int,
        capacity: int = _MIN_CAPACITY,
        dtype: np.dtype | str = np.float64,
        rope_dims: int = 0,
        rope_table: RopeTable | None = None,
    ):
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self.dtype = np.dtype(dtype)
        self.rope_dims = int(rope_dims)
        self._rope_table = rope_table
        if self.rope_dims > 0 and rope_table is None:
            self._rope_table = get_rope_table(self.rope_dims)
        cap = max(int(capacity), _MIN_CAPACITY)
        # np.zeros (not empty): padded slots of the position slab must hold
        # benign values because ALiBi bias and RoPE table sizing read the
        # padded view before masking.
        self._k = np.zeros((max_batch, n_heads, cap, d_head), dtype=self.dtype)
        self._v = np.zeros((max_batch, n_heads, cap, d_head), dtype=self.dtype)
        self._pos = np.zeros((max_batch, n_heads, cap), dtype=np.int64)
        self._k_rot = (
            np.zeros((max_batch, n_heads, cap, d_head), dtype=self.dtype)
            if self.rope_dims > 0
            else None
        )
        #: Live token count of every row (rows beyond the active batch are 0).
        self.lengths = np.zeros(max_batch, dtype=np.int64)
        #: First live slot of every row.  Suffix evictions (sliding-window
        #: policies dropping the oldest tokens) advance the start instead of
        #: compacting the slab — an O(1) pointer bump replacing an O(L·H·d)
        #: copy on the per-step hot path.  Rows are lazily realigned to a
        #: common start when the padded batch view needs it.
        self.starts = np.zeros(max_batch, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def max_batch(self) -> int:
        return self._k.shape[0]

    @property
    def n_heads(self) -> int:
        return self._k.shape[1]

    @property
    def capacity(self) -> int:
        return self._k.shape[2]

    @property
    def d_head(self) -> int:
        return self._k.shape[3]

    # ------------------------------------------------------------------
    def ensure_capacity(self, needed: int) -> None:
        """Grow every slab so each row can hold ``needed`` token slots."""
        if needed <= self.capacity:
            return
        new_cap = max(needed, 2 * self.capacity)
        used = int((self.starts + self.lengths).max())

        def grown(slab: np.ndarray | None, trailing: tuple[int, ...]) -> np.ndarray | None:
            if slab is None:
                return None
            fresh = np.zeros(
                (self.max_batch, self.n_heads, new_cap) + trailing, dtype=slab.dtype
            )
            fresh[:, :, :used] = slab[:, :, :used]
            return fresh

        self._k = grown(self._k, (self.d_head,))
        self._v = grown(self._v, (self.d_head,))
        self._pos = grown(self._pos, ())
        self._k_rot = grown(self._k_rot, (self.d_head,))

    # ------------------------------------------------------------------
    def join_row(
        self, row: int, keys: np.ndarray, values: np.ndarray, positions: np.ndarray
    ) -> None:
        """Seed row ``row`` from prompt-phase tensors of shape ``(1, H, T, d)``.

        ``positions`` has shape ``(1, H, T)`` (original token positions).
        """
        keys = np.asarray(keys)
        if keys.ndim != 4 or keys.shape[0] != 1:
            raise ValueError(f"join_row expects (1, H, T, d) keys, got {keys.shape}")
        t = keys.shape[2]
        self.ensure_capacity(t)
        self._k[row, :, :t] = keys[0]
        self._v[row, :, :t] = np.asarray(values)[0]
        self._pos[row, :, :t] = np.asarray(positions, dtype=np.int64)[0]
        if self._k_rot is not None:
            self._k_rot[row, :, :t] = self._rope_table.rotate(keys, positions)[0]
        self.starts[row] = 0
        self.lengths[row] = t

    def free_row(self, row: int, last: int) -> None:
        """Retire ``row`` by moving row ``last`` into it (persistent batch).

        Moving a sequence to another storage row is pure bookkeeping — the
        stored values are copied bit-for-bit.  Stale content left in freed or
        shrunk slots is never read: padded views are always masked (or sliced
        to exact lengths) before use.
        """
        if row != last:
            start = int(self.starts[last])
            stop = start + int(self.lengths[last])
            self._k[row, :, start:stop] = self._k[last, :, start:stop]
            self._v[row, :, start:stop] = self._v[last, :, start:stop]
            self._pos[row, :, start:stop] = self._pos[last, :, start:stop]
            if self._k_rot is not None:
                self._k_rot[row, :, start:stop] = self._k_rot[last, :, start:stop]
            self.starts[row] = start
            self.lengths[row] = int(self.lengths[last])
        self.starts[last] = 0
        self.lengths[last] = 0

    def append_rows(
        self, n_active: int, k: np.ndarray, v: np.ndarray, positions: np.ndarray
    ) -> None:
        """Append one token per active row at each row's own cursor.

        ``k``/``v`` have shape ``(R, H, d)`` and ``positions`` shape ``(R,)``
        with the original position of each row's new token.
        """
        expected = (n_active, self.n_heads, self.d_head)
        if k.shape != expected:
            raise ValueError(f"append_rows expects shape {expected}, got {k.shape}")
        cursors = self.starts[:n_active] + self.lengths[:n_active]
        needed = int(cursors.max(initial=0)) + 1
        if needed > self.capacity:
            self.ensure_capacity(needed)
        positions = np.asarray(positions, dtype=np.int64)
        k_rot = None
        if self._k_rot is not None:
            # Per-row positions; elementwise, so each row is bit-identical to
            # the single-sequence cache's rotate_uniform at that position.
            k_rot = self._rope_table.rotate(k, positions[:, None])
        first = int(cursors[0])
        if n_active == 1 or bool((cursors == first).all()):
            # Steady state: rows advance in lockstep, one slice write per slab.
            self._k[:n_active, :, first] = k
            self._v[:n_active, :, first] = v
            self._pos[:n_active, :, first] = positions[:, None]
            if k_rot is not None:
                self._k_rot[:n_active, :, first] = k_rot
        else:
            for i in range(n_active):
                cursor = int(cursors[i])
                self._k[i, :, cursor] = k[i]
                self._v[i, :, cursor] = v[i]
                self._pos[i, :, cursor] = positions[i]
                if k_rot is not None:
                    self._k_rot[i, :, cursor] = k_rot[i]
        self.lengths[:n_active] += 1

    # ------------------------------------------------------------------
    def gather_row(self, row: int, indices: np.ndarray) -> int:
        """Retain only the entries of ``row`` selected by ``indices``.

        ``indices`` has shape ``(1, H, K)`` or ``(H, K)``, ascending per head,
        relative to the row's live region.  Returns the number of evicted
        entries.  A *suffix* selection — every head keeping exactly the
        newest ``K`` tokens, the steady state of sliding-window policies —
        advances the row's start pointer instead of copying the slab.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim == 3:
            indices = indices[0]
        length = int(self.lengths[row])
        if indices.shape[0] != self.n_heads:
            raise ValueError(
                f"gather_row expects ({self.n_heads}, K) indices, got {indices.shape}"
            )
        if indices.size and (indices.min() < 0 or indices.max() >= length):
            raise IndexError("gather_row indices out of range")
        k = indices.shape[-1]
        dropped = length - k
        if bool((indices == np.arange(dropped, length)).all()):
            # Identity (dropped == 0) or pure suffix: O(1) pointer bump.
            self.starts[row] += dropped
            self.lengths[row] = k
            return dropped
        start = int(self.starts[row])
        offsets = (np.arange(self.n_heads) * self.capacity)[:, None]
        gidx = (offsets + start + indices).reshape(-1)

        def compact(slab: np.ndarray | None) -> None:
            if slab is None:
                return
            view = slab[row]
            if view.ndim == 2:
                taken = view.reshape(-1).take(gidx)
                view[:, start : start + k] = taken.reshape(self.n_heads, k)
            else:
                taken = view.reshape(self.n_heads * self.capacity, self.d_head).take(
                    gidx, axis=0
                )
                view[:, start : start + k] = taken.reshape(self.n_heads, k, self.d_head)

        compact(self._k)
        compact(self._v)
        compact(self._pos)
        # Rotation depends only on the preserved original position, so the
        # (always fully rotated) rotated slab stays valid under compaction.
        compact(self._k_rot)
        self.lengths[row] = k
        return dropped

    # ------------------------------------------------------------------
    def _realign(self, n_active: int) -> int:
        """Shift rows so every active row shares one start; return that start.

        Rows usually advance their starts in lockstep (same budget, same
        eviction cadence), so this is a no-op on the steady-state hot path.
        Divergence appears when a sequence joins mid-stream or rows evict
        different amounts; the lagging rows are then moved once, each an
        O(live) copy comparable to a single compaction.
        """
        if n_active == 0:
            return 0
        starts = self.starts[:n_active]
        target = int(starts.min())
        if int(starts.max()) == target:
            return target
        for row in range(n_active):
            start = int(starts[row])
            if start == target:
                continue
            length = int(self.lengths[row])
            for slab in (self._k, self._v, self._pos, self._k_rot):
                if slab is None:
                    continue
                # Leftward move; copy the source to be safe under overlap.
                slab[row, :, target : target + length] = slab[
                    row, :, start : start + length
                ].copy()
            self.starts[row] = target
        return target

    def padded_views(
        self, n_active: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Zero-copy padded views over the active rows.

        Returns ``(keys, values, positions, max_len)`` where each array is a
        slab view of shape ``(R, H, max_len, ...)``; row ``b`` is valid up to
        ``lengths[b]`` entries.  ``keys`` are the *raw* (unrotated) keys; use
        :meth:`rotated_padded` for the RoPE-rotated slab.  Rows are realigned
        to a common start first (a steady-state no-op).
        """
        start = self._realign(n_active)
        max_len = int(self.lengths[:n_active].max(initial=0))
        stop = start + max_len
        return (
            self._k[:n_active, :, start:stop],
            self._v[:n_active, :, start:stop],
            self._pos[:n_active, :, start:stop],
            max_len,
        )

    def rotated_padded(self, n_active: int, max_len: int) -> np.ndarray:
        """Padded view of the rotated-key slab (requires ``rope_dims > 0``).

        Call after :meth:`padded_views` (shares its realigned common start).
        """
        if self._k_rot is None:
            raise RuntimeError("rotated-key slab disabled (rope_dims == 0)")
        start = int(self.starts[:n_active].min()) if n_active else 0
        return self._k_rot[:n_active, :, start : start + max_len]

    def positions_row(self, row: int) -> np.ndarray:
        """Original positions of row ``row``'s live entries, shape ``(1, H, L)``."""
        start = int(self.starts[row])
        stop = start + int(self.lengths[row])
        return self._pos[row : row + 1, :, start:stop]


class BatchedLayerView:
    """Per-layer facade of the batched manager, mirroring ``LayerCacheView``."""

    def __init__(self, manager: "BatchedCacheManager", layer_idx: int):
        self.manager = manager
        self.layer_idx = layer_idx

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        self.manager.append_batch(self.layer_idx, k, v)

    def attention_view(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]:
        return self.manager.attention_view_batch(self.layer_idx)

    def observe(self, logits: np.ndarray, probs: np.ndarray) -> None:
        self.manager.observe_batch(self.layer_idx, logits, probs)


class BatchedCacheManager:
    """Owns per-layer batched KV slabs and one eviction policy per sequence.

    The lifecycle mirrors :class:`~repro.kvcache.manager.CacheManager`, but
    sequences ``join`` and ``retire`` independently and every per-sequence
    quantity (policy instance, :class:`CacheStats`, position cursor,
    generation step) lives in a row-indexed list that is compacted together
    with the slab rows.
    """

    def __init__(
        self,
        n_layers: int,
        n_heads: int,
        d_head: int,
        max_batch: int,
        positional_mode: str = "original",
        dtype: np.dtype | str | None = None,
        rope_dims: int = 0,
    ):
        if positional_mode not in ("original", "new"):
            raise ValueError(f"unknown positional mode {positional_mode!r}")
        self.n_layers = n_layers
        self.n_heads = n_heads
        self.d_head = d_head
        self.max_batch = max_batch
        self.positional_mode = positional_mode
        self.dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
        # Rotated-key caching is only sound for stable original positions —
        # same rule as the single-sequence manager.
        self.rope_dims = int(rope_dims) if positional_mode == "original" else 0
        self.caches = [
            BatchedLayerKVCache(
                max_batch, n_heads, d_head, dtype=self.dtype, rope_dims=self.rope_dims
            )
            for _ in range(n_layers)
        ]
        self.n_active = 0
        self.policies: list[EvictionPolicy] = []
        self.stats: list[CacheStats] = []
        self.current_position: list[int] = []
        self.generation_step: list[int] = []
        self.prompt_len: list[int] = []
        self._step_lengths: list[list[int]] = []
        self._qpos: np.ndarray | None = None

    # ------------------------------------------------------------------
    # sequence lifecycle
    # ------------------------------------------------------------------
    def join(
        self,
        prompt_kv: list[tuple[np.ndarray, np.ndarray]],
        prompt_attn: list[np.ndarray],
        prompt_logits: list[np.ndarray],
        max_new_tokens: int,
        policy: EvictionPolicy,
    ) -> int:
        """Admit one sequence: seed its row from prompt tensors, run the
        policy's prompt-phase eviction, and return the assigned row index."""
        if self.n_active >= self.max_batch:
            raise RuntimeError(f"batch is full ({self.max_batch} rows)")
        if len(prompt_kv) != self.n_layers:
            raise ValueError(
                f"expected {self.n_layers} layers of prompt KV, got {len(prompt_kv)}"
            )
        keys0 = prompt_kv[0][0]
        if keys0.shape[0] != 1:
            raise ValueError("join admits one sequence at a time (batch dim must be 1)")
        prompt_len = keys0.shape[2]
        row = self.n_active

        policy.setup(self.n_layers, self.n_heads, 1, prompt_len, max_new_tokens)
        needed = prompt_len + max_new_tokens + 1
        positions = np.arange(prompt_len)
        pos_bht = np.broadcast_to(positions, (1, self.n_heads, prompt_len))
        for layer_idx, (keys, values) in enumerate(prompt_kv):
            cache = self.caches[layer_idx]
            cache.ensure_capacity(needed)
            cache.join_row(row, keys, values, pos_bht)

        stats = CacheStats(
            n_layers=self.n_layers,
            n_heads=self.n_heads,
            d_head=self.d_head,
            batch_size=1,
            prompt_len=prompt_len,
        )
        stats.total_appended += prompt_len * self.n_layers
        self.policies.append(policy)
        self.stats.append(stats)
        self.current_position.append(prompt_len)
        self.generation_step.append(0)
        self.prompt_len.append(prompt_len)
        self._step_lengths.append([])
        self.n_active += 1

        shared_selection: np.ndarray | None = None
        for layer_idx in range(self.n_layers):
            selection = policy.initial_selection(
                layer_idx, prompt_attn[layer_idx], prompt_logits[layer_idx], positions
            )
            if selection is None:
                continue
            if getattr(policy, "shared_selection", False):
                shared_selection = selection
            else:
                self._apply_row_selection(layer_idx, row, selection)
        if shared_selection is not None:
            for layer_idx in range(self.n_layers):
                self._apply_row_selection(layer_idx, row, shared_selection)
        return row

    def retire(self, row: int) -> CacheStats:
        """Remove a finished sequence; the last active row moves into its slot.

        Returns the sequence's :class:`CacheStats`.  Callers tracking row
        assignments must note that row ``n_active - 1`` (if different) now
        lives at ``row``.
        """
        if not (0 <= row < self.n_active):
            raise IndexError(f"row {row} out of range (n_active={self.n_active})")
        last = self.n_active - 1
        stats = self.stats[row]
        for cache in self.caches:
            cache.free_row(row, last)
        for values in (
            self.policies,
            self.stats,
            self.current_position,
            self.generation_step,
            self.prompt_len,
            self._step_lengths,
        ):
            values[row] = values[last]
            values.pop()
        self.n_active -= 1
        self._qpos = None
        return stats

    # ------------------------------------------------------------------
    # decode phase
    # ------------------------------------------------------------------
    def layer_views(self) -> list[BatchedLayerView]:
        """Per-layer facades handed to ``DecoderBlock.decode_step_batch``."""
        return [BatchedLayerView(self, i) for i in range(self.n_layers)]

    def query_positions(self) -> np.ndarray:
        """Original position of each active sequence's next token, shape ``(R,)``."""
        if self._qpos is None:
            self._qpos = np.asarray(self.current_position, dtype=np.int64)
        return self._qpos

    def append_batch(self, layer_idx: int, k: np.ndarray, v: np.ndarray) -> None:
        self.caches[layer_idx].append_rows(self.n_active, k, v, self.query_positions())
        for stats in self.stats:
            stats.total_appended += 1

    def attention_view_batch(
        self, layer_idx: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]:
        """``(keys, values, key_positions, query_positions, lengths, keys_rotated)``.

        All tensor outputs are padded to the batch's longest row; ``lengths``
        gives each row's live entry count.  Rows are bit-identical (within
        their live region) to the single-sequence attention view.
        """
        cache = self.caches[layer_idx]
        r = self.n_active
        keys_raw, values, pos, max_len = cache.padded_views(r)
        lengths = cache.lengths[:r].copy()
        for i in range(r):
            self._step_lengths[i].append(int(lengths[i]))
        keys_rotated = False
        if self.positional_mode == "original":
            key_positions = pos
            query_positions = self.query_positions()
            if self.rope_dims > 0:
                keys = cache.rotated_padded(r, max_len)
                keys_rotated = True
            else:
                keys = keys_raw
        else:
            keys = keys_raw
            key_positions = np.broadcast_to(
                np.arange(max_len), (r, self.n_heads, max_len)
            )
            query_positions = lengths - 1
        return keys, values, key_positions, query_positions, lengths, keys_rotated

    def observe_batch(self, layer_idx: int, logits: np.ndarray, probs: np.ndarray) -> None:
        """Feed each row's exact-length logits/probs slice to its own policy."""
        cache = self.caches[layer_idx]
        for row in range(self.n_active):
            policy = self.policies[row]
            length = int(cache.lengths[row])
            selection = policy.step_selection(
                layer_idx,
                logits[row : row + 1, :, :length],
                probs[row : row + 1, :, :length],
                cache.positions_row(row),
                self.generation_step[row] + 1,
            )
            if selection is None:
                continue
            if getattr(policy, "shared_selection", False):
                for idx in range(self.n_layers):
                    self._apply_row_selection(idx, row, selection)
            else:
                self._apply_row_selection(layer_idx, row, selection)

    def advance(self) -> None:
        """Mark the end of one batched decoding step for every active sequence."""
        for row in range(self.n_active):
            if self._step_lengths[row]:
                self.stats[row].record_step(self._step_lengths[row])
                self._step_lengths[row] = []
            self.generation_step[row] += 1
            self.current_position[row] += 1
        self._qpos = None

    # ------------------------------------------------------------------
    def _apply_row_selection(self, layer_idx: int, row: int, selection: np.ndarray) -> None:
        evicted = self.caches[layer_idx].gather_row(row, selection)
        self.stats[row].total_evicted += evicted

    def cache_lengths(self, row: int) -> list[int]:
        """Current per-layer cache lengths of one sequence."""
        return [int(cache.lengths[row]) for cache in self.caches]
