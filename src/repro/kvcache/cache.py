"""Per-layer key/value cache: a thin view over the paged block-pool store.

Keys are stored *unrotated* (before RoPE) together with the original position
of every token, so the attention step can apply either the original positional
information (Keyformer (Org Pos)) or a contiguous renumbering
(Keyformer (New Pos)) at read time.  Because eviction policies operate per
attention head, every head of a layer may retain a different set of tokens:
the logical layout is ``(batch, heads, length, d_head)`` with per-head
position arrays.

Physically, storage lives in a :class:`~repro.kvcache.paged.BlockPool` of
fixed-size pages shared with every other sequence on the same layer; this
class only holds one :class:`~repro.kvcache.paged.PageTable` per batch row
and translates the historical slab API (``append`` / ``gather`` /
``rotated_keys`` / ``reorder``) into page-table operations.  The single
implementation of append/grow/gather/rotate is the pool's — the batched
serving cache (:mod:`repro.kvcache.batch`) is a view over the same code.

Two properties of the old slab design are preserved by construction:

* a solo sequence's pages are allocated as one ascending run, so ``keys`` /
  ``values`` / ``positions`` are zero-copy pool views (contiguous token
  axis) exactly like the old slab prefix;
* rotated keys (RoPE at original positions) are maintained *eagerly* by the
  pool — rotation is elementwise per token, so eager and the old lazy
  rotation are bit-identical — and eviction compacts the rotated pages with
  the same indices, keeping decode free of per-step O(L) re-rotation.

``reorder`` (beam search) duplicates page tables instead of copying slabs:
the duplicated rows share pages until their first divergent write, at which
point the pool's copy-on-write gives each beam a private page.
"""

from __future__ import annotations

import numpy as np

from repro.kvcache.paged import (
    DEFAULT_PAGE_SIZE,
    BlockPool,
    PageTable,
    pages_needed,
    resolve_pool_class,
)
from repro.models.positional import RopeTable

__all__ = ["LayerKVCache"]


class LayerKVCache:
    """Key/value storage for one decoder layer.

    Parameters
    ----------
    keys, values:
        Initial contents of shape ``(batch, heads, length, d_head)``.
    positions:
        Original token positions of shape ``(batch, heads, length)``.
    dtype:
        Storage/compute dtype; defaults to the dtype of ``keys`` when it is a
        floating type, otherwise ``float64``.
    capacity:
        Token slots to reserve per sequence up front (rounded up to whole
        pages).  Defaults to the initial length; more pages are allocated
        whenever ``append`` runs out of room.
    rope_dims:
        When positive, maintain a rotated-key slab (RoPE applied at original
        positions) alongside the raw keys.
    rope_table:
        Optional shared :class:`RopeTable`; defaults to the process-wide table
        for ``rope_dims``.
    pool:
        Optional shared :class:`BlockPool` to store pages in (the cache
        manager passes one per layer).  When omitted a private growable pool
        is created — the standalone behaviour of the historical slab cache.
    kv_dtype:
        Page storage format for a privately created pool: ``None`` (default)
        stores the compute dtype bit-exactly, ``"int8"`` stores quantized
        pages (see :mod:`repro.kvcache.quant`).  Ignored when ``pool`` is
        passed — the pool's own format wins.
    """

    def __init__(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        positions: np.ndarray,
        dtype: np.dtype | str | None = None,
        capacity: int | None = None,
        rope_dims: int = 0,
        rope_table: RopeTable | None = None,
        pool: BlockPool | None = None,
        page_size: int | None = None,
        kv_dtype: str | None = None,
    ):
        keys = np.asarray(keys)
        values = np.asarray(values)
        positions = np.asarray(positions, dtype=np.int64)
        if dtype is None:
            dtype = keys.dtype if np.issubdtype(keys.dtype, np.floating) else np.float64
        self.dtype = np.dtype(dtype)
        if keys.shape != values.shape:
            raise ValueError(f"keys/values shape mismatch: {keys.shape} vs {values.shape}")
        if keys.ndim != 4:
            raise ValueError(f"expected (batch, heads, length, d_head) keys, got {keys.shape}")
        if positions.shape != keys.shape[:3]:
            raise ValueError(
                f"positions shape {positions.shape} must match {keys.shape[:3]}"
            )

        b, h, t, d = keys.shape
        self.rope_dims = int(rope_dims)
        cap = max(int(capacity) if capacity is not None else t, t, 1)
        if pool is None:
            ps = page_size or DEFAULT_PAGE_SIZE
            pool = resolve_pool_class(kv_dtype)(
                h,
                d,
                page_size=ps,
                n_pages=max(b, 1) * max(pages_needed(cap, ps), 1) + 1,
                dtype=self.dtype,
                rope_dims=self.rope_dims,
                rope_table=rope_table,
                growable=True,
            )
        self._pool = pool

        if keys.dtype != self.dtype:
            keys = keys.astype(self.dtype)
        if values.dtype != self.dtype:
            values = values.astype(self.dtype)
        self._tables: list[PageTable] = []
        for row in range(b):
            table = PageTable()
            pool.extend(table, keys[row], values[row], positions[row], reserve_tokens=cap)
            self._tables.append(table)

        # Dense materializations are cached per mutation epoch so repeated
        # property reads within one decoding step cost one resolve at most.
        self._version = 0
        self._dense: dict[str, np.ndarray] = {}
        self._dense_version = -1

        self.total_appended = t
        self.total_evicted = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_prompt(
        cls,
        keys: np.ndarray,
        values: np.ndarray,
        positions: np.ndarray | None = None,
        **kwargs,
    ) -> "LayerKVCache":
        """Build a cache from prompt-phase keys/values of shape ``(B, H, T, d)``.

        ``positions`` defaults to ``0..T-1`` replicated across batch and heads.
        Extra keyword arguments (``dtype``, ``capacity``, ``rope_dims``, ...)
        are forwarded to the constructor.
        """
        keys = np.asarray(keys)
        b, h, t, _ = keys.shape
        if positions is None:
            positions = np.arange(t)
        positions = np.asarray(positions, dtype=np.int64)
        if positions.ndim == 1:
            positions = np.broadcast_to(positions, (b, h, t))
        return cls(keys, np.asarray(values), positions, **kwargs)

    @classmethod
    def empty(cls, batch_size: int, n_heads: int, d_head: int, **kwargs) -> "LayerKVCache":
        """An empty cache (used when decoding starts without a prompt)."""
        return cls(
            np.zeros((batch_size, n_heads, 0, d_head)),
            np.zeros((batch_size, n_heads, 0, d_head)),
            np.zeros((batch_size, n_heads, 0), dtype=np.int64),
            **kwargs,
        )

    @classmethod
    def map_tables(
        cls, pool: BlockPool, tables: list[PageTable], rope_dims: int = 0
    ) -> "LayerKVCache":
        """A cache whose rows *map* existing page tables instead of copying.

        Used by the speculative drafter to start from the target sequence's
        prompt pages: each row clones a source table and retains its live
        pages (a refcount bump), so drafter and target co-own the physical
        prompt KV until the drafter's first divergent write (its prompt-phase
        eviction, or an append into the shared boundary page), when
        copy-on-write gives the drafter a private page.  Only pages covering
        live tokens are mapped — the source's reserve-capacity tail stays
        exclusively its own, so its in-place appends need no copy.
        """
        cache = cls.__new__(cls)
        cache.dtype = pool.dtype
        cache.rope_dims = int(rope_dims)
        cache._pool = pool
        cache._tables = []
        for table in tables:
            clone = table.clone()
            live_pages = pages_needed(clone.end, pool.page_size)
            del clone.pages[live_pages:]
            pool.retain(clone.pages)
            cache._tables.append(clone)
        cache._version = 0
        cache._dense = {}
        cache._dense_version = -1
        cache.total_appended = cache._tables[0].length if cache._tables else 0
        cache.total_evicted = 0
        return cache

    # ------------------------------------------------------------------
    def _resolve(self, name: str) -> np.ndarray:
        """Dense ``(B, H, L, ...)`` materialization of one pool slab.

        For a single-row cache on physically contiguous pages this is a
        zero-copy pool view; otherwise a page gather assembles the rows.
        """
        if self._dense_version != self._version:
            self._dense = {}
            self._dense_version = self._version
        cached = self._dense.get(name)
        if cached is not None:
            return cached
        pool = self._pool
        reader = {
            "keys": pool.keys_view,
            "values": pool.values_view,
            "positions": pool.positions_view,
            "rotated": pool.rotated_view,
        }[name]
        rows = [reader(table) for table in self._tables]
        if len(rows) == 1:
            dense = rows[0][None]
        else:
            dense = np.stack(rows)
        if name == "positions":
            dense = dense.view()
            dense.flags.writeable = False
        self._dense[name] = dense
        return dense

    @property
    def keys(self) -> np.ndarray:
        """Live (unrotated) keys, shape ``(B, H, L, d)`` — a pool view when
        the sequence's pages are contiguous."""
        return self._resolve("keys")

    @property
    def values(self) -> np.ndarray:
        """Live values, shape ``(B, H, L, d)``."""
        return self._resolve("values")

    @property
    def positions(self) -> np.ndarray:
        """Live original positions, shape ``(B, H, L)`` (read-only)."""
        return self._resolve("positions")

    @property
    def batch_size(self) -> int:
        """Number of sequence rows (page tables) in this cache."""
        return len(self._tables)

    @property
    def n_heads(self) -> int:
        """Attention heads of the backing pool."""
        return self._pool.n_heads

    @property
    def length(self) -> int:
        """Number of cached tokens (per head)."""
        return self._tables[0].length

    @property
    def capacity(self) -> int:
        """Allocated token slots per sequence (whole pages)."""
        table = self._tables[0]
        return table.allocated(self._pool.page_size) - table.offset

    @property
    def d_head(self) -> int:
        """Per-head feature dimension of the backing pool."""
        return self._pool.d_head

    @property
    def page_size(self) -> int:
        """Tokens per KV page of the backing pool."""
        return self._pool.page_size

    @property
    def pool(self) -> BlockPool:
        """The block pool this cache stores its pages in."""
        return self._pool

    @property
    def tables(self) -> list[PageTable]:
        """Per-row page tables (row order matches the batch dimension)."""
        return self._tables

    def __len__(self) -> int:
        return self._tables[0].length

    def nbytes(self, dtype_bytes: int | None = None) -> int:
        """Resident size of the cached keys+values.

        By default this asks the backing pool what a cached token actually
        costs (``BlockPool.kv_token_nbytes``): the storage dtype's item size
        for a full-precision pool, int8 codes plus amortized per-page scales
        for a quantized one.  (The historical default silently assumed fp16.)
        Pass an explicit ``dtype_bytes`` to model a different deployment
        dtype instead.
        """
        if dtype_bytes is None:
            return int(self.batch_size * self.length * self._pool.kv_token_nbytes())
        return 2 * self.batch_size * self.n_heads * self.length * self.d_head * dtype_bytes

    # ------------------------------------------------------------------
    def append(self, k: np.ndarray, v: np.ndarray, position: int) -> None:
        """Append the key/value of a new token at original position ``position``.

        ``k`` and ``v`` have shape ``(batch, heads, d_head)``.  This is an
        in-place page write; a new page is allocated only on a page boundary.
        """
        k = np.asarray(k)
        v = np.asarray(v)
        expected = (self.batch_size, self.n_heads, self.d_head)
        if k.shape != expected:
            raise ValueError(f"append expects shape {expected}, got {k.shape}")
        if v.shape != expected:
            raise ValueError(f"append expects value shape {expected}, got {v.shape}")
        for row, table in enumerate(self._tables):
            self._pool.append(table, k[row], v[row], int(position))
        self._version += 1
        self.total_appended += 1

    # ------------------------------------------------------------------
    def rotated_keys(self) -> np.ndarray:
        """Live keys rotated by their *original* positions, shape ``(B, H, L, d)``.

        The pool maintains the rotated pages eagerly (one elementwise
        rotation per appended token — bit-identical to rotating lazily), so
        this is a plain materialization.
        """
        return self._resolve("rotated")

    # ------------------------------------------------------------------
    @staticmethod
    def _is_identity(indices: np.ndarray, length: int) -> bool:
        if indices.shape[-1] != length:
            return False
        return bool((indices == np.arange(length)).all())

    def gather(self, indices: np.ndarray) -> None:
        """Retain only the entries selected by ``indices`` of shape ``(B, H, K)``.

        Indices must be sorted ascending per head so chronological order inside
        the cache is preserved.  An identity selection is a no-op and a pure
        suffix selection is an O(1) page-table bump; anything else compacts
        the pages in place (copy-on-write when any page is shared).
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim == 1:
            indices = np.broadcast_to(indices, (self.batch_size, self.n_heads, indices.size))
        if indices.shape[:2] != (self.batch_size, self.n_heads):
            raise ValueError(
                f"indices shape {indices.shape} incompatible with cache "
                f"({self.batch_size}, {self.n_heads}, ...)"
            )
        length = self.length
        if indices.size and (indices.min() < 0 or indices.max() >= length):
            raise IndexError("gather indices out of range")
        if self._is_identity(indices, length):
            return
        evicted = 0
        for row, table in enumerate(self._tables):
            evicted = self._pool.gather(table, indices[row])
        self._version += 1
        self.total_evicted += max(evicted, 0)

    def truncate(self, n: int) -> None:
        """Drop the last ``n`` tokens of every row (speculative rollback).

        The verify pass appends the whole draft block optimistically; rejected
        tokens are rolled back here — an O(1) length decrement plus a refcount
        drop for trailing pages that no longer hold live tokens.
        """
        if n == 0:
            return
        for table in self._tables:
            self._pool.truncate(table, n)
        self._version += 1

    def extend(self, keys: np.ndarray, values: np.ndarray, positions: np.ndarray) -> None:
        """Bulk-append a block of tokens to every row.

        ``keys``/``values`` have shape ``(batch, heads, T, d_head)`` and
        ``positions`` shape ``(batch, heads, T)`` — the multi-token write of
        the speculative verify pass (one page-span write per slab, eager
        rotation included, exactly like seeding from a prompt).
        """
        keys = np.asarray(keys)
        values = np.asarray(values)
        positions = np.asarray(positions, dtype=np.int64)
        t = keys.shape[2]
        if t == 0:
            return
        for row, table in enumerate(self._tables):
            self._pool.extend(table, keys[row], values[row], positions[row])
        self._version += 1
        self.total_appended += t

    # ------------------------------------------------------------------
    def fork_tables(self) -> list[PageTable]:
        """Snapshot every row's page table, retaining the pages.

        The clones co-own the physical pages (refcount bump); hand them back
        through :meth:`restore_tables` to rewind, or release each via
        ``pool.release_table`` to discard the snapshot.  The speculative
        drafter snapshots before consuming each unverified draft token so a
        rejected draft can be rolled back without replaying the cache.
        """
        forked = []
        for table in self._tables:
            clone = table.clone()
            self._pool.retain(clone.pages)
            forked.append(clone)
        return forked

    def restore_tables(self, tables: list[PageTable]) -> None:
        """Adopt snapshot ``tables`` from :meth:`fork_tables`, releasing the
        current ones.  Ownership transfers to the cache — a snapshot can be
        restored at most once."""
        if len(tables) != len(self._tables):
            raise ValueError(
                f"snapshot has {len(tables)} rows, cache has {len(self._tables)}"
            )
        for table in self._tables:
            self._pool.release_table(table)
        self._tables = list(tables)
        self._version += 1

    def discard_tables(self, tables: list[PageTable]) -> None:
        """Release an unused snapshot from :meth:`fork_tables`."""
        for table in tables:
            self._pool.release_table(table)

    def reorder(self, batch_indices: np.ndarray) -> None:
        """Reorder (or duplicate) the batch dimension — used by beam search.

        Pure page-table bookkeeping: duplicated rows share pages (refcount
        bumped) until copy-on-write splits them at the first divergent write.
        """
        batch_indices = np.asarray(batch_indices, dtype=np.int64)
        if batch_indices.size and (
            batch_indices.min() < 0 or batch_indices.max() >= self.batch_size
        ):
            raise IndexError("reorder indices out of range")
        fresh = []
        for idx in batch_indices:
            table = self._tables[int(idx)].clone()
            self._pool.retain(table.pages)
            fresh.append(table)
        for table in self._tables:
            self._pool.release_table(table)
        self._tables = fresh
        self._version += 1

    # ------------------------------------------------------------------
    def retained_original_positions(self) -> np.ndarray:
        """Original positions of the retained tokens, shape ``(B, H, L)``.

        Returns a **read-only view**: valid until the next
        ``append``/``gather``/``reorder``; copy it to keep it longer.
        """
        return self._resolve("positions")

    def renumbered_positions(self) -> np.ndarray:
        """Contiguous 0..L-1 positions (Keyformer (New Pos) mode), shape ``(B, H, L)``.

        Returns a read-only broadcast view (no per-call allocation).
        """
        idx = np.arange(self.length)
        return np.broadcast_to(idx, (self.batch_size, self.n_heads, self.length))

    # ------------------------------------------------------------------
    def release(self) -> None:
        """Return every page to the pool (used when a manager tears down)."""
        for table in self._tables:
            self._pool.release_table(table)
        self._version += 1
