"""Per-layer key/value cache storage backed by preallocated slabs.

Keys are stored *unrotated* (before RoPE) together with the original position
of every token, so the attention step can apply either the original positional
information (Keyformer (Org Pos)) or a contiguous renumbering
(Keyformer (New Pos)) at read time.  Because eviction policies operate per
attention head, every head of a layer may retain a different set of tokens:
the storage layout is ``(batch, heads, length, d_head)`` with per-head
position arrays.

Each tensor (keys, values, positions and — when ``rope_dims > 0`` — rotated
keys) lives in its own preallocated slab of shape
``(batch, heads, capacity, d_head)`` with a shared live-length cursor:
``append`` is an in-place write (amortized O(1), capacity doubles when
exhausted) and ``gather`` compacts the live prefix in place with a flattened
row-gather, so the per-token cost of incremental decoding never pays a
full-cache reallocation.  Keeping the slabs separate (rather than fusing
them) preserves a contiguous token axis, which the attention einsum's memory
locality depends on.  The rotated-key slab holds keys rotated by their
original positions: new entries are rotated once on first use and eviction
compacts the rotated slab with the same indices, eliminating the per-step
O(L) re-rotation of unchanged keys.
"""

from __future__ import annotations

import numpy as np

from repro.models.positional import RopeTable, get_rope_table

__all__ = ["LayerKVCache"]

_MIN_CAPACITY = 16


class LayerKVCache:
    """Key/value storage for one decoder layer.

    Parameters
    ----------
    keys, values:
        Initial contents of shape ``(batch, heads, length, d_head)``.
    positions:
        Original token positions of shape ``(batch, heads, length)``.
    dtype:
        Storage/compute dtype; defaults to the dtype of ``keys`` when it is a
        floating type, otherwise ``float64``.
    capacity:
        Initial slab capacity (number of token slots).  Defaults to the
        initial length; the slab doubles whenever ``append`` runs out of room.
    rope_dims:
        When positive, maintain a rotated-key slab (RoPE applied at original
        positions) alongside the raw keys.
    rope_table:
        Optional shared :class:`RopeTable`; defaults to the process-wide table
        for ``rope_dims``.
    """

    def __init__(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        positions: np.ndarray,
        dtype: np.dtype | str | None = None,
        capacity: int | None = None,
        rope_dims: int = 0,
        rope_table: RopeTable | None = None,
    ):
        keys = np.asarray(keys)
        values = np.asarray(values)
        positions = np.asarray(positions, dtype=np.int64)
        if dtype is None:
            dtype = keys.dtype if np.issubdtype(keys.dtype, np.floating) else np.float64
        self.dtype = np.dtype(dtype)
        if keys.shape != values.shape:
            raise ValueError(f"keys/values shape mismatch: {keys.shape} vs {values.shape}")
        if keys.ndim != 4:
            raise ValueError(f"expected (batch, heads, length, d_head) keys, got {keys.shape}")
        if positions.shape != keys.shape[:3]:
            raise ValueError(
                f"positions shape {positions.shape} must match {keys.shape[:3]}"
            )

        self.rope_dims = int(rope_dims)
        self._rope_table = rope_table
        if self.rope_dims > 0 and rope_table is None:
            self._rope_table = get_rope_table(self.rope_dims)

        b, h, t, d = keys.shape
        cap = max(int(capacity) if capacity is not None else t, t)
        self._k = np.empty((b, h, cap, d), dtype=self.dtype)
        self._v = np.empty((b, h, cap, d), dtype=self.dtype)
        self._pos = np.empty((b, h, cap), dtype=np.int64)
        self._k[:, :, :t] = keys
        self._v[:, :, :t] = values
        self._pos[:, :, :t] = positions
        self._len = t
        self._k_rot = (
            np.empty((b, h, cap, d), dtype=self.dtype) if self.rope_dims > 0 else None
        )
        #: Number of leading live entries whose rotated form is up to date.
        self._rot_len = 0
        # True when the stale region [_rot_len, _len) consists purely of
        # appended tokens (each written at one scalar position across batch
        # and heads) — enables the uniform-rotation fast path.
        self._stale_is_append = False
        self._last_append_pos = 0
        # Per-instance caches for per-step allocations (row offsets of the
        # flattened gather, read-only position view); invalidated on mutation.
        self._row_offsets: np.ndarray | None = None
        self._pos_ro: np.ndarray | None = None

        self.total_appended = t
        self.total_evicted = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_prompt(
        cls,
        keys: np.ndarray,
        values: np.ndarray,
        positions: np.ndarray | None = None,
        **kwargs,
    ) -> "LayerKVCache":
        """Build a cache from prompt-phase keys/values of shape ``(B, H, T, d)``.

        ``positions`` defaults to ``0..T-1`` replicated across batch and heads.
        Extra keyword arguments (``dtype``, ``capacity``, ``rope_dims``, ...)
        are forwarded to the constructor.
        """
        keys = np.asarray(keys)
        b, h, t, _ = keys.shape
        if positions is None:
            positions = np.arange(t)
        positions = np.asarray(positions, dtype=np.int64)
        if positions.ndim == 1:
            positions = np.broadcast_to(positions, (b, h, t))
        return cls(keys, np.asarray(values), positions, **kwargs)

    @classmethod
    def empty(cls, batch_size: int, n_heads: int, d_head: int, **kwargs) -> "LayerKVCache":
        """An empty cache (used when decoding starts without a prompt)."""
        return cls(
            np.zeros((batch_size, n_heads, 0, d_head)),
            np.zeros((batch_size, n_heads, 0, d_head)),
            np.zeros((batch_size, n_heads, 0), dtype=np.int64),
            **kwargs,
        )

    # ------------------------------------------------------------------
    @property
    def keys(self) -> np.ndarray:
        """Live (unrotated) keys, shape ``(B, H, L, d)`` — a view of the slab."""
        return self._k[:, :, : self._len]

    @property
    def values(self) -> np.ndarray:
        """Live values, shape ``(B, H, L, d)`` — a view of the slab."""
        return self._v[:, :, : self._len]

    @property
    def positions(self) -> np.ndarray:
        """Live original positions, shape ``(B, H, L)`` — a view of the slab."""
        return self._pos[:, :, : self._len]

    @property
    def batch_size(self) -> int:
        return self._k.shape[0]

    @property
    def n_heads(self) -> int:
        return self._k.shape[1]

    @property
    def length(self) -> int:
        """Number of cached tokens (per head)."""
        return self._len

    @property
    def capacity(self) -> int:
        """Allocated token slots in the slab."""
        return self._k.shape[2]

    @property
    def d_head(self) -> int:
        return self._k.shape[3]

    def __len__(self) -> int:
        return self._len

    def nbytes(self, dtype_bytes: int = 2) -> int:
        """Size of the cached keys+values if stored with ``dtype_bytes`` per scalar
        (2 bytes = fp16, matching deployment practice)."""
        return 2 * self.batch_size * self.n_heads * self._len * self.d_head * dtype_bytes

    # ------------------------------------------------------------------
    def _grow(self, needed: int) -> None:
        new_cap = max(_MIN_CAPACITY, 2 * self.capacity, needed)
        b, h, _, d = self._k.shape

        def grown(slab: np.ndarray, trailing: tuple[int, ...]) -> np.ndarray:
            fresh = np.empty((b, h, new_cap) + trailing, dtype=slab.dtype)
            fresh[:, :, : self._len] = slab[:, :, : self._len]
            return fresh

        self._k = grown(self._k, (d,))
        self._v = grown(self._v, (d,))
        self._pos = grown(self._pos, ())
        if self._k_rot is not None:
            self._k_rot = grown(self._k_rot, (d,))
        self._row_offsets = None
        self._pos_ro = None

    def append(self, k: np.ndarray, v: np.ndarray, position: int) -> None:
        """Append the key/value of a new token at original position ``position``.

        ``k`` and ``v`` have shape ``(batch, heads, d_head)``.  This is an
        in-place slab write; the slab doubles when capacity is exhausted.
        """
        k = np.asarray(k)
        v = np.asarray(v)
        expected = (self.batch_size, self.n_heads, self.d_head)
        if k.shape != expected:
            raise ValueError(f"append expects shape {expected}, got {k.shape}")
        if v.shape != expected:
            raise ValueError(f"append expects value shape {expected}, got {v.shape}")
        if self._len == self.capacity:
            self._grow(self._len + 1)
        if self._rot_len == self._len:
            # Stale region was empty, so it now holds only this append.
            self._stale_is_append = True
        self._k[:, :, self._len] = k
        self._v[:, :, self._len] = v
        self._pos[:, :, self._len] = int(position)
        self._last_append_pos = int(position)
        self._len += 1
        self._pos_ro = None
        self.total_appended += 1

    # ------------------------------------------------------------------
    def rotated_keys(self) -> np.ndarray:
        """Live keys rotated by their *original* positions, shape ``(B, H, L, d)``.

        Maintained incrementally: only entries appended (or invalidated) since
        the last call are rotated, so steady-state decoding rotates one token
        per step instead of the whole cache.
        """
        if self._k_rot is None:
            raise RuntimeError("rotated-key cache disabled (rope_dims == 0)")
        if self._rot_len < self._len:
            stale = slice(self._rot_len, self._len)
            if self._stale_is_append and self._len - self._rot_len == 1:
                # Steady state: exactly the just-appended token is stale, and
                # append writes one scalar position across batch and heads.
                self._k_rot[:, :, stale] = self._rope_table.rotate_uniform(
                    self._k[:, :, stale], self._last_append_pos
                )
            else:
                self._k_rot[:, :, stale] = self._rope_table.rotate(
                    self._k[:, :, stale], self._pos[:, :, stale]
                )
            self._rot_len = self._len
            self._stale_is_append = False
        return self._k_rot[:, :, : self._len]

    # ------------------------------------------------------------------
    @staticmethod
    def _is_identity(indices: np.ndarray, length: int) -> bool:
        if indices.shape[-1] != length:
            return False
        return bool((indices == np.arange(length)).all())

    def _compact(self, slab: np.ndarray, gidx: np.ndarray, k: int) -> None:
        """Write the entries selected by flat row-gather indices ``gidx`` into
        ``slab[:, :, :k]`` in place.

        Uses a flattened ``np.take`` (row gather on a 2-D view) instead of
        ``np.take_along_axis``: the same copy with an order of magnitude less
        indexing overhead, which matters when eviction runs every step.  The
        gather materializes before the write-back, so compacting the slab onto
        its own prefix is safe.
        """
        b, h = slab.shape[0], slab.shape[1]
        if slab.ndim == 4:
            flat = slab.reshape(b * h * self.capacity, slab.shape[3])
            taken = flat.take(gidx, axis=0)
            slab[:, :, :k] = taken.reshape(b, h, k, slab.shape[3])
        else:
            flat = slab.reshape(b * h * self.capacity)
            slab[:, :, :k] = flat.take(gidx).reshape(b, h, k)

    def gather(self, indices: np.ndarray) -> None:
        """Retain only the entries selected by ``indices`` of shape ``(B, H, K)``.

        Indices must be sorted ascending per head so chronological order inside
        the cache is preserved.  Compaction happens in place inside the slabs;
        an identity selection (nothing evicted) is a no-op.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim == 1:
            indices = np.broadcast_to(indices, (self.batch_size, self.n_heads, indices.size))
        if indices.shape[:2] != (self.batch_size, self.n_heads):
            raise ValueError(
                f"indices shape {indices.shape} incompatible with cache "
                f"({self.batch_size}, {self.n_heads}, ...)"
            )
        if indices.size and (indices.min() < 0 or indices.max() >= self._len):
            raise IndexError("gather indices out of range")
        if self._is_identity(indices, self._len):
            return
        k = indices.shape[-1]
        n_rows = self.batch_size * self.n_heads
        if self._row_offsets is None:
            self._row_offsets = (np.arange(n_rows) * self.capacity)[:, None]
        gidx = (self._row_offsets + indices.reshape(n_rows, k)).reshape(-1)
        self._compact(self._k, gidx, k)
        self._compact(self._v, gidx, k)
        self._compact(self._pos, gidx, k)
        if self._k_rot is not None:
            if self._rot_len == self._len:
                # Rotation depends only on the (preserved) original position,
                # so a fully valid rotated slab stays valid under compaction.
                self._compact(self._k_rot, gidx, k)
                self._rot_len = k
            else:
                # Partially rotated: recompute lazily over gathered entries,
                # whose per-head positions are no longer uniform.
                self._rot_len = 0
                self._stale_is_append = False
        evicted = self._len - k
        self._len = k
        self._pos_ro = None
        self.total_evicted += max(evicted, 0)

    def reorder(self, batch_indices: np.ndarray) -> None:
        """Reorder (or duplicate) the batch dimension — used by beam search."""
        batch_indices = np.asarray(batch_indices, dtype=np.int64)
        if batch_indices.size and (
            batch_indices.min() < 0 or batch_indices.max() >= self.batch_size
        ):
            raise IndexError("reorder indices out of range")
        self._k = self._k[batch_indices]
        self._v = self._v[batch_indices]
        self._pos = self._pos[batch_indices]
        if self._k_rot is not None:
            self._k_rot = self._k_rot[batch_indices]
        self._row_offsets = None
        self._pos_ro = None

    # ------------------------------------------------------------------
    def retained_original_positions(self) -> np.ndarray:
        """Original positions of the retained tokens, shape ``(B, H, L)``.

        Returns a **read-only view** into the slab: valid until the next
        ``append``/``gather``/``reorder``; copy it to keep it longer.
        """
        if self._pos_ro is None:
            view = self._pos[:, :, : self._len]
            view.flags.writeable = False
            self._pos_ro = view
        return self._pos_ro

    def renumbered_positions(self) -> np.ndarray:
        """Contiguous 0..L-1 positions (Keyformer (New Pos) mode), shape ``(B, H, L)``.

        Returns a read-only broadcast view (no per-call allocation).
        """
        idx = np.arange(self._len)
        return np.broadcast_to(idx, (self.batch_size, self.n_heads, self._len))
