"""Per-layer key/value cache storage.

Keys are stored *unrotated* (before RoPE) together with the original position
of every token, so the attention step can apply either the original positional
information (Keyformer (Org Pos)) or a contiguous renumbering
(Keyformer (New Pos)) at read time.  Because eviction policies operate per
attention head, every head of a layer may retain a different set of tokens:
the storage layout is ``(batch, heads, length, d_head)`` with per-head
position arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LayerKVCache"]


class LayerKVCache:
    """Key/value storage for one decoder layer."""

    def __init__(self, keys: np.ndarray, values: np.ndarray, positions: np.ndarray):
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        positions = np.asarray(positions, dtype=np.int64)
        if keys.shape != values.shape:
            raise ValueError(f"keys/values shape mismatch: {keys.shape} vs {values.shape}")
        if keys.ndim != 4:
            raise ValueError(f"expected (batch, heads, length, d_head) keys, got {keys.shape}")
        if positions.shape != keys.shape[:3]:
            raise ValueError(
                f"positions shape {positions.shape} must match {keys.shape[:3]}"
            )
        self.keys = keys
        self.values = values
        self.positions = positions
        self.total_appended = keys.shape[2]
        self.total_evicted = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_prompt(
        cls, keys: np.ndarray, values: np.ndarray, positions: np.ndarray | None = None
    ) -> "LayerKVCache":
        """Build a cache from prompt-phase keys/values of shape ``(B, H, T, d)``.

        ``positions`` defaults to ``0..T-1`` replicated across batch and heads.
        """
        keys = np.asarray(keys, dtype=np.float64)
        b, h, t, _ = keys.shape
        if positions is None:
            positions = np.arange(t)
        positions = np.asarray(positions, dtype=np.int64)
        if positions.ndim == 1:
            positions = np.broadcast_to(positions, (b, h, t)).copy()
        return cls(keys, np.asarray(values, dtype=np.float64), positions)

    @classmethod
    def empty(cls, batch_size: int, n_heads: int, d_head: int) -> "LayerKVCache":
        """An empty cache (used when decoding starts without a prompt)."""
        return cls(
            np.zeros((batch_size, n_heads, 0, d_head)),
            np.zeros((batch_size, n_heads, 0, d_head)),
            np.zeros((batch_size, n_heads, 0), dtype=np.int64),
        )

    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        return self.keys.shape[0]

    @property
    def n_heads(self) -> int:
        return self.keys.shape[1]

    @property
    def length(self) -> int:
        """Number of cached tokens (per head)."""
        return self.keys.shape[2]

    @property
    def d_head(self) -> int:
        return self.keys.shape[3]

    def __len__(self) -> int:
        return self.length

    def nbytes(self, dtype_bytes: int = 2) -> int:
        """Size of the cached keys+values if stored with ``dtype_bytes`` per scalar
        (2 bytes = fp16, matching deployment practice)."""
        return 2 * self.keys.shape[0] * self.keys.shape[1] * self.length * self.d_head * dtype_bytes

    # ------------------------------------------------------------------
    def append(self, k: np.ndarray, v: np.ndarray, position: int) -> None:
        """Append the key/value of a new token at original position ``position``.

        ``k`` and ``v`` have shape ``(batch, heads, d_head)``.
        """
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        if k.shape != (self.batch_size, self.n_heads, self.d_head):
            raise ValueError(
                f"append expects shape {(self.batch_size, self.n_heads, self.d_head)}, got {k.shape}"
            )
        self.keys = np.concatenate([self.keys, k[:, :, None, :]], axis=2)
        self.values = np.concatenate([self.values, v[:, :, None, :]], axis=2)
        new_pos = np.full((self.batch_size, self.n_heads, 1), int(position), dtype=np.int64)
        self.positions = np.concatenate([self.positions, new_pos], axis=2)
        self.total_appended += 1

    def gather(self, indices: np.ndarray) -> None:
        """Retain only the entries selected by ``indices`` of shape ``(B, H, K)``.

        Indices must be sorted ascending per head so chronological order inside
        the cache is preserved.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim == 1:
            indices = np.broadcast_to(indices, (self.batch_size, self.n_heads, indices.size))
        if indices.shape[:2] != (self.batch_size, self.n_heads):
            raise ValueError(
                f"indices shape {indices.shape} incompatible with cache "
                f"({self.batch_size}, {self.n_heads}, ...)"
            )
        if indices.size and (indices.min() < 0 or indices.max() >= self.length):
            raise IndexError("gather indices out of range")
        evicted = self.length - indices.shape[-1]
        self.keys = np.take_along_axis(self.keys, indices[..., None], axis=2)
        self.values = np.take_along_axis(self.values, indices[..., None], axis=2)
        self.positions = np.take_along_axis(self.positions, indices, axis=2)
        self.total_evicted += max(evicted, 0)

    def reorder(self, batch_indices: np.ndarray) -> None:
        """Reorder (or duplicate) the batch dimension — used by beam search."""
        batch_indices = np.asarray(batch_indices, dtype=np.int64)
        if batch_indices.size and (
            batch_indices.min() < 0 or batch_indices.max() >= self.batch_size
        ):
            raise IndexError("reorder indices out of range")
        self.keys = self.keys[batch_indices]
        self.values = self.values[batch_indices]
        self.positions = self.positions[batch_indices]

    # ------------------------------------------------------------------
    def retained_original_positions(self) -> np.ndarray:
        """Original positions of the retained tokens, shape ``(B, H, L)``."""
        return self.positions.copy()

    def renumbered_positions(self) -> np.ndarray:
        """Contiguous 0..L-1 positions (Keyformer (New Pos) mode), shape ``(B, H, L)``."""
        idx = np.arange(self.length)
        return np.broadcast_to(idx, (self.batch_size, self.n_heads, self.length)).copy()
