"""Cache manager: connects decoder layers, KV caches and eviction policies.

The manager owns one :class:`LayerKVCache` per decoder layer and a single
eviction policy.  During incremental decoding each decoder block interacts
with the manager through a :class:`LayerCacheView`, which implements the
``LayerDecodeCache`` protocol expected by
:meth:`repro.models.block.DecoderBlock.decode_step`:

1. ``append`` stores the new token's key/value;
2. ``attention_view`` exposes keys/values plus positional indices in either
   original or renumbered form;
3. ``observe`` hands the step's attention logits/probabilities to the policy,
   which may return a selection of entries to retain; the manager applies the
   selection (to one layer, or to all layers for shared score functions).
"""

from __future__ import annotations

import numpy as np

from repro.core.policies import EvictionPolicy
from repro.kvcache.cache import LayerKVCache
from repro.kvcache.paged import DEFAULT_PAGE_SIZE, PagedKVStore, PageTable, pages_needed
from repro.kvcache.stats import CacheStats

__all__ = ["CacheManager", "LayerCacheView"]


class LayerCacheView:
    """Per-layer facade implementing the model's ``LayerDecodeCache`` protocol."""

    def __init__(self, manager: "CacheManager", layer_idx: int):
        self.manager = manager
        self.layer_idx = layer_idx

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Store the new token's key/value in this layer's cache."""
        self.manager.append(self.layer_idx, k, v)

    def attention_view(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]:
        """Keys/values plus positional indices for the attention step."""
        return self.manager.attention_view(self.layer_idx)

    def observe(self, logits: np.ndarray, probs: np.ndarray) -> None:
        """Hand the step's attention tensors to the eviction policy."""
        self.manager.observe(self.layer_idx, logits, probs)

    # -- speculative verify protocol (see DecoderBlock.verify_step) --------
    def append_block(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append the draft block's KV to this layer in one write."""
        self.manager.append_block(self.layer_idx, k, v)

    def verify_view(
        self, n_queries: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]:
        """Verify-pass attention inputs over this layer's cache."""
        return self.manager.verify_view(self.layer_idx, n_queries)


class CacheManager:
    """Owns per-layer KV caches and drives one eviction policy.

    Parameters
    ----------
    dtype:
        Storage/compute dtype of the KV slabs (default ``float64``; the
        model's ``compute_dtype`` is plumbed through here by the generator).
    rope_dims:
        When positive and ``positional_mode == "original"``, per-layer caches
        maintain incrementally updated *rotated* keys so the attention step
        never re-rotates unchanged cache entries.
    kv_dtype:
        Page storage format of the store this manager builds: ``None``
        (default) keeps full-precision pages — the bit-exact golden mode —
        while ``"int8"`` stores quantized pages (see
        :mod:`repro.kvcache.quant`).  Ignored when ``store`` is passed.
    """

    def __init__(
        self,
        policy: EvictionPolicy,
        n_layers: int,
        n_heads: int,
        d_head: int,
        positional_mode: str | None = None,
        dtype: np.dtype | str | None = None,
        rope_dims: int = 0,
        page_size: int = DEFAULT_PAGE_SIZE,
        store: PagedKVStore | None = None,
        kv_dtype: str | None = None,
    ):
        self.policy = policy
        self.n_layers = n_layers
        self.n_heads = n_heads
        self.d_head = d_head
        self.positional_mode = positional_mode or policy.config.positional_mode
        if self.positional_mode not in ("original", "new"):
            raise ValueError(f"unknown positional mode {self.positional_mode!r}")
        self.dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
        # Rotated-key caching is only sound when rotations are keyed to the
        # (stable) original positions; renumbered mode re-rotates per step.
        self.rope_dims = int(rope_dims) if self.positional_mode == "original" else 0
        self.page_size = int(page_size)
        if store is not None:
            # A caller-supplied store lets two managers share one set of
            # block pools — the speculative decoder's target and drafter
            # hold their own page tables over the same physical pages.  With
            # a fixed (non-growable) store, allocations can surface
            # ``PoolExhausted``; the serving engine answers that with
            # preemption, solo callers should pass a growable store.
            self.page_size = store.page_size
        self.kv_dtype = store.kv_dtype if store is not None else kv_dtype
        self._shared_store = store
        self.store: PagedKVStore | None = store
        self.caches: list[LayerKVCache] = []
        self.stats = CacheStats(n_layers=n_layers, n_heads=n_heads, d_head=d_head)
        self.prompt_len = 0
        self.generation_step = 0
        self.current_position = 0
        self._step_lengths: list[int] = []
        self._qpos_array: np.ndarray | None = None

    def _build_store(self, batch_size: int, capacity: int) -> None:
        """One growable :class:`PagedKVStore` per generation run — the single
        storage substrate every per-layer cache view writes into."""
        if self._shared_store is not None:
            self.store = self._shared_store
            return
        pages = max(pages_needed(capacity, self.page_size), 1) * max(batch_size, 1) + 1
        self.store = PagedKVStore(
            self.n_layers,
            self.n_heads,
            self.d_head,
            page_size=self.page_size,
            dtype=self.dtype,
            rope_dims=self.rope_dims,
            n_pages=pages,
            growable=True,
            kv_dtype=self.kv_dtype,
        )

    def _make_cache_kwargs(self, max_new_tokens: int, initial_len: int) -> dict:
        return {
            "dtype": self.dtype,
            "capacity": initial_len + max_new_tokens + 1,
            "rope_dims": self.rope_dims,
        }

    # ------------------------------------------------------------------
    # prompt phase
    # ------------------------------------------------------------------
    def initialize_from_prompt(
        self,
        prompt_kv: list[tuple[np.ndarray, np.ndarray]],
        prompt_attn: list[np.ndarray],
        prompt_logits: list[np.ndarray],
        max_new_tokens: int,
    ) -> None:
        """Seed the caches from prompt-phase tensors and apply the initial eviction.

        Parameters
        ----------
        prompt_kv:
            Per-layer ``(keys, values)`` of shape ``(B, H, T, d_head)``.
        prompt_attn:
            Per-layer post-softmax attention of shape ``(B, H, T, T)``.
        prompt_logits:
            Per-layer masked unnormalized logits of shape ``(B, H, T, T)``.
        max_new_tokens:
            Expected generation length ``T`` (drives the τ schedule).
        """
        if len(prompt_kv) != self.n_layers:
            raise ValueError(f"expected {self.n_layers} layers of prompt KV, got {len(prompt_kv)}")
        keys0 = prompt_kv[0][0]
        batch_size, _, prompt_len, _ = keys0.shape
        self.prompt_len = prompt_len
        self.generation_step = 0
        self.current_position = prompt_len  # original position of the next token
        self._qpos_array = None
        self.stats = CacheStats(
            n_layers=self.n_layers,
            n_heads=self.n_heads,
            d_head=self.d_head,
            batch_size=batch_size,
            prompt_len=prompt_len,
        )

        self.policy.setup(self.n_layers, self.n_heads, batch_size, prompt_len, max_new_tokens)

        cache_kwargs = self._make_cache_kwargs(max_new_tokens, prompt_len)
        self._build_store(batch_size, cache_kwargs["capacity"])
        self.caches = [
            LayerKVCache.from_prompt(
                keys, values, pool=self.store.pool(layer), **cache_kwargs
            )
            for layer, (keys, values) in enumerate(prompt_kv)
        ]
        self.stats.kv_token_bytes = self.store.pools[0].kv_token_nbytes()
        self.stats.total_appended += prompt_len * self.n_layers

        self._apply_prompt_selections(prompt_attn, prompt_logits, prompt_len)

    def _apply_prompt_selections(
        self, prompt_attn: list[np.ndarray], prompt_logits: list[np.ndarray], prompt_len: int
    ) -> None:
        """Run the policy's prompt-phase eviction over freshly seeded caches."""
        positions = np.arange(prompt_len)
        shared_selection: np.ndarray | None = None
        for layer_idx in range(self.n_layers):
            selection = self.policy.initial_selection(
                layer_idx, prompt_attn[layer_idx], prompt_logits[layer_idx], positions
            )
            if selection is None:
                continue
            if getattr(self.policy, "shared_selection", False):
                shared_selection = selection
            else:
                self._apply_selection(layer_idx, selection)
        if shared_selection is not None:
            for layer_idx in range(self.n_layers):
                self._apply_selection(layer_idx, shared_selection)

    def initialize_mapped(
        self,
        source_tables: list[list["PageTable"]],
        prompt_attn: list[np.ndarray],
        prompt_logits: list[np.ndarray],
        max_new_tokens: int,
    ) -> None:
        """Seed by *mapping* another manager's page tables (self-speculation).

        ``source_tables`` holds, per layer, the page tables of a sequence
        already resident in this manager's (shared) store — typically the
        speculative target right after its prompt forward.  Instead of
        copying the prompt KV, each layer cache clones the source table and
        retains its pages; the drafter's prompt-phase eviction then
        copy-on-writes into private pages, so target and drafter share
        physical prompt pages exactly as long as their contents agree.
        """
        if self._shared_store is None:
            raise RuntimeError("initialize_mapped requires a shared store")
        if len(source_tables) != self.n_layers:
            raise ValueError(
                f"expected {self.n_layers} layers of tables, got {len(source_tables)}"
            )
        self.store = self._shared_store
        batch_size = len(source_tables[0])
        prompt_len = source_tables[0][0].length
        self.prompt_len = prompt_len
        self.generation_step = 0
        self.current_position = prompt_len
        self._qpos_array = None
        self.stats = CacheStats(
            n_layers=self.n_layers,
            n_heads=self.n_heads,
            d_head=self.d_head,
            batch_size=batch_size,
            prompt_len=prompt_len,
        )
        self.policy.setup(self.n_layers, self.n_heads, batch_size, prompt_len, max_new_tokens)
        self.caches = [
            LayerKVCache.map_tables(self.store.pool(layer), tables, rope_dims=self.rope_dims)
            for layer, tables in enumerate(source_tables)
        ]
        self.stats.kv_token_bytes = self.store.pools[0].kv_token_nbytes()
        self.stats.total_appended += prompt_len * self.n_layers
        try:
            self._apply_prompt_selections(prompt_attn, prompt_logits, prompt_len)
        except Exception:
            # A mid-eviction failure (PoolExhausted from a copy-on-write
            # gather, or an injected allocation fault) must not leak the
            # freshly mapped pages — release them so the caller can preempt
            # or quarantine with the pool intact.
            self.release()
            raise

    def initialize_empty(self, batch_size: int, max_new_tokens: int, prompt_len: int = 1) -> None:
        """Start decoding with empty caches (used in unit tests and microbenchmarks)."""
        self.prompt_len = 0
        self.generation_step = 0
        self.current_position = 0
        self._qpos_array = None
        self.policy.setup(
            self.n_layers, self.n_heads, batch_size, max(prompt_len, 1), max_new_tokens
        )
        cache_kwargs = self._make_cache_kwargs(max_new_tokens, 0)
        self._build_store(batch_size, cache_kwargs["capacity"])
        self.caches = [
            LayerKVCache.empty(
                batch_size, self.n_heads, self.d_head, pool=self.store.pool(layer), **cache_kwargs
            )
            for layer in range(self.n_layers)
        ]
        self.stats = CacheStats(
            n_layers=self.n_layers,
            n_heads=self.n_heads,
            d_head=self.d_head,
            batch_size=batch_size,
            prompt_len=0,
        )
        self.stats.kv_token_bytes = self.store.pools[0].kv_token_nbytes()

    # ------------------------------------------------------------------
    # decode phase
    # ------------------------------------------------------------------
    def layer_view(self, layer_idx: int) -> LayerCacheView:
        """The per-layer facade handed to ``DecoderBlock.decode_step``."""
        if not (0 <= layer_idx < self.n_layers):
            raise IndexError(f"layer index {layer_idx} out of range")
        return LayerCacheView(self, layer_idx)

    def layer_views(self) -> list[LayerCacheView]:
        """Views for all layers, in order."""
        return [self.layer_view(i) for i in range(self.n_layers)]

    def append(self, layer_idx: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append the current token's key/value to one layer's cache."""
        self.caches[layer_idx].append(k, v, self.current_position)
        self.stats.total_appended += 1

    def attention_view(
        self, layer_idx: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]:
        """``(keys, values, key_positions, query_positions, keys_rotated)``.

        With rotated-key caching active, ``keys`` are already RoPE-rotated at
        their original positions (``keys_rotated=True``) and the attention
        step skips its own key rotation.
        """
        cache = self.caches[layer_idx]
        keys_rotated = False
        if self.positional_mode == "original":
            key_positions = cache.retained_original_positions()
            if self._qpos_array is None:
                # One array per decoding step, shared by every layer.
                self._qpos_array = np.asarray(self.current_position)
            query_positions = self._qpos_array
            if self.rope_dims > 0:
                keys = cache.rotated_keys()
                keys_rotated = True
            else:
                keys = cache.keys
        else:
            keys = cache.keys
            key_positions = cache.renumbered_positions()
            query_positions = np.asarray(cache.length - 1)
        self._step_lengths.append(cache.length)
        return keys, cache.values, key_positions, query_positions, keys_rotated

    def observe(self, layer_idx: int, logits: np.ndarray, probs: np.ndarray) -> None:
        """Run the policy on the step's attention tensors; apply evictions."""
        cache = self.caches[layer_idx]
        selection = self.policy.step_selection(
            layer_idx,
            logits,
            probs,
            cache.retained_original_positions(),
            self.generation_step + 1,
        )
        if selection is None:
            return
        if getattr(self.policy, "shared_selection", False):
            for idx in range(self.n_layers):
                self._apply_selection(idx, selection)
        else:
            self._apply_selection(layer_idx, selection)

    def advance(self) -> None:
        """Mark the end of a decoding step (one token processed by all layers)."""
        if self._step_lengths:
            self.stats.record_step(self._step_lengths)
            self._step_lengths = []
        self.generation_step += 1
        self.current_position += 1
        self._qpos_array = None

    # ------------------------------------------------------------------
    # speculative verify phase
    # ------------------------------------------------------------------
    def append_block(self, layer_idx: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append ``S`` consecutive tokens to one layer's cache in one write.

        ``k``/``v`` have shape ``(S, heads, d_head)`` — the verify pass's
        row-exact projections of the draft block.  Tokens land at original
        positions ``current_position .. current_position + S``; eager RoPE
        rotation happens per token inside the pool (bit-identical to
        appending them one at a time).
        """
        cache = self.caches[layer_idx]
        if cache.batch_size != 1:
            raise RuntimeError("the verify path decodes one sequence at a time")
        s = k.shape[0]
        positions = np.arange(self.current_position, self.current_position + s)
        pos_bht = np.broadcast_to(positions, (1, self.n_heads, s))
        cache.extend(
            k.transpose(1, 0, 2)[None], v.transpose(1, 0, 2)[None], pos_bht
        )
        self.stats.total_appended += s

    def verify_view(
        self, layer_idx: int, n_queries: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]:
        """``(keys, values, key_positions, query_positions, lengths,
        keys_rotated)`` for a verify pass over the last ``n_queries`` appended
        tokens.

        Shapes are unbatched — ``(heads, L, d)`` tensors plus per-query
        ``query_positions``/``lengths`` of shape ``(S,)``; ``lengths[i]`` is
        the causal cache length query ``i`` may attend over (the prefix a
        sequential decode would have seen at that step).
        """
        cache = self.caches[layer_idx]
        length = cache.length
        lengths = np.arange(length - n_queries + 1, length + 1)
        keys_rotated = False
        if self.positional_mode == "original":
            key_positions = cache.retained_original_positions()[0]
            query_positions = np.arange(
                self.current_position, self.current_position + n_queries
            )
            if self.rope_dims > 0:
                keys = cache.rotated_keys()[0]
                keys_rotated = True
            else:
                keys = cache.keys[0]
        else:
            keys = cache.keys[0]
            key_positions = np.broadcast_to(np.arange(length), (self.n_heads, length))
            query_positions = lengths - 1
        return keys, cache.values[0], key_positions, query_positions, lengths, keys_rotated

    def commit_verify(self, n_committed: int, n_appended: int) -> None:
        """Finalize one verify round: roll back the rejected tail and advance.

        The verify pass appended ``n_appended`` KV entries per layer; only the
        first ``n_committed`` correspond to tokens that actually entered the
        committed sequence, so the last ``n_appended - n_committed`` are
        truncated (pages back to the free list via the refcount machinery).
        Position/step counters advance by the committed count, exactly as
        ``n_committed`` sequential ``advance`` calls would.
        """
        drop = n_appended - n_committed
        if drop < 0:
            raise ValueError("cannot commit more tokens than were appended")
        if drop:
            for cache in self.caches:
                cache.truncate(drop)
        self.stats.record_backdated_steps(
            [cache.length for cache in self.caches], n_committed
        )
        self.generation_step += n_committed
        self.current_position += n_committed
        self._step_lengths = []
        self._qpos_array = None

    def release(self) -> None:
        """Return every cached page to the store (drafter teardown)."""
        for cache in self.caches:
            cache.release()
        self.caches = []

    def reorder(self, batch_indices: np.ndarray) -> None:
        """Reorder the batch/beam dimension of every cache and of the policy state."""
        for cache in self.caches:
            cache.reorder(batch_indices)
        self.policy.reorder(batch_indices)

    # ------------------------------------------------------------------
    def _apply_selection(self, layer_idx: int, selection: np.ndarray) -> None:
        cache = self.caches[layer_idx]
        evicted_before = cache.total_evicted
        cache.gather(selection)
        self.stats.total_evicted += cache.total_evicted - evicted_before

    # ------------------------------------------------------------------
    def cache_lengths(self) -> list[int]:
        """Current per-layer cache lengths."""
        return [cache.length for cache in self.caches]

    def total_kv_bytes(self, dtype_bytes: int | None = None) -> int:
        """Current resident KV-cache size across all layers.

        Defaults to the actual storage dtype (see ``LayerKVCache.nbytes``);
        pass ``dtype_bytes`` to model a different deployment dtype.
        """
        return sum(cache.nbytes(dtype_bytes) for cache in self.caches)
