"""Tiered KV offload: hot pages resident in tier-0 frames, cold pages spilled.

The tiered pools keep the :class:`~repro.kvcache.paged.BlockPool` *logical*
page space intact — page ids, refcounts, the free heap and copy-on-write all
work exactly as before — but size the slabs to a fixed number of physical
**frames** (``tier0_pages``).  A logical page is either *resident* (mapped to
a frame) or *spilled* (its byte payload parked in a tier-1 arena) or *free*
(unallocated, backed by nothing).  Every slab access funnels through the
:meth:`~repro.kvcache.paged.BlockPool._page_base` storage hook, which
transparently restores spilled pages on demand, evicting the coldest resident
page when no frame is free — so the cache managers, the serving engine,
prefix sharing, speculative rollback and eviction policies all run unchanged.

Two arena backends (``spill_backend``) park cold payloads:

* ``"compressed"`` — an in-memory :class:`CompressedSpillArena` of
  zlib-compressed page records (the default; no file descriptors).
* ``"mmap"`` — a :class:`MmapSpillArena` over an anonymous temporary file,
  fixed-size records addressed through :mod:`mmap` (simulates a second
  storage device; survives payloads larger than RAM compression wins).

Determinism contract: a spill→restore round-trip is **byte-exact** — the
payload is the raw slab bytes (int8 codes *and* the per-page quantization
parameters for the quantized pool, raw float slabs otherwise) — so victim
selection and frame placement can never change a computed value, and outputs
are bit-identical with offload on or off.  Victim selection prefers the
registry's W-TinyLFU segment ranking when a ``spill_ranker`` is installed
(see :meth:`repro.kvcache.paged.PrefixRegistry.spill_ranker`) and falls back
to least-recently-touched order, so the hot prefix working set stays
resident.
"""

from __future__ import annotations

import heapq
import mmap
import tempfile
import zlib
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.kvcache.paged import (
    BlockPool,
    PageTable,
    PoolExhausted,
    tag_fault_row,
)
from repro.kvcache.quant import QuantizedBlockPool

__all__ = [
    "SPILL_BACKENDS",
    "CompressedSpillArena",
    "MmapSpillArena",
    "TieredBlockPool",
    "TieredQuantizedBlockPool",
    "resolve_spill_arena",
    "resolve_tiered_pool_class",
]

#: Recognized ``spill_backend`` knob values (``None`` means ``"compressed"``).
SPILL_BACKENDS = ("compressed", "mmap")


class CompressedSpillArena:
    """In-memory tier-1 arena: zlib-compressed page payloads by logical page.

    ``level=1`` trades ratio for speed — spill/restore sits on the serving
    path, and KV pages (int8 codes especially) compress well even at the
    fastest setting.
    """

    def __init__(self, level: int = 1):
        self.level = int(level)
        self._records: dict[int, bytes] = {}

    def store(self, page: int, payload: bytes) -> None:
        """Park ``payload`` as the spilled content of logical ``page``."""
        self._records[page] = zlib.compress(payload, self.level)

    def load(self, page: int) -> bytes:
        """The byte-exact payload previously stored for ``page``."""
        return zlib.decompress(self._records[page])

    def drop(self, page: int) -> None:
        """Forget ``page``'s record (restore completion or page free)."""
        self._records.pop(page, None)

    def __contains__(self, page: int) -> bool:
        """True when ``page`` has a spilled record."""
        return page in self._records

    def __len__(self) -> int:
        """Number of spilled records."""
        return len(self._records)

    def keys(self):
        """Logical page ids currently spilled."""
        return self._records.keys()

    def nbytes(self) -> int:
        """Tier-1 bytes currently parked (compressed)."""
        return sum(len(blob) for blob in self._records.values())

    def close(self) -> None:
        """Release all records."""
        self._records.clear()


class MmapSpillArena:
    """File-backed tier-1 arena: fixed-size records in a memory-mapped
    anonymous temporary file.

    Every record is exactly ``record_nbytes`` (one page's payload — the
    tiered pools spill fixed-size pages, so records never fragment).  The
    file grows by doubling; freed record slots are reused lowest-first.
    """

    def __init__(self, record_nbytes: int):
        if record_nbytes <= 0:
            raise ValueError("record_nbytes must be positive")
        self.record_nbytes = int(record_nbytes)
        self._file = tempfile.TemporaryFile()
        self._map: mmap.mmap | None = None
        self._capacity = 0
        self._slots: dict[int, int] = {}
        self._free: list[int] = []
        self._high = 0

    def _ensure_capacity(self, n_records: int) -> None:
        """Grow the backing file (doubling) to hold ``n_records`` records."""
        if n_records <= self._capacity:
            return
        new_cap = max(n_records, 2 * self._capacity, 8)
        self._file.truncate(new_cap * self.record_nbytes)
        if self._map is not None:
            self._map.close()
        self._map = mmap.mmap(self._file.fileno(), new_cap * self.record_nbytes)
        self._capacity = new_cap

    def store(self, page: int, payload: bytes) -> None:
        """Park ``payload`` as the spilled content of logical ``page``."""
        if len(payload) != self.record_nbytes:
            raise ValueError(
                f"payload is {len(payload)} bytes; arena records are "
                f"{self.record_nbytes}"
            )
        slot = self._slots.get(page)
        if slot is None:
            if self._free:
                slot = heapq.heappop(self._free)
            else:
                slot = self._high
                self._high += 1
            self._ensure_capacity(slot + 1)
            self._slots[page] = slot
        off = slot * self.record_nbytes
        self._map[off : off + self.record_nbytes] = payload

    def load(self, page: int) -> bytes:
        """The byte-exact payload previously stored for ``page``."""
        off = self._slots[page] * self.record_nbytes
        return bytes(self._map[off : off + self.record_nbytes])

    def drop(self, page: int) -> None:
        """Free ``page``'s record slot for reuse."""
        slot = self._slots.pop(page, None)
        if slot is not None:
            heapq.heappush(self._free, slot)

    def __contains__(self, page: int) -> bool:
        """True when ``page`` has a spilled record."""
        return page in self._slots

    def __len__(self) -> int:
        """Number of spilled records."""
        return len(self._slots)

    def keys(self):
        """Logical page ids currently spilled."""
        return self._slots.keys()

    def nbytes(self) -> int:
        """Tier-1 bytes currently parked (live records; the file itself may
        be larger from doubling)."""
        return len(self._slots) * self.record_nbytes

    def close(self) -> None:
        """Unmap and close the backing file."""
        if self._map is not None:
            self._map.close()
            self._map = None
        self._file.close()
        self._slots.clear()
        self._free.clear()
        self._capacity = 0
        self._high = 0


def resolve_spill_arena(backend: str | None, record_nbytes: int):
    """Arena instance for a ``spill_backend`` knob value (``None`` →
    ``"compressed"``); ``record_nbytes`` sizes the mmap arena's records."""
    name = "compressed" if backend is None else str(backend)
    if name == "compressed":
        return CompressedSpillArena()
    if name == "mmap":
        return MmapSpillArena(record_nbytes)
    raise ValueError(
        f"unknown spill_backend {backend!r}; expected one of {SPILL_BACKENDS}"
    )


class _TieredMixin:
    """Frame indirection shared by :class:`TieredBlockPool` and
    :class:`TieredQuantizedBlockPool`.

    Must be first in the MRO: it intercepts the
    :meth:`~repro.kvcache.paged.BlockPool._page_base` /
    :meth:`~repro.kvcache.quant.QuantizedBlockPool._page_of_slot` storage
    hooks and the structural methods (``slot_map`` / ``token_runs`` /
    ``token_view`` / ``is_contiguous`` / ``release`` / ``_grow`` /
    ``_copy_on_write``) so the concrete pools' data paths run unchanged on
    top of a resident-frame window.  dtype-specific read/append overrides
    (``fill_row``, the vectorized ``append_rows``) live on the concrete
    subclasses — putting them here would shadow the quantized pool's
    dequantizing implementations.
    """

    def __init__(
        self,
        *args,
        tier0_pages: int = 2,
        spill_backend: str | None = None,
        **kwargs,
    ):
        tier0_pages = int(tier0_pages)
        if tier0_pages < 2:
            # Copy-on-write resolves a source and a destination frame at
            # once, so one frame can never make progress.
            raise ValueError("tier0_pages must be >= 2")
        backend = "compressed" if spill_backend is None else str(spill_backend)
        if backend not in SPILL_BACKENDS:
            raise ValueError(
                f"unknown spill_backend {spill_backend!r}; expected one of "
                f"{SPILL_BACKENDS}"
            )
        # The base constructor sizes the slabs through _slab_pages, which
        # reads this — it must exist before super().__init__ runs.
        self._tier0_pages = tier0_pages
        super().__init__(*args, **kwargs)
        self.spill_backend = backend
        self._page_frame = np.full(self.n_pages, -1, dtype=np.int64)
        self._frame_page = np.full(tier0_pages, -1, dtype=np.int64)
        self._free_frames = list(range(tier0_pages))
        heapq.heapify(self._free_frames)
        self._last_touch = np.zeros(self.n_pages, dtype=np.int64)
        self._tier_clock = 0
        #: Pages the in-flight operation holds resident (page -> pin count);
        #: pinned pages are never chosen as spill victims.  Always empty
        #: between operations — a leak is an integrity violation.
        self._pins: dict[int, int] = {}
        #: Optional victim-ranking callback (lower rank spills first) —
        #: typically :meth:`repro.kvcache.paged.PrefixRegistry.spill_ranker`,
        #: which keeps W-TinyLFU-protected prefix pages resident longest.
        self.spill_ranker: Callable[[int], int] | None = None
        #: Optional fault-injection callback fired before every spill and
        #: restore transfer (the ``spill_io`` injection point); it raises
        #: *before* any state mutates, so an injected fault leaves both the
        #: pool and the arena exactly as they were.
        self.spill_hook: Callable[[], None] | None = None
        self.arena = resolve_spill_arena(backend, self._payload_nbytes())
        self.n_spills = 0
        self.n_restores = 0
        self.spill_bytes = 0
        self.restore_bytes = 0

    # ------------------------------------------------------------------
    # storage hooks
    # ------------------------------------------------------------------
    def _slab_pages(self, n_pages: int) -> int:
        """Slabs hold ``tier0_pages`` physical frames regardless of the
        logical page count."""
        return self._tier0_pages

    def _page_base(self, page: int) -> int:
        """First slab slot backing logical ``page``, restoring it into a
        tier-0 frame first when it is spilled (the coldest resident page is
        evicted to make room).  Also the LRU touch point."""
        frame = int(self._page_frame[page])
        if frame < 0:
            frame = self._assign_frame(page)
        self._tier_clock += 1
        self._last_touch[page] = self._tier_clock
        return frame * self.page_size

    # ------------------------------------------------------------------
    # frame management
    # ------------------------------------------------------------------
    @property
    def n_frames(self) -> int:
        """Physical tier-0 frames the slabs hold."""
        return self._frame_page.shape[0]

    def _slabs(self) -> list[np.ndarray]:
        """The live storage slabs, in payload order."""
        return [s for s in (self._k, self._v, self._pos, self._k_rot) if s is not None]

    def _assign_frame(self, page: int) -> int:
        """Map ``page`` onto a tier-0 frame: take a free frame or spill the
        coldest unpinned resident page, then restore ``page``'s payload from
        the arena (or zero the frame for a never-written page — preserving
        the benign-padding contract of the base slabs)."""
        if self._free_frames:
            frame = heapq.heappop(self._free_frames)
        else:
            victim = self._choose_victim()
            frame = int(self._page_frame[victim])
            self._spill_page(victim, frame)
        try:
            if page in self.arena:
                self._restore_page(page, frame)
            else:
                base = frame * self.page_size
                for slab in self._slabs():
                    slab[:, base : base + self.page_size] = 0
        except BaseException:
            # The restore failed before anything was written; hand the frame
            # back so an injected spill_io fault leaves no orphaned frame.
            heapq.heappush(self._free_frames, frame)
            self._frame_page[frame] = -1
            raise
        self._page_frame[page] = frame
        self._frame_page[frame] = page
        return frame

    def _choose_victim(self) -> int:
        """Coldest unpinned resident page: minimal ``(spill rank, last
        touch, page id)`` — pure LRU when no ranker is installed."""
        best = -1
        best_key: tuple[int, int, int] | None = None
        for frame in range(self.n_frames):
            page = int(self._frame_page[frame])
            if page < 0 or self._pins.get(page):
                continue
            rank = self.spill_ranker(page) if self.spill_ranker is not None else 0
            key = (rank, int(self._last_touch[page]), page)
            if best_key is None or key < best_key:
                best, best_key = page, key
        if best_key is None:
            raise PoolExhausted(
                f"tier-0 frames exhausted: all {self.n_frames} frames are "
                "pinned by the current operation; raise tier0_pages"
            )
        return best

    def _spill_page(self, page: int, frame: int) -> None:
        """Park resident ``page``'s payload in the arena and unmap its frame.

        The ``spill_hook`` fires before any mutation, so an injected
        ``spill_io`` fault leaves the page resident and the arena unchanged.
        """
        if self.spill_hook is not None:
            self.spill_hook()
        payload = self._page_payload(page, frame)
        self.arena.store(page, payload)
        self._page_frame[page] = -1
        self._frame_page[frame] = -1
        self.n_spills += 1
        self.spill_bytes += len(payload)

    def _restore_page(self, page: int, frame: int) -> None:
        """Copy ``page``'s spilled payload back into ``frame`` and drop the
        arena record.  ``spill_hook`` fires before any mutation."""
        if self.spill_hook is not None:
            self.spill_hook()
        payload = self.arena.load(page)
        self._load_payload(page, frame, payload)
        self.arena.drop(page)
        self.n_restores += 1
        self.restore_bytes += len(payload)

    # ------------------------------------------------------------------
    # payload serialization (byte-exact by construction)
    # ------------------------------------------------------------------
    def _page_payload(self, page: int, frame: int) -> bytes:
        """Raw bytes of ``page``'s slab slice in ``frame`` plus any per-page
        state (:meth:`_page_state_payload`)."""
        ps = self.page_size
        base = frame * ps
        parts = [
            np.ascontiguousarray(slab[:, base : base + ps]).tobytes()
            for slab in self._slabs()
        ]
        parts.append(self._page_state_payload(page))
        return b"".join(parts)

    def _load_payload(self, page: int, frame: int, payload: bytes) -> None:
        """Write a :meth:`_page_payload` byte string back into ``frame``."""
        ps = self.page_size
        base = frame * ps
        offset = 0
        for slab in self._slabs():
            shape = (slab.shape[0], ps) + slab.shape[2:]
            count = int(np.prod(shape))
            chunk = np.frombuffer(payload, dtype=slab.dtype, count=count, offset=offset)
            slab[:, base : base + ps] = chunk.reshape(shape)
            offset += count * slab.dtype.itemsize
        self._load_page_state(page, payload, offset)

    def _payload_nbytes(self) -> int:
        """Exact byte size of one page's payload (sizes mmap records)."""
        ps = self.page_size
        total = 0
        for slab in self._slabs():
            per_slot = slab.shape[2] if slab.ndim == 3 else 1
            total += slab.shape[0] * ps * per_slot * slab.dtype.itemsize
        return total + self._extra_payload_nbytes()

    def _page_state_payload(self, page: int) -> bytes:
        """Hook: per-page state appended to the slab payload (empty here;
        the quantized pool appends its parameter rows)."""
        return b""

    def _load_page_state(self, page: int, payload: bytes, offset: int) -> None:
        """Hook: restore per-page state written by
        :meth:`_page_state_payload` (no-op here)."""

    def _extra_payload_nbytes(self) -> int:
        """Hook: byte size of :meth:`_page_state_payload` (zero here)."""
        return 0

    # ------------------------------------------------------------------
    # pinning / bulk residency
    # ------------------------------------------------------------------
    def _pin(self, pages: Iterable[int]) -> None:
        """Guard ``pages`` against eviction for the in-flight operation."""
        for page in pages:
            page = int(page)
            self._pins[page] = self._pins.get(page, 0) + 1

    def _unpin(self, pages: Iterable[int]) -> None:
        """Drop one pin per page (inverse of :meth:`_pin`)."""
        for page in pages:
            page = int(page)
            count = self._pins.get(page, 0) - 1
            if count <= 0:
                self._pins.pop(page, None)
            else:
                self._pins[page] = count

    def _ensure_resident(self, pages: Iterable[int]) -> None:
        """Make every page in ``pages`` simultaneously resident (pinning
        them against each other's restores); raises
        :class:`~repro.kvcache.paged.PoolExhausted` when they cannot all fit
        in tier-0 at once."""
        ordered = list(dict.fromkeys(int(p) for p in pages))
        if len(ordered) > self.n_frames:
            raise PoolExhausted(
                f"operation needs {len(ordered)} simultaneously resident "
                f"pages but the pool has only {self.n_frames} tier-0 frames; "
                "raise tier0_pages"
            )
        self._pin(ordered)
        try:
            for page in ordered:
                if self._page_frame[page] < 0:
                    self._assign_frame(page)
        finally:
            self._unpin(ordered)

    def restore_pages(self, pages: Iterable[int]) -> int:
        """Bulk-restore spilled ``pages`` (engine prefetch): restores as many
        as fit in tier-0, newly restored pages pinned for the duration of
        the call so the batch cannot thrash itself.  Returns the number of
        pages restored."""
        wanted = [
            p
            for p in dict.fromkeys(int(p) for p in pages)
            if 0 <= p < self.n_pages and self._page_frame[p] < 0 and p in self.arena
        ][: self.n_frames]
        restored = 0
        pinned: list[int] = []
        try:
            for page in wanted:
                try:
                    self._assign_frame(page)
                except PoolExhausted:
                    break
                self._pin([page])
                pinned.append(page)
                restored += 1
        finally:
            self._unpin(pinned)
        return restored

    # ------------------------------------------------------------------
    # structural overrides
    # ------------------------------------------------------------------
    def is_contiguous(self, table: PageTable) -> bool:
        """Always ``False``: frames move under spill/restore, so no stable
        zero-copy slab view exists — spilled pages hold no live views."""
        return False

    def slot_map(self, table: PageTable) -> np.ndarray:
        """Flat *frame* slot of every live token (the whole table is made
        resident first — compaction's vectorized gather needs all source
        slots valid at once)."""
        if not table.pages:
            return np.empty(0, dtype=np.int64)
        self._ensure_resident(table.pages)
        frames = self._page_frame[np.asarray(table.pages, dtype=np.int64)]
        slots = (
            frames[:, None] * self.page_size + np.arange(self.page_size)
        ).reshape(-1)
        return slots[table.offset : table.end]

    def token_runs(self, table: PageTable) -> list[tuple[int, int, int]]:
        """Per-page frame-slot runs of the live tokens (the whole table is
        made resident first; runs never span pages because adjacent logical
        pages land on arbitrary frames)."""
        self._ensure_resident(table.pages)
        ps = self.page_size
        runs: list[tuple[int, int, int]] = []
        logical = 0
        while logical < table.length:
            slot = table.offset + logical
            page = table.pages[slot // ps]
            within = slot % ps
            chunk = min(ps - within, table.length - logical)
            runs.append((logical, self._page_base(page) + within, chunk))
            logical += chunk
        return runs

    def token_view(self, table: PageTable, slab: np.ndarray) -> np.ndarray:
        """Dense copy of the live tokens, streamed page by page — each page
        is restored just for its memcpy, so a row longer than tier-0 still
        reads with as little as one free frame."""
        if table.length == 0:
            return slab[:, :0]
        ps = self.page_size
        out = np.empty((slab.shape[0], table.length) + slab.shape[2:], dtype=slab.dtype)
        logical = 0
        while logical < table.length:
            slot = table.offset + logical
            page = table.pages[slot // ps]
            within = slot % ps
            chunk = min(ps - within, table.length - logical)
            base = self._page_base(page) + within
            out[:, logical : logical + chunk] = slab[:, base : base + chunk]
            logical += chunk
        return out

    def gather(self, table: PageTable, indices: np.ndarray) -> int:
        """Eviction compaction without a whole-row residency requirement.

        The base pool's general path gathers every surviving slot in one
        vectorized take, which would need all source pages resident at once.
        Here survivors are instead selected from the dense streamed views
        (page-at-a-time restores), then written back through
        ``_write_all`` — elementwise the same reads and writes, so the
        result is bit-identical to the single-tier pool's.  The identity /
        pure-suffix fast path is pure bookkeeping and delegates to the base
        implementation untouched.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim == 3:
            indices = indices[0]
        length = table.length
        if indices.shape[0] != self.n_heads:
            raise ValueError(
                f"gather expects ({self.n_heads}, K) indices, got {indices.shape}"
            )
        if indices.size and (indices.min() < 0 or indices.max() >= length):
            raise IndexError("gather indices out of range")
        k = indices.shape[-1]
        dropped = length - k
        if bool((indices == np.arange(dropped, length)).all()):
            return super().gather(table, indices)
        hidx = np.arange(self.n_heads)[:, None]
        keys = self.keys_view(table)[hidx, indices]
        values = self.values_view(table)[hidx, indices]
        positions = self.positions_view(table)[hidx, indices]
        k_rot = (
            self.rotated_view(table)[hidx, indices]
            if self._k_rot is not None
            else None
        )
        data = [keys, values, positions, k_rot]
        n_needed = self.pages_for(max(k, 1))
        if self._exclusive(table):
            self.release(table.pages[n_needed:])
            del table.pages[n_needed:]
        else:
            fresh = self.alloc(n_needed)
            self.release(table.pages)
            table.pages = fresh
        table.offset = 0
        table.length = k
        self._write_all(table, data)
        return dropped

    def _copy_on_write(self, table: PageTable, page_index: int) -> None:
        """Exception-safe tiered copy-on-write.

        Replaces (rather than wraps) the base implementation for two
        reasons: the source page must be *pinned* so resolving the
        destination's frame cannot evict it mid-copy, and a spill/restore
        fault while resolving either frame must not leak the freshly
        allocated destination page — the base version allocates first and
        only publishes the page into the table after the copy, so an
        injected ``spill_io`` fault in between would strand a refcount.
        """
        if self._n_shared == 0:
            return
        page = table.pages[page_index]
        if self.refcounts[page] == 1:
            return
        self._pin([page])
        try:
            (fresh,) = self.alloc(1)
            try:
                ps = self.page_size
                src = self._page_base(page)
                dst = self._page_base(fresh)
                for slab in self._slabs():
                    slab[:, dst : dst + ps] = slab[:, src : src + ps]
                self._copy_page_state(page, fresh)
            except BaseException:
                self.release([fresh])
                raise
            table.pages[page_index] = fresh
            self.release([page])
        finally:
            self._unpin([page])

    def release(self, pages: Iterable[int]) -> None:
        """Release references; pages dropping to refcount zero also give up
        their frame or arena record (no spill-index leaks)."""
        pages = [int(p) for p in pages]
        super().release(pages)
        for page in pages:
            if self.refcounts[page] == 0:
                frame = int(self._page_frame[page])
                if frame >= 0:
                    self._page_frame[page] = -1
                    self._frame_page[frame] = -1
                    heapq.heappush(self._free_frames, frame)
                elif page in self.arena:
                    self.arena.drop(page)

    def _grow(self, min_pages: int) -> None:
        """Grow the *logical* page space only — refcounts, the free heap and
        the tier maps; the slabs stay at ``tier0_pages`` frames (growth never
        buys residency, it buys spillable capacity)."""
        old = self.n_pages
        new_pages = max(min_pages, 2 * old)
        self.refcounts = np.concatenate(
            [self.refcounts, np.zeros(new_pages - old, dtype=np.int64)]
        )
        self._page_frame = np.concatenate(
            [self._page_frame, np.full(new_pages - old, -1, dtype=np.int64)]
        )
        self._last_touch = np.concatenate(
            [self._last_touch, np.zeros(new_pages - old, dtype=np.int64)]
        )
        for page in range(old, new_pages):
            heapq.heappush(self._free, page)
        self._grow_page_state(new_pages)

    # ------------------------------------------------------------------
    # telemetry / auditing
    # ------------------------------------------------------------------
    def tier_usage(self) -> dict:
        """Tier telemetry: frame count, resident/spilled pages, cumulative
        spill/restore transfer counts and bytes, and current arena bytes."""
        return {
            "tier0_frames": self.n_frames,
            "resident_pages": int((self._page_frame >= 0).sum()),
            "spilled_pages": len(self.arena),
            "spills": self.n_spills,
            "restores": self.n_restores,
            "spill_bytes": self.spill_bytes,
            "restore_bytes": self.restore_bytes,
            "spilled_nbytes": self.arena.nbytes(),
        }

    def tier_page_state(self, page: int) -> str:
        """``"resident"``, ``"spilled"`` or ``"free"`` — every page is in
        exactly one of these states (the resident-XOR-spilled invariant)."""
        if self._page_frame[page] >= 0:
            return "resident"
        if page in self.arena:
            return "spilled"
        return "free"

    def check_invariants(
        self,
        owners: Sequence[PageTable] | None = None,
        pinned: Iterable[int] = (),
        label: str = "pool",
    ) -> list[str]:
        """Base-pool audit plus the tier invariants: a page is resident XOR
        spilled XOR free, the page↔frame maps are mutually inverse, the
        free-frame list is exactly the unmapped frames, every arena record
        belongs to a live (refcount > 0) page, and no operation leaked a
        pin."""
        violations = super().check_invariants(owners=owners, pinned=pinned, label=label)
        n_frames = self.n_frames
        for page in range(self.n_pages):
            frame = int(self._page_frame[page])
            if frame < 0:
                continue
            if not 0 <= frame < n_frames:
                violations.append(
                    f"{label}: tier page {page} maps frame {frame} out of range"
                )
            elif int(self._frame_page[frame]) != page:
                violations.append(
                    f"{label}: tier page {page} maps frame {frame} owned by "
                    f"page {int(self._frame_page[frame])}"
                )
            if page in self.arena:
                violations.append(
                    f"{label}: tier page {page} is both resident and spilled"
                )
        for frame in range(n_frames):
            page = int(self._frame_page[frame])
            if page >= 0 and (
                page >= self.n_pages or int(self._page_frame[page]) != frame
            ):
                violations.append(
                    f"{label}: tier frame {frame} claims page {page} which "
                    "does not map back"
                )
        free = sorted(self._free_frames)
        if len(set(free)) != len(free):
            violations.append(f"{label}: duplicate tier-0 frames on the free list")
        unmapped = np.flatnonzero(self._frame_page < 0).tolist()
        if sorted(set(free)) != unmapped:
            violations.append(
                f"{label}: free-frame list {free} != unmapped frames {unmapped}"
            )
        for page in self.arena.keys():
            if not 0 <= page < self.n_pages:
                violations.append(
                    f"{label}: spill index holds out-of-range page {page}"
                )
            elif self.refcounts[page] == 0:
                violations.append(
                    f"{label}: spill-index leak — page {page} is spilled but "
                    "has refcount 0"
                )
        if self._pins:
            violations.append(f"{label}: pin(s) leaked: {dict(self._pins)}")
        return violations


class TieredBlockPool(_TieredMixin, BlockPool):
    """Full-precision :class:`~repro.kvcache.paged.BlockPool` with tiered
    offload: raw float slabs spill byte-exactly, so reads reproduce the
    single-tier pool bit for bit."""

    def append_rows(
        self,
        tables: Sequence[PageTable],
        k: np.ndarray,
        v: np.ndarray,
        positions: np.ndarray,
    ) -> None:
        """Vectorized one-token-per-table append with destination pinning:
        each row's destination page is pinned as its slot resolves, so a
        later row's restore cannot evict an earlier row's frame before the
        single scatter write lands."""
        if not len(tables):
            return
        slots = np.empty(len(tables), dtype=np.int64)
        pinned: list[int] = []
        try:
            for i, table in enumerate(tables):
                try:
                    slots[i] = self._append_slot(table)
                    page = table.pages[table.end // self.page_size]
                    self._pin([page])
                    pinned.append(page)
                except Exception as exc:
                    tag_fault_row(exc, i)
                    raise
            positions = np.asarray(positions, dtype=np.int64)
            self._k[:, slots] = k.transpose(1, 0, 2)
            self._v[:, slots] = v.transpose(1, 0, 2)
            self._pos[:, slots] = positions
            if self._k_rot is not None:
                k_rot = self.rope_table.rotate(k, positions[:, None])
                self._k_rot[:, slots] = k_rot.transpose(1, 0, 2)
            for table in tables:
                table.length += 1
        finally:
            self._unpin(pinned)

    def fill_row(
        self,
        table: PageTable,
        out_k: np.ndarray,
        out_v: np.ndarray,
        out_pos: np.ndarray,
        rotated: bool,
    ) -> None:
        """Padded-batch read streamed page by page (each page restored just
        for its memcpy — rows longer than tier-0 read fine)."""
        if table.length == 0:
            return
        keys = self._k_rot if rotated else self._k
        ps = self.page_size
        logical = 0
        while logical < table.length:
            slot = table.offset + logical
            page = table.pages[slot // ps]
            within = slot % ps
            chunk = min(ps - within, table.length - logical)
            base = self._page_base(page) + within
            dst = slice(logical, logical + chunk)
            out_k[:, dst] = keys[:, base : base + chunk]
            out_v[:, dst] = self._v[:, base : base + chunk]
            out_pos[:, dst] = self._pos[:, base : base + chunk]
            logical += chunk


class TieredQuantizedBlockPool(_TieredMixin, QuantizedBlockPool):
    """Int8 :class:`~repro.kvcache.quant.QuantizedBlockPool` with tiered
    offload.  Quantization parameters stay RAM-resident (they are indexed by
    *logical* page), but each spill payload carries the page's codes **and**
    its parameter rows, so a spill record is self-contained and the
    round-trip is byte-exact for codes and params alike.  The quantized
    per-page read/write paths (``_dequant_view``, ``_quantize_into``,
    ``fill_row``) already chunk per logical page through ``_page_base``, so
    they stream through tier-0 unchanged."""

    def _page_of_slot(self, slots):
        """Logical page owning flat *frame* slot(s) — the frame→page map
        lookup (scalar or vectorized)."""
        return self._frame_page[slots // self.page_size]

    def _reset_page_params(self, pages: Sequence[int]) -> None:
        """Reset parameter ranges, mirroring the reset into any spilled
        record: compaction resets pages it is about to rewrite, and if such
        a page sits in the arena its stored param section would otherwise
        resurrect the stale (wider) range on restore."""
        super()._reset_page_params(pages)
        extra = self._extra_payload_nbytes()
        for page in pages:
            page = int(page)
            if page in self.arena:
                payload = self.arena.load(page)
                self.arena.store(
                    page, payload[: len(payload) - extra] + self._page_state_payload(page)
                )

    def _page_state_payload(self, page: int) -> bytes:
        """The page's float32 parameter rows (scale, zero, lo, hi per
        quantized stream), appended to the code payload."""
        parts = []
        for name in self._qnames:
            for store in (self._qscale, self._qzero, self._qlo, self._qhi):
                parts.append(store[name][page].tobytes())
        return b"".join(parts)

    def _load_page_state(self, page: int, payload: bytes, offset: int) -> None:
        """Restore the parameter rows written by :meth:`_page_state_payload`."""
        n = self.n_heads
        for name in self._qnames:
            for store in (self._qscale, self._qzero, self._qlo, self._qhi):
                store[name][page] = np.frombuffer(
                    payload, dtype=np.float32, count=n, offset=offset
                )
                offset += n * 4

    def _extra_payload_nbytes(self) -> int:
        """Bytes of the per-page parameter rows (4 float32 rows per stream)."""
        return len(self._qnames) * 4 * self.n_heads * 4

    def check_invariants(
        self,
        owners: Sequence[PageTable] | None = None,
        pinned: Iterable[int] = (),
        label: str = "pool",
    ) -> list[str]:
        """Tier + quantization audit, plus the spill-record cross-check:
        every spilled page's stored parameter section must equal the live
        (RAM-resident) parameters — a mismatch means a restore would change
        dequantized values, breaking the byte-exactness contract."""
        violations = super().check_invariants(owners=owners, pinned=pinned, label=label)
        extra = self._extra_payload_nbytes()
        for page in list(self.arena.keys()):
            payload = self.arena.load(page)
            if payload[len(payload) - extra :] != self._page_state_payload(page):
                violations.append(
                    f"{label}: spilled page {page} parameter section diverged "
                    "from the live quantization parameters"
                )
        return violations


def resolve_tiered_pool_class(base_cls: type[BlockPool]) -> type[BlockPool]:
    """Tiered variant of a single-tier pool class (how
    :class:`~repro.kvcache.paged.PagedKVStore` upgrades its pools when
    ``tier0_pages`` is set)."""
    if issubclass(base_cls, QuantizedBlockPool):
        return TieredQuantizedBlockPool
    if issubclass(base_cls, BlockPool):
        return TieredBlockPool
    raise ValueError(f"no tiered variant for pool class {base_cls!r}")
