"""Paged KV-cache storage: block pools, page tables and prefix sharing.

This module is the single storage substrate under both cache front-ends
(:class:`~repro.kvcache.cache.LayerKVCache` for solo/beam decoding and
:class:`~repro.kvcache.batch.BatchedLayerKVCache` for the continuous-batching
engine).  Instead of one private slab per sequence, every decoder layer owns a
:class:`BlockPool` of fixed-size **pages** (``page_size`` token slots each,
holding keys, values, original positions and — when ``rope_dims > 0`` —
eagerly rotated keys), and every sequence holds one :class:`PageTable` per
layer mapping its logical token axis onto pool pages:

* **append** writes one token slot (allocating a page only on a boundary);
* **gather** (eviction) keeps its fast paths — identity is a no-op, a pure
  suffix selection is an O(1) offset bump that frees whole leading pages —
  and otherwise compacts through a flat row-gather into (re)allocated pages;
* **ref-counting + copy-on-write** let two sequences map the same physical
  page: a page is only written in place when its refcount is 1, so sharing a
  prompt prefix (or duplicating a beam) can never corrupt a neighbour;
* **materialization** resolves a page table back into the dense
  ``(heads, length, d_head)`` tensors attention consumes, with a zero-copy
  slab view when the pages happen to be physically contiguous (the common
  case for a solo sequence) and a page-gather copy otherwise.

Pages within one pool share the token-major layout ``(heads, n_pages *
page_size, d_head)``, so "physically contiguous pages" literally means a
contiguous token axis — exactly the slab layout the attention einsum's memory
locality depends on.

:class:`PrefixRegistry` implements vLLM-style prefix caching on top of the
ref-counts: page-aligned chunks of prompt token ids are hashed (chained, so a
chunk is only reachable through its full prefix) to the physical pages that
hold their KV, and a new request whose prompt starts with a registered chunk
chain maps those pages instead of recomputing them.  Registered pages are
pinned by a registry refcount and reclaimed LRU-first when the pool runs dry.

Everything here is storage bookkeeping — no floating-point arithmetic beyond
the (bit-exact, elementwise) eager RoPE rotation of new keys — which is what
keeps the paged backend bit-identical to the historical slab backend.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.kvcache.admission import resolve_admission_policy
from repro.models.positional import RopeTable, get_rope_table

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "chunk_digest",
    "PoolExhausted",
    "PoolIntegrityError",
    "PageTable",
    "BlockPool",
    "PagedKVStore",
    "PrefixMatch",
    "PrefixRegistry",
    "resolve_pool_class",
]

DEFAULT_PAGE_SIZE = 16


def pages_needed(n_tokens: int, page_size: int) -> int:
    """Pages required to hold ``n_tokens`` token slots (ceil division)."""
    return -(-int(n_tokens) // page_size)


class PoolExhausted(RuntimeError):
    """Raised when a fixed-size pool cannot allocate and nothing is reclaimable."""


class PoolIntegrityError(RuntimeError):
    """A pool-integrity audit (:meth:`BlockPool.check_invariants`) failed."""


def tag_fault_row(exc: BaseException, row: int) -> None:
    """Tag ``exc`` with the batch row whose work raised it (best effort).

    Row-scoped loops over a batch (pool appends, per-row policy observation)
    call this so the serving engine's quarantine handler can attribute an
    arbitrary mid-batch exception to the one row it belongs to.  First
    writer wins: an exception propagating through nested row loops keeps
    the innermost attribution.
    """
    if getattr(exc, "fault_row", None) is None:
        try:
            exc.fault_row = row
        except AttributeError:
            pass  # exceptions with __slots__ cannot carry the tag


class PageTable:
    """Per-sequence (per-layer) mapping of the logical token axis onto pages.

    ``pages`` lists physical page ids in logical order; the live tokens occupy
    slots ``offset .. offset + length`` of the concatenated pages.  A nonzero
    ``offset`` arises from the suffix-eviction fast path (sliding-window
    policies dropping the oldest tokens bump the offset instead of copying).
    """

    __slots__ = ("pages", "offset", "length")

    def __init__(self) -> None:
        self.pages: list[int] = []
        self.offset = 0
        self.length = 0

    @property
    def end(self) -> int:
        """One past the last live slot (in concatenated-page coordinates)."""
        return self.offset + self.length

    def allocated(self, page_size: int) -> int:
        """Total token slots covered by this table's pages."""
        return len(self.pages) * page_size

    def clone(self) -> "PageTable":
        """Shallow copy sharing the same physical pages (caller must retain)."""
        table = PageTable()
        table.pages = list(self.pages)
        table.offset = self.offset
        table.length = self.length
        return table


class BlockPool:
    """Fixed-size KV pages for one decoder layer.

    Slabs are token-major — ``(n_heads, n_pages * page_size, d_head)`` for
    keys/values/rotated keys and ``(n_heads, n_pages * page_size)`` for the
    per-head original positions — so a run of consecutive page ids is a
    contiguous token axis and materializes as a zero-copy view.

    Parameters
    ----------
    growable:
        When true (solo generation) the pool doubles on demand like the old
        slabs did.  When false (the serving engine's memory-aware mode) an
        allocation that cannot be satisfied first asks the ``reclaimer`` (the
        prefix registry) to drop cold pinned pages and then raises
        :class:`PoolExhausted`, which the engine turns into preemption.
    """

    def __init__(
        self,
        n_heads: int,
        d_head: int,
        page_size: int = DEFAULT_PAGE_SIZE,
        n_pages: int = 64,
        dtype: np.dtype | str = np.float64,
        rope_dims: int = 0,
        rope_table: RopeTable | None = None,
        growable: bool = True,
    ):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        if n_pages <= 0:
            raise ValueError("n_pages must be positive")
        self.page_size = int(page_size)
        self.dtype = np.dtype(dtype)
        self.rope_dims = int(rope_dims)
        self.rope_table = rope_table
        if self.rope_dims > 0 and rope_table is None:
            self.rope_table = get_rope_table(self.rope_dims)
        self.growable = growable
        self.reclaimer: Callable[[int], int] | None = None
        #: Optional fault-injection callback consulted at the top of every
        #: allocation (see :class:`repro.serving.faults.FaultInjector`); it
        #: raises to simulate an allocation failure before any state mutates.
        self.fault_hook: Callable[[], None] | None = None

        n_slots = self._slab_pages(n_pages) * self.page_size
        storage = self._storage_dtype()
        # np.zeros (not empty): padded/stale slots must stay benign — the
        # float32 serving path may touch them before masking.
        self._k = np.zeros((n_heads, n_slots, d_head), dtype=storage)
        self._v = np.zeros((n_heads, n_slots, d_head), dtype=storage)
        self._pos = np.zeros((n_heads, n_slots), dtype=np.int64)
        self._k_rot = (
            np.zeros((n_heads, n_slots, d_head), dtype=storage)
            if self.rope_dims > 0
            else None
        )
        self.refcounts = np.zeros(n_pages, dtype=np.int64)
        self._free = list(range(n_pages))
        heapq.heapify(self._free)
        #: Pages currently mapped by more than one owner.  Zero means no
        #: copy-on-write can ever be needed — the solo-decode steady state —
        #: so the per-append/per-gather exclusivity checks reduce to one
        #: integer comparison.
        self._n_shared = 0

    # ------------------------------------------------------------------
    # storage hooks (overridden by the quantized pool)
    # ------------------------------------------------------------------
    def _storage_dtype(self) -> np.dtype:
        """Dtype of the key/value slabs; the full-precision pool stores the
        compute dtype itself (:class:`~repro.kvcache.quant.QuantizedBlockPool`
        stores ``int8`` codes instead)."""
        return self.dtype

    def _grow_page_state(self, n_pages: int) -> None:
        """Hook: grow per-page bookkeeping to ``n_pages`` entries (no-op here;
        the quantized pool grows its scale/zero tensors)."""

    def _copy_page_state(self, src_page: int, dst_page: int) -> None:
        """Hook: copy per-page bookkeeping during copy-on-write (no-op here;
        the quantized pool copies the page's quantization parameters)."""

    def _slab_pages(self, n_pages: int) -> int:
        """Hook: physical pages the slabs are sized for (identity here; the
        tiered pools of :mod:`repro.kvcache.offload` cap the slabs at their
        tier-0 frame count and spill the rest)."""
        return n_pages

    def _page_base(self, page: int) -> int:
        """Hook: first slab slot backing logical ``page`` (plain page
        arithmetic here).  Every slab access funnels through this so the
        tiered pools can map logical pages onto resident tier-0 frames,
        restoring spilled pages on demand."""
        return page * self.page_size

    # ------------------------------------------------------------------
    # geometry / accounting
    # ------------------------------------------------------------------
    @property
    def n_heads(self) -> int:
        """Number of attention heads the slabs are laid out for."""
        return self._k.shape[0]

    @property
    def d_head(self) -> int:
        """Per-head feature dimension of the key/value slabs."""
        return self._k.shape[2]

    @property
    def n_pages(self) -> int:
        """Total pages in the pool (free and mapped)."""
        return self.refcounts.shape[0]

    @property
    def n_slots(self) -> int:
        """Total token slots across all pages (``n_pages * page_size``)."""
        return self._k.shape[1]

    @property
    def free_pages(self) -> int:
        """Pages currently on the free list."""
        return len(self._free)

    @property
    def used_pages(self) -> int:
        """Pages currently mapped by at least one owner."""
        return self.n_pages - len(self._free)

    @property
    def shared_pages(self) -> int:
        """Pages mapped by more than one owner (sequences and/or registry)."""
        return self._n_shared

    def pages_for(self, n_tokens: int) -> int:
        """Pages needed to hold ``n_tokens`` token slots."""
        return pages_needed(n_tokens, self.page_size)

    def kv_token_nbytes(self) -> float:
        """Key+value storage bytes one cached token occupies (all heads).

        Full-precision pools store the compute dtype itself; the quantized
        pool overrides this with int8 codes plus the amortized per-page
        ``(scale, zero)`` tensors, so memory accounting (``LayerKVCache.nbytes``,
        :meth:`repro.perfmodel.memory.MemoryModel.measured_kv_bytes`) reflects
        what is actually resident.
        """
        return float(2 * self.n_heads * self.d_head * self._k.dtype.itemsize)

    @classmethod
    def estimate_page_nbytes(
        cls,
        n_heads: int,
        d_head: int,
        page_size: int,
        dtype: np.dtype | str,
        rope_dims: int,
    ) -> float:
        """Resident bytes of one page before a pool exists — used to convert
        a byte budget into a page count (``max_pool_bytes``).  Counts every
        slab a page holds: keys, values, the rotated-key slab when
        ``rope_dims > 0``, and the int64 per-head positions."""
        itemsize = np.dtype(dtype).itemsize
        slabs = 2 + (1 if rope_dims > 0 else 0)
        return float(page_size * n_heads * (slabs * d_head * itemsize + 8))

    def page_nbytes(self) -> float:
        """Resident bytes of one page of this pool (see
        :meth:`estimate_page_nbytes`)."""
        return type(self).estimate_page_nbytes(
            self.n_heads, self.d_head, self.page_size, self.dtype, self.rope_dims
        )

    def nbytes(self) -> int:
        """Resident bytes of this pool's slabs — keys, values, rotated keys
        and positions (plus, in the quantized pool, its per-page
        quantization tensors)."""
        return sum(
            slab.nbytes
            for slab in (self._k, self._v, self._pos, self._k_rot)
            if slab is not None
        )

    # ------------------------------------------------------------------
    # allocation / refcounting
    # ------------------------------------------------------------------
    def _grow(self, min_pages: int) -> None:
        new_pages = max(min_pages, 2 * self.n_pages)
        n_slots = new_pages * self.page_size

        def grown(slab: np.ndarray | None, trailing: tuple[int, ...]) -> np.ndarray | None:
            """Copy ``slab`` into a zero-padded array with ``n_slots`` slots."""
            if slab is None:
                return None
            fresh = np.zeros((self.n_heads, n_slots) + trailing, dtype=slab.dtype)
            fresh[:, : slab.shape[1]] = slab
            return fresh

        self._k = grown(self._k, (self.d_head,))
        self._v = grown(self._v, (self.d_head,))
        self._pos = grown(self._pos, ())
        self._k_rot = grown(self._k_rot, (self.d_head,))
        for page in range(self.n_pages, new_pages):
            heapq.heappush(self._free, page)
        self.refcounts = np.concatenate(
            [self.refcounts, np.zeros(new_pages - self.n_pages, dtype=np.int64)]
        )
        self._grow_page_state(new_pages)

    def alloc(self, n: int) -> list[int]:
        """Allocate ``n`` pages (refcount 1 each), lowest ids first.

        Lowest-first keeps a freshly seeded sequence on a physically
        contiguous run of pages, which is what the zero-copy materialization
        fast path relies on.
        """
        if n <= 0:
            return []
        if self.fault_hook is not None:
            # Fires before any mutation, so an injected allocation fault
            # leaves the pool exactly as it was.
            self.fault_hook()
        if len(self._free) < n:
            if self.growable:
                self._grow(self.used_pages + n)
            elif self.reclaimer is not None:
                self.reclaimer(n - len(self._free))
        if len(self._free) < n:
            raise PoolExhausted(
                f"pool out of pages: need {n}, have {len(self._free)} free "
                f"of {self.n_pages}"
            )
        pages = [heapq.heappop(self._free) for _ in range(n)]
        self.refcounts[pages] = 1
        return pages

    def retain(self, pages: Iterable[int]) -> None:
        """Bump the refcount of every page in ``pages``."""
        for page in pages:
            count = self.refcounts[page] + 1
            self.refcounts[page] = count
            if count == 2:
                self._n_shared += 1

    def release(self, pages: Iterable[int]) -> None:
        """Drop one reference per page; free pages return to the free list."""
        for page in pages:
            count = self.refcounts[page] - 1
            if count < 0:
                raise RuntimeError(f"page {page} released more times than retained")
            self.refcounts[page] = count
            if count == 0:
                heapq.heappush(self._free, page)
            elif count == 1:
                self._n_shared -= 1

    def release_table(self, table: PageTable) -> None:
        """Release every page a table maps and reset it to empty."""
        self.release(table.pages)
        table.pages = []
        table.offset = 0
        table.length = 0

    # ------------------------------------------------------------------
    # integrity auditing
    # ------------------------------------------------------------------
    def check_invariants(
        self,
        owners: Sequence[PageTable] | None = None,
        pinned: Iterable[int] = (),
        label: str = "pool",
    ) -> list[str]:
        """Audit the pool's bookkeeping; returns violation strings (empty = clean).

        Internal consistency is always checked: non-negative refcounts, a
        duplicate-free free list containing exactly the refcount-zero pages,
        and the shared-page counter matching the refcounts.  When ``owners``
        is not ``None`` it must be the **complete** enumeration of live page
        tables mapping this pool; together with ``pinned`` (one entry per
        registry pin, duplicates allowed) the per-page reference totals are
        then cross-checked exactly — any mismatch is a leaked or corrupted
        page.  ``label`` prefixes each violation for multi-pool reports.
        """
        violations: list[str] = []
        n_pages = self.n_pages
        refcounts = self.refcounts

        negative = np.flatnonzero(refcounts < 0)
        if negative.size:
            violations.append(f"{label}: negative refcounts at pages {negative.tolist()}")

        free_counts: dict[int, int] = {}
        for page in self._free:
            free_counts[page] = free_counts.get(page, 0) + 1
        for page, count in free_counts.items():
            if not 0 <= page < n_pages:
                violations.append(f"{label}: free-list page {page} out of range")
            elif count > 1:
                violations.append(f"{label}: page {page} on the free list {count} times")
            elif refcounts[page] != 0:
                violations.append(
                    f"{label}: page {page} is free but has refcount {int(refcounts[page])}"
                )
        lost = [
            page
            for page in np.flatnonzero(refcounts == 0).tolist()
            if page not in free_counts
        ]
        if lost:
            violations.append(
                f"{label}: pages {lost} have refcount 0 but are not on the free list"
            )

        n_shared_actual = int((refcounts >= 2).sum())
        if self._n_shared != n_shared_actual:
            violations.append(
                f"{label}: shared-page counter {self._n_shared} != "
                f"{n_shared_actual} pages with refcount >= 2"
            )

        if owners is None:
            return violations

        expected = np.zeros(n_pages, dtype=np.int64)
        for t, table in enumerate(owners):
            if not 0 <= table.offset < max(self.page_size, 1) and table.pages:
                violations.append(
                    f"{label}: table {t} offset {table.offset} outside [0, page_size)"
                )
            if table.length < 0 or table.end > table.allocated(self.page_size):
                violations.append(
                    f"{label}: table {t} spans {table.end} slots but maps only "
                    f"{table.allocated(self.page_size)}"
                )
            for page in table.pages:
                if not 0 <= page < n_pages:
                    violations.append(f"{label}: table {t} maps page {page} out of range")
                else:
                    expected[page] += 1
        for page in pinned:
            if not 0 <= page < n_pages:
                violations.append(f"{label}: pinned page {page} out of range")
            else:
                expected[page] += 1
        mismatched = np.flatnonzero(expected != refcounts)
        for page in mismatched.tolist():
            violations.append(
                f"{label}: page {page} refcount {int(refcounts[page])} != "
                f"{int(expected[page])} live references (tables + pins)"
            )
        return violations

    # ------------------------------------------------------------------
    # slot arithmetic
    # ------------------------------------------------------------------
    def slot_map(self, table: PageTable) -> np.ndarray:
        """Flat pool slot of every live token, shape ``(length,)``."""
        if not table.pages:
            return np.empty(0, dtype=np.int64)
        pages = np.asarray(table.pages, dtype=np.int64)
        slots = (
            pages[:, None] * self.page_size + np.arange(self.page_size)
        ).reshape(-1)
        return slots[table.offset : table.end]

    def token_runs(self, table: PageTable) -> list[tuple[int, int, int]]:
        """Live tokens as maximal physically-contiguous runs.

        Returns ``(logical_start, pool_slot_start, length)`` triples; copying
        run-by-run turns a fragmented table's materialization into a handful
        of slice memcpys instead of an elementwise fancy-index gather.
        """
        ps = self.page_size
        runs: list[tuple[int, int, int]] = []
        logical = 0
        i = 0
        n_pages = len(table.pages)
        while logical < table.length:
            first = table.pages[i]
            within = table.offset if i == 0 else 0
            # Extend across consecutive page ids.
            j = i + 1
            while j < n_pages and table.pages[j] == table.pages[j - 1] + 1:
                j += 1
            span = (j - i) * ps - within
            span = min(span, table.length - logical)
            runs.append((logical, first * ps + within, span))
            logical += span
            i = j
        return runs

    def is_contiguous(self, table: PageTable) -> bool:
        """True when the table's pages form one ascending run of page ids."""
        pages = table.pages
        if len(pages) <= 1:
            return True
        first = pages[0]
        return all(pages[i] == first + i for i in range(1, len(pages)))

    def _exclusive(self, table: PageTable) -> bool:
        if self._n_shared == 0:
            return True
        return all(self.refcounts[page] == 1 for page in table.pages)

    # ------------------------------------------------------------------
    # writes: seed / extend / append
    # ------------------------------------------------------------------
    def _write_span(self, table: PageTable, start: int, array_by_slab) -> None:
        """Write dense per-slab arrays into concatenated-page slots
        ``start .. start + span`` of ``table`` (pages must already exist)."""
        ps = self.page_size
        if self.is_contiguous(table):
            # One slice write per slab — the common case (ascending page run).
            base = self._page_base(table.pages[0]) + start if table.pages else 0
            for slab, data in array_by_slab:
                if slab is None or data is None:
                    continue
                slab[:, base : base + data.shape[1]] = data
            return
        for slab, data in array_by_slab:
            if slab is None or data is None:
                continue
            span = data.shape[1]
            done = 0
            while done < span:
                slot = start + done
                page = table.pages[slot // ps]
                within = slot % ps
                chunk = min(ps - within, span - done)
                base = self._page_base(page) + within
                slab[:, base : base + chunk] = data[:, done : done + chunk]
                done += chunk

    def extend(
        self,
        table: PageTable,
        keys: np.ndarray,
        values: np.ndarray,
        positions: np.ndarray,
        reserve_tokens: int = 0,
    ) -> None:
        """Bulk-append ``keys``/``values`` of shape ``(heads, T, d_head)`` with
        per-head ``positions`` of shape ``(heads, T)`` at the table's end.

        Seeding a fresh table is ``extend`` on an empty one.  ``reserve_tokens``
        pre-allocates capacity beyond the written tokens (the historical
        ``capacity`` constructor argument of the slab caches).
        """
        t = keys.shape[1]
        needed_slots = max(table.end + t, table.offset + reserve_tokens)
        needed_pages = self.pages_for(max(needed_slots, 1))
        if needed_pages > len(table.pages):
            table.pages.extend(self.alloc(needed_pages - len(table.pages)))
        if t == 0:
            return
        start = table.end
        ps = self.page_size
        if table.pages and start < table.allocated(ps):
            # The first written slot lands inside the current last page; COW
            # it if shared (e.g. right after a beam duplicated this table).
            self._copy_on_write(table, start // ps)
        self._store_span(table, start, keys, values, positions)
        table.length += t

    def _store_span(
        self,
        table: PageTable,
        start: int,
        keys: np.ndarray,
        values: np.ndarray,
        positions: np.ndarray,
    ) -> None:
        """Write a dense token span (with eager RoPE rotation) into the pages
        covering slots ``start ..`` of ``table`` — the single write primitive
        :meth:`extend` funnels through, overridden by the quantized pool."""
        k_rot = None
        if self._k_rot is not None:
            k_rot = self.rope_table.rotate(keys, positions)
        self._write_span(
            table,
            start,
            [
                (self._k, keys),
                (self._v, values),
                (self._pos, positions),
                (self._k_rot, k_rot),
            ],
        )

    def _copy_on_write(self, table: PageTable, page_index: int) -> None:
        """Give ``table`` an exclusive copy of its ``page_index``-th page."""
        if self._n_shared == 0:
            return
        page = table.pages[page_index]
        if self.refcounts[page] == 1:
            return
        (fresh,) = self.alloc(1)
        ps = self.page_size
        src, dst = self._page_base(page), self._page_base(fresh)
        for slab in (self._k, self._v, self._pos, self._k_rot):
            if slab is not None:
                slab[:, dst : dst + ps] = slab[:, src : src + ps]
        self._copy_page_state(page, fresh)
        table.pages[page_index] = fresh
        self.release([page])

    def append(self, table: PageTable, k: np.ndarray, v: np.ndarray, position: int) -> None:
        """Append one token (``k``/``v`` of shape ``(heads, d_head)``)."""
        slot = self._append_slot(table)
        self._store_token(slot, k, v, int(position))
        table.length += 1

    def _store_token(self, slot: int, k: np.ndarray, v: np.ndarray, position: int) -> None:
        """Write one token's key/value/position (plus eager rotation) into a
        resolved pool slot — the single-token write primitive shared by
        :meth:`append`, overridden by the quantized pool."""
        self._k[:, slot] = k
        self._v[:, slot] = v
        self._pos[:, slot] = position
        if self._k_rot is not None:
            self._k_rot[:, slot] = self.rope_table.rotate_uniform(k, position)

    def _append_slot(self, table: PageTable) -> int:
        """Flat pool slot for the next appended token (allocates / COWs)."""
        ps = self.page_size
        end = table.end
        if end == table.allocated(ps):
            table.pages.extend(self.alloc(1))
        else:
            self._copy_on_write(table, end // ps)
        page = table.pages[end // ps]
        return self._page_base(page) + end % ps

    def append_rows(
        self,
        tables: Sequence[PageTable],
        k: np.ndarray,
        v: np.ndarray,
        positions: np.ndarray,
    ) -> None:
        """Append one token per table: ``k``/``v`` of shape ``(rows, heads,
        d_head)``, ``positions`` of shape ``(rows,)``.

        Slot resolution is per row (page boundaries differ), but the actual
        slab writes are one vectorized scatter per slab — the steady-state
        decode cost is one indexed write, not a Python loop of copies.
        """
        if not len(tables):
            return
        slots = np.empty(len(tables), dtype=np.int64)
        for i, table in enumerate(tables):
            try:
                slots[i] = self._append_slot(table)
            except Exception as exc:
                # Rows before i already consumed their slot but their length
                # was not bumped; the engine's snapshot/restore quarantine
                # rolls the whole step back, so attribution is all we add.
                tag_fault_row(exc, i)
                raise
        positions = np.asarray(positions, dtype=np.int64)
        self._k[:, slots] = k.transpose(1, 0, 2)
        self._v[:, slots] = v.transpose(1, 0, 2)
        self._pos[:, slots] = positions
        if self._k_rot is not None:
            # Per-row positions; elementwise, so each row is bit-identical to
            # the solo cache's rotate_uniform at that position.
            k_rot = self.rope_table.rotate(k, positions[:, None])
            self._k_rot[:, slots] = k_rot.transpose(1, 0, 2)
        for table in tables:
            table.length += 1

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def gather(self, table: PageTable, indices: np.ndarray) -> int:
        """Retain only the live entries selected by ``indices`` of shape
        ``(heads, K)`` (ascending per head, relative to the live region).

        Fast paths: an identity selection is a no-op; a pure suffix selection
        (all heads keeping exactly the newest ``K`` tokens) bumps the offset
        and frees fully-skipped leading pages without touching any data.  The
        general path compacts through a flat row-gather — into the table's
        own pages when they are exclusively owned, into freshly allocated
        pages when any are shared (copy-on-write).  Returns the number of
        evicted entries.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim == 3:
            indices = indices[0]
        length = table.length
        if indices.shape[0] != self.n_heads:
            raise ValueError(
                f"gather expects ({self.n_heads}, K) indices, got {indices.shape}"
            )
        if indices.size and (indices.min() < 0 or indices.max() >= length):
            raise IndexError("gather indices out of range")
        k = indices.shape[-1]
        dropped = length - k
        ps = self.page_size
        if bool((indices == np.arange(dropped, length)).all()):
            # Identity (dropped == 0) or pure suffix: O(1) pointer bump.
            table.offset += dropped
            table.length = k
            if k == 0:
                self.release_table(table)
            else:
                while table.offset >= ps:
                    self.release([table.pages.pop(0)])
                    table.offset -= ps
            return dropped

        head_offsets = (np.arange(self.n_heads) * self.n_slots)[:, None]
        if self.is_contiguous(table):
            base = self._page_base(table.pages[0]) + table.offset if table.pages else 0
            gidx = (head_offsets + base + indices).reshape(-1)
        else:
            slots = self.slot_map(table)
            gidx = (head_offsets + slots[indices]).reshape(-1)

        data = self._take_all(gidx, k)
        n_needed = self.pages_for(max(k, 1))
        if self._exclusive(table):
            # In-place compaction: keep the first pages, free the tail.
            self.release(table.pages[n_needed:])
            del table.pages[n_needed:]
        else:
            # Allocate the destination before releasing the (shared) source so
            # a failed allocation leaves the table untouched.
            fresh = self.alloc(n_needed)
            self.release(table.pages)
            table.pages = fresh
        table.offset = 0
        table.length = k
        self._write_all(table, data)
        return dropped

    def _take_all(self, gidx: np.ndarray, k: int) -> list[np.ndarray | None]:
        """Gather ``[keys, values, positions, rotated_keys]`` for the flat
        pool-slot indices ``gidx`` (compaction read).  The quantized pool
        overrides this to return *dequantized* keys/values, so eviction
        re-quantizes survivors against fresh per-page ranges."""

        def taken(slab: np.ndarray | None) -> np.ndarray | None:
            """Gather ``gidx`` from one slab (None passes through)."""
            if slab is None:
                return None
            if slab.ndim == 2:
                return slab.reshape(-1).take(gidx).reshape(self.n_heads, k)
            flat = slab.reshape(self.n_heads * self.n_slots, self.d_head)
            return flat.take(gidx, axis=0).reshape(self.n_heads, k, self.d_head)

        return [taken(self._k), taken(self._v), taken(self._pos), taken(self._k_rot)]

    def _write_all(self, table: PageTable, data: list[np.ndarray | None]) -> None:
        """Write the compacted ``[keys, values, positions, rotated_keys]``
        back into ``table``'s (re)allocated pages.  The slab attributes are
        re-read only here: the allocation in :meth:`gather` may have grown the
        pool and rebound them — pairing slabs with the gathered data any
        earlier would write the compaction into orphaned arrays."""
        self._write_span(
            table, 0, zip((self._k, self._v, self._pos, self._k_rot), data)
        )

    def truncate(self, table: PageTable, n: int) -> None:
        """Drop the last ``n`` live tokens (speculative-decode rollback).

        Pure bookkeeping: the logical length shrinks and trailing pages that
        no longer cover any live slot return to the free list (a refcount
        drop — shared owners keep theirs).  Rejected-token *data* is left in
        place; the next append overwrites those slots, copy-on-writing first
        when the page is shared.
        """
        if n == 0:
            return
        if n < 0 or n > table.length:
            raise ValueError(f"cannot truncate {n} of {table.length} tokens")
        table.length -= n
        if table.length == 0:
            self.release_table(table)
            return
        needed = pages_needed(table.end, self.page_size)
        if needed < len(table.pages):
            self.release(table.pages[needed:])
            del table.pages[needed:]

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def token_view(self, table: PageTable, slab: np.ndarray) -> np.ndarray:
        """Dense ``(heads, length, ...)`` of the live tokens.

        Zero-copy slab view when the pages are physically contiguous (the
        attention fast path); a page-gather copy otherwise.
        """
        if table.length == 0:
            return slab[:, :0]
        if self.is_contiguous(table):
            start = self._page_base(table.pages[0]) + table.offset
            return slab[:, start : start + table.length]
        # Fragmented table: assemble from per-run slice copies.  The result
        # must be C-contiguous — NumPy's mixed slice+fancy indexing would
        # return token-major *memory* under a (heads, length, ...) shape, and
        # reduction kernels (einsum, softmax's pairwise sum) pick their
        # blocking from memory layout, bit-diverging from the slab-view fast
        # path.  Run-wise slicing is both layout-correct and a plain memcpy.
        out = np.empty((slab.shape[0], table.length) + slab.shape[2:], dtype=slab.dtype)
        for logical, src, span in self.token_runs(table):
            out[:, logical : logical + span] = slab[:, src : src + span]
        return out

    def keys_view(self, table: PageTable) -> np.ndarray:
        """Dense live (unrotated) keys, shape ``(heads, length, d_head)``."""
        return self.token_view(table, self._k)

    def values_view(self, table: PageTable) -> np.ndarray:
        """Dense live values, shape ``(heads, length, d_head)``."""
        return self.token_view(table, self._v)

    def positions_view(self, table: PageTable) -> np.ndarray:
        """Dense live original positions, shape ``(heads, length)``."""
        return self.token_view(table, self._pos)

    def rotated_view(self, table: PageTable) -> np.ndarray:
        """Dense live RoPE-rotated keys, shape ``(heads, length, d_head)``."""
        if self._k_rot is None:
            raise RuntimeError("rotated-key slab disabled (rope_dims == 0)")
        return self.token_view(table, self._k_rot)

    def fill_row(
        self,
        table: PageTable,
        out_k: np.ndarray,
        out_v: np.ndarray,
        out_pos: np.ndarray,
        rotated: bool,
    ) -> None:
        """Copy one table's live tokens into padded batch buffers
        (``out_*[:, :length]``) — the page-gather read of the batched path."""
        if table.length == 0:
            return
        keys = self._k_rot if rotated else self._k
        for logical, src, span in self.token_runs(table):
            dst = slice(logical, logical + span)
            out_k[:, dst] = keys[:, src : src + span]
            out_v[:, dst] = self._v[:, src : src + span]
            out_pos[:, dst] = self._pos[:, src : src + span]

    def page_tokens_view(
        self, pages: Sequence[int], rotated: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dense ``(heads, n_pages * page_size, d)`` keys/values of full pages
        (used by prefix sharing to hand a mapped prefix to chunked prefill)."""
        probe = PageTable()
        probe.pages = list(pages)
        probe.length = len(probe.pages) * self.page_size
        keys = self.token_view(probe, self._k_rot if rotated else self._k)
        return keys, self.token_view(probe, self._v)


def resolve_pool_class(kv_dtype: str | None) -> type[BlockPool]:
    """Pool implementation for a ``kv_dtype`` knob value.

    ``None`` (or ``"native"``) keeps full-precision pages — the bit-exact
    default every golden test runs on; ``"int8"`` selects the quantized pool
    of :mod:`repro.kvcache.quant` (imported lazily to avoid a cycle).
    """
    if kv_dtype in (None, "native"):
        return BlockPool
    if str(kv_dtype) == "int8":
        from repro.kvcache.quant import QuantizedBlockPool

        return QuantizedBlockPool
    raise ValueError(f"unknown kv_dtype {kv_dtype!r}; expected None, 'native' or 'int8'")


class PagedKVStore:
    """One :class:`BlockPool` per decoder layer plus cross-layer accounting.

    This is the "one store" both cache managers are thin views over.  Layers
    never share pages (their KV contents differ), but they share geometry and
    — through this object — a single notion of free memory that the
    memory-aware scheduler admits against.

    ``kv_dtype`` selects the page storage format: ``None``/``"native"``
    stores the compute dtype bit-exactly, ``"int8"`` stores quantized pages
    (:class:`~repro.kvcache.quant.QuantizedBlockPool`) that shrink KV bytes
    per token roughly 4x at float32 (8x at float64) under an accuracy
    contract documented in ``docs/quantization.md``.

    ``tier0_pages`` enables **tiered KV offload** (see
    :mod:`repro.kvcache.offload`): each layer pool keeps only that many
    pages resident in its tier-0 slabs and spills the cold remainder —
    byte-exactly — to a tier-1 arena selected by ``spill_backend``
    (``"compressed"`` or ``"mmap"``).
    """

    def __init__(
        self,
        n_layers: int,
        n_heads: int,
        d_head: int,
        page_size: int = DEFAULT_PAGE_SIZE,
        dtype: np.dtype | str = np.float64,
        rope_dims: int = 0,
        rope_table: RopeTable | None = None,
        n_pages: int | None = None,
        growable: bool = True,
        kv_dtype: str | None = None,
        admission_policy: str = "lru",
        tier0_pages: int | None = None,
        spill_backend: str | None = None,
    ):
        self.n_layers = n_layers
        self.page_size = int(page_size)
        self.growable = growable
        self.kv_dtype = kv_dtype
        if admission_policy not in ("lru", "wtinylfu"):
            raise ValueError(
                f"unknown admission_policy {admission_policy!r}; "
                "expected 'lru' or 'wtinylfu'"
            )
        #: Reclaim/admission policy a :class:`PrefixRegistry` attached to
        #: this store adopts by default (``"lru"`` keeps the historical
        #: byte-exact leaf-first reclaim; ``"wtinylfu"`` enables
        #: frequency-aware admission — see :mod:`repro.kvcache.admission`).
        self.admission_policy = admission_policy
        if spill_backend is not None and tier0_pages is None:
            raise ValueError(
                "spill_backend requires tier0_pages — KV offload is enabled "
                "by the tier-0 page budget"
            )
        #: Tier-0 frames per layer pool when KV offload is enabled (``None``
        #: keeps every page resident — the historical single-tier layout).
        self.tier0_pages = int(tier0_pages) if tier0_pages is not None else None
        self.spill_backend = spill_backend
        pool_cls = resolve_pool_class(kv_dtype)
        pool_kwargs: dict = {}
        if self.tier0_pages is not None:
            from repro.kvcache.offload import resolve_tiered_pool_class

            pool_cls = resolve_tiered_pool_class(pool_cls)
            pool_kwargs = {
                "tier0_pages": self.tier0_pages,
                "spill_backend": spill_backend,
            }
        self.pools = [
            pool_cls(
                n_heads,
                d_head,
                page_size=page_size,
                n_pages=n_pages if n_pages is not None else 64,
                dtype=dtype,
                rope_dims=rope_dims,
                rope_table=rope_table,
                growable=growable,
                **pool_kwargs,
            )
            for _ in range(n_layers)
        ]

    def pool(self, layer_idx: int) -> BlockPool:
        """The block pool backing decoder layer ``layer_idx``."""
        return self.pools[layer_idx]

    def attach_reclaimer(self, reclaimer: Callable[[int], int]) -> None:
        """Install the prefix registry's reclaim callback on every pool."""
        for pool in self.pools:
            pool.reclaimer = reclaimer

    # ------------------------------------------------------------------
    @staticmethod
    def page_nbytes_for(
        kv_dtype: str | None,
        n_heads: int,
        d_head: int,
        page_size: int,
        dtype: np.dtype | str,
        rope_dims: int,
    ) -> float:
        """Resident bytes of one page for a store that does not exist yet —
        how a byte budget (``max_pool_bytes``) is converted into a page
        count before the pools are built."""
        return resolve_pool_class(kv_dtype).estimate_page_nbytes(
            n_heads, d_head, page_size, dtype, rope_dims
        )

    def pages_for_tokens(self, n_tokens: int) -> int:
        """Pages (per layer) needed to hold ``n_tokens`` token slots."""
        return pages_needed(n_tokens, self.page_size)

    @property
    def total_pages(self) -> int:
        """Pages across all layer pools (free and mapped)."""
        return sum(pool.n_pages for pool in self.pools)

    @property
    def free_pages(self) -> int:
        """Free pages across all layer pools."""
        return sum(pool.free_pages for pool in self.pools)

    @property
    def used_pages(self) -> int:
        """Mapped pages across all layer pools."""
        return sum(pool.used_pages for pool in self.pools)

    @property
    def shared_pages(self) -> int:
        """Multiply-mapped pages across all layer pools."""
        return sum(pool.shared_pages for pool in self.pools)

    def min_free_pages(self) -> int:
        """Free pages in the tightest layer pool (layers evolve symmetrically,
        so this is the admission-relevant number)."""
        return min(pool.free_pages for pool in self.pools)

    def tier0_frames(self) -> int | None:
        """Resident tier-0 frames per layer pool under KV offload, ``None``
        when offload is disabled — the residency budget
        :class:`~repro.serving.scheduler.PagedScheduler` admits rows
        against (admission counts only tier-0 residency)."""
        return self.tier0_pages

    def usage(self) -> dict:
        """Aggregate pool utilization (for demos / telemetry).

        Besides page counts, reports **bytes**: ``bytes_total`` is the
        resident size of every slab (plus quantization state), and
        ``bytes_used`` the share covered by mapped pages — the number that
        makes full-precision and int8 pools comparable under one budget.
        Under KV offload a ``tier`` sub-dict aggregates each pool's
        resident/spilled page counts and spill/restore traffic (see
        :meth:`repro.kvcache.offload._TieredMixin.tier_usage`); the
        single-tier report stays byte-identical to the historical schema.
        """
        page_bytes = sum(pool.page_nbytes() for pool in self.pools) / max(
            self.n_layers, 1
        )
        out = {
            "pages_total": self.total_pages,
            "pages_used": self.used_pages,
            "pages_free": self.free_pages,
            "pages_shared": self.shared_pages,
            "bytes_total": self.nbytes(),
            "bytes_used": int(
                sum(pool.used_pages * pool.page_nbytes() for pool in self.pools)
            ),
            "bytes_per_page": int(page_bytes),
        }
        if self.tier0_pages is not None:
            tier: dict[str, int] = {}
            for pool in self.pools:
                for key, value in pool.tier_usage().items():
                    tier[key] = tier.get(key, 0) + int(value)
            tier["tier0_frames"] = self.tier0_pages  # per layer, not summed
            out["tier"] = tier
        return out

    def nbytes(self) -> int:
        """Resident bytes of all pool slabs — keys, values, rotated keys and
        positions (plus per-page quantization tensors for an int8 store),
        i.e. the sum of every pool's :meth:`BlockPool.nbytes`."""
        return sum(pool.nbytes() for pool in self.pools)

    def check_invariants(
        self,
        owner_tables_per_layer: Sequence[Sequence[PageTable]] | None = None,
        pinned_per_layer: Sequence[Iterable[int]] | None = None,
    ) -> list[str]:
        """Audit every layer pool (see :meth:`BlockPool.check_invariants`).

        ``owner_tables_per_layer[layer]`` enumerates all live page tables
        mapping layer ``layer``; ``pinned_per_layer`` the registry pins
        (typically :meth:`PrefixRegistry.pinned_pages`).  Both may be
        ``None`` to skip the cross-reference check.  Returns the combined
        violation list, each entry labelled with its layer.
        """
        violations: list[str] = []
        for layer, pool in enumerate(self.pools):
            violations.extend(
                pool.check_invariants(
                    owners=(
                        owner_tables_per_layer[layer]
                        if owner_tables_per_layer is not None
                        else None
                    ),
                    pinned=(
                        pinned_per_layer[layer] if pinned_per_layer is not None else ()
                    ),
                    label=f"layer {layer}",
                )
            )
        return violations


def chunk_digest(tokens, parent: bytes | None = None) -> bytes:
    """Process-stable digest of one page-aligned prefix chunk.

    Chains like the registry's chunk keys: pass the previous chunk's digest
    as ``parent`` so a chunk is only ever equal to another chunk behind the
    exact same full prefix.  The digest is ``blake2b`` over the parent digest
    plus the token ids serialized as little-endian int64 — byte-identical
    across processes, platforms and ``PYTHONHASHSEED`` values, which is what
    lets the sharded router (:mod:`repro.serving.sharded`) and every worker's
    own :class:`PrefixRegistry` agree on chunk identity without sharing any
    in-process state.
    """
    h = hashlib.blake2b(digest_size=16)
    if parent is not None:
        h.update(parent)
    arr = np.asarray(tokens, dtype=np.int64).reshape(-1)
    h.update(arr.astype("<i8", copy=False).tobytes())
    return h.digest()


class PrefixMatch:
    """Result of a registry lookup: a mapped page-aligned prompt prefix."""

    __slots__ = ("length", "pages_per_layer")

    def __init__(self, length: int, pages_per_layer: list[list[int]]):
        self.length = length
        self.pages_per_layer = pages_per_layer


class _PrefixChunk:
    __slots__ = ("key", "parent", "pages_per_layer", "children", "last_used")

    def __init__(self, key, parent, pages_per_layer):
        self.key = key
        self.parent = parent
        self.pages_per_layer = pages_per_layer
        self.children: set = set()
        self.last_used = 0


class PrefixRegistry:
    """Content-addressed index of resident page-aligned prompt prefixes.

    Chunks are keyed by a chained :func:`chunk_digest` (the parent chunk's
    digest folded into this chunk's token bytes) so a chunk is only ever
    matched behind its exact full prefix, and the keys are process-stable —
    the sharded front-end hashes the same bytes to pick a replica, so the
    replica a prompt lands on is exactly the one whose registry can already
    hold its prefix.  Each registered
    chunk pins one page per layer (a registry refcount); sequences that
    evict or retire therefore never invalidate a registered prefix — the
    copy-on-write rules in :class:`BlockPool` route their mutations to
    private pages.  When a non-growable pool runs out, :meth:`reclaim` drops
    leaf chunks until enough pages come free: least-recently-used first
    under the default ``"lru"`` admission policy (byte-exact with the
    historical behavior), or by W-TinyLFU competitive admission under
    ``"wtinylfu"`` (see :mod:`repro.kvcache.admission`) — in both cases a
    parent chunk is never dropped while a descendant is live.
    """

    def __init__(self, store: PagedKVStore, admission_policy: str | None = None):
        self.store = store
        self.page_size = store.page_size
        self._chunks: dict[bytes, _PrefixChunk] = {}
        #: Per-layer reverse map page id -> owning chunk key (registration is
        #: 1:1 per layer: each chunk pins exactly one page in every layer and
        #: identical prefixes resolve to the *same* chunk).  Backs the tiered
        #: pools' frequency-aware spill ranking (:meth:`page_heat`).
        self._page_owner: list[dict[int, bytes]] = [
            {} for _ in range(store.n_layers)
        ]
        self._clock = 0
        if admission_policy is None:
            admission_policy = getattr(store, "admission_policy", "lru")
        self.admission_policy = admission_policy
        # Nominal chunk capacity = per-layer pool pages (the most chunks the
        # registry could ever pin); sizes the W-TinyLFU segments and sketch.
        capacity = store.pools[0].n_pages if store.pools else 64
        self._admission = resolve_admission_policy(admission_policy, capacity)
        #: Chunks served from the registry by :meth:`match` (cumulative).
        self.n_hits = 0
        #: Prompt tokens mapped from resident pages instead of recomputed.
        self.n_hit_tokens = 0
        #: Chunks newly registered (cumulative, across reclaim cycles).
        self.n_registered = 0
        #: Chunks dropped under pool pressure (:meth:`reclaim` victims).
        self.n_reclaimed = 0
        store.attach_reclaimer(self.reclaim)

    def __len__(self) -> int:
        return len(self._chunks)

    @staticmethod
    def _chunk_key(parent_key: bytes | None, tokens: np.ndarray) -> bytes:
        return chunk_digest(tokens, parent_key)

    # ------------------------------------------------------------------
    def match(self, token_ids: np.ndarray, max_tokens: int | None = None) -> PrefixMatch | None:
        """Longest registered page-aligned prefix of ``token_ids``.

        ``max_tokens`` caps the usable prefix (the chunked-prefill path must
        recompute at least the last two prompt tokens).  Returns ``None``
        when not even one full page matches.
        """
        token_ids = np.asarray(token_ids).reshape(-1)
        ps = self.page_size
        limit = len(token_ids) if max_tokens is None else min(max_tokens, len(token_ids))
        self._clock += 1
        matched: list[_PrefixChunk] = []
        parent = None
        covered = 0
        while covered + ps <= limit:
            key = self._chunk_key(parent, token_ids[covered : covered + ps])
            chunk = self._chunks.get(key)
            if chunk is None:
                break
            chunk.last_used = self._clock
            matched.append(chunk)
            parent = key
            covered += ps
        if not matched:
            return None
        self.n_hits += len(matched)
        self.n_hit_tokens += covered
        if self._admission is not None:
            for chunk in matched:
                self._admission.on_access(chunk.key)
        pages_per_layer = [
            [chunk.pages_per_layer[layer] for chunk in matched]
            for layer in range(self.store.n_layers)
        ]
        return PrefixMatch(covered, pages_per_layer)

    def register(self, token_ids: np.ndarray, tables: Sequence[PageTable]) -> int:
        """Register every full-page chunk of a freshly seeded prompt.

        ``tables`` holds the sequence's per-layer page tables right after
        seeding (offset 0, pristine prompt content).  Already-known chunks
        are refreshed; new ones pin their page in every layer.  Returns the
        number of newly registered chunks.
        """
        token_ids = np.asarray(token_ids).reshape(-1)
        ps = self.page_size
        n_full = len(token_ids) // ps
        self._clock += 1
        parent = None
        added = 0
        for i in range(n_full):
            key = self._chunk_key(parent, token_ids[i * ps : (i + 1) * ps])
            chunk = self._chunks.get(key)
            if chunk is None:
                pages = [tables[layer].pages[i] for layer in range(self.store.n_layers)]
                for layer, page in enumerate(pages):
                    self.store.pools[layer].retain([page])
                    self._page_owner[layer][page] = key
                chunk = _PrefixChunk(key, parent, pages)
                self._chunks[key] = chunk
                if parent is not None:
                    self._chunks[parent].children.add(key)
                added += 1
                if self._admission is not None:
                    self._admission.on_insert(key)
            elif self._admission is not None:
                self._admission.on_access(key)
            chunk.last_used = self._clock
            parent = key
        self.n_registered += added
        return added

    # ------------------------------------------------------------------
    def _freeable(self, chunk: _PrefixChunk) -> bool:
        """Dropping this chunk returns its page to every layer's free list
        (no live sequence maps it — the registry holds the only reference)."""
        return all(
            self.store.pools[layer].refcounts[page] == 1
            for layer, page in enumerate(chunk.pages_per_layer)
        )

    def reclaimable_pages(self) -> int:
        """Pages per layer that :meth:`reclaim` could free right now.

        Counts only chunks no live sequence maps — dropping a chunk whose
        page is also held by a running row releases the registry pin but
        frees no memory, so it must not count toward admission headroom.
        """
        return sum(1 for chunk in self._chunks.values() if self._freeable(chunk))

    def reclaim(self, n_pages: int) -> int:
        """Drop leaf chunks until ``n_pages`` pages per layer came free (or
        nothing freeable remains).  Returns the number of pages freed per
        layer.

        Freeable leaves go first; when none exist, an unfreeable leaf is
        dropped only if that unblocks a freeable ancestor — chunks that can
        free nothing (their pages are mapped by live rows) are never wasted.
        Victim *ranking* within the eligible set is the admission policy's:
        least-recently-used under ``"lru"`` (byte-exact historical
        behavior), W-TinyLFU competitive admission under ``"wtinylfu"``.
        Only leaves are ever eligible, so a parent chunk can never be
        reclaimed while a descendant is live — under either policy.
        """
        freed = 0
        while freed < n_pages and self._chunks:
            leaves = [c for c in self._chunks.values() if not c.children]
            freeable = [c for c in leaves if self._freeable(c)]
            if freeable:
                victim = self._select_victim(freeable)
                freed += 1
            else:
                blocking = [c for c in leaves if self._has_freeable_ancestor(c)]
                if not blocking:
                    break
                victim = self._select_victim(blocking)
            self._drop(victim)
            self.n_reclaimed += 1
        return freed

    def _select_victim(self, eligible: list) -> _PrefixChunk:
        """Rank the eligible victim set through the admission policy."""
        if self._admission is None:
            return min(eligible, key=lambda c: c.last_used)
        key = self._admission.choose_victim([c.key for c in eligible])
        return self._chunks[key]

    def _has_freeable_ancestor(self, chunk: _PrefixChunk) -> bool:
        key = chunk.parent
        while key is not None:
            parent = self._chunks.get(key)
            if parent is None:
                break
            if self._freeable(parent):
                return True
            key = parent.parent
        return False

    def _drop(self, chunk: _PrefixChunk) -> None:
        if chunk.children:
            # Explicit chain guard, not an iteration-order accident: a parent
            # reclaimed while a descendant is live would leave the child's
            # chained key matchable with its prefix pages gone.
            raise PoolIntegrityError(
                f"refusing to drop chunk {chunk.key.hex()} with "
                f"{len(chunk.children)} live descendant chunk(s)"
            )
        for layer, page in enumerate(chunk.pages_per_layer):
            self.store.pools[layer].release([page])
            self._page_owner[layer].pop(page, None)
        if chunk.parent is not None and chunk.parent in self._chunks:
            self._chunks[chunk.parent].children.discard(chunk.key)
        del self._chunks[chunk.key]
        if self._admission is not None:
            self._admission.on_drop(chunk.key)

    #: Spill-ranking heat by W-TinyLFU segment: protected chunks are the
    #: proven-hot working set, probation next, window (one-shot candidates)
    #: barely above unregistered pages.
    _SEGMENT_HEAT = {"window": 1, "probation": 2, "protected": 3}

    def page_heat(self, layer: int, page: int) -> int:
        """Spill-priority score of ``page`` in ``layer`` (higher = keep
        resident longer).

        Reuses the admission ranking of :mod:`repro.kvcache.admission`: under
        ``"wtinylfu"`` a page pinned by a protected-segment chunk outranks a
        probation chunk's page, which outranks a window chunk's page.  Under
        the default ``"lru"`` policy every page scores 0 and the tiered
        pools fall back to pure pool-level LRU — placement never affects
        decoded values (spill/restore is byte-exact), only transfer counts.
        """
        if self._admission is None:
            return 0
        key = self._page_owner[layer].get(page)
        if key is None:
            return 0
        segment = self._admission.segment_of(key)
        return self._SEGMENT_HEAT.get(segment, 0) if segment is not None else 0

    def spill_ranker(self, layer: int) -> Callable[[int], int]:
        """Victim-ranking callback for ``layer``'s tiered pool (installable
        as :attr:`repro.kvcache.offload._TieredMixin.spill_ranker`)."""
        return lambda page: self.page_heat(layer, page)

    def pinned_pages(self) -> list[list[int]]:
        """Per-layer page ids the registry currently pins (one per chunk).

        Feed this as ``pinned_per_layer`` to
        :meth:`PagedKVStore.check_invariants` so registry refcounts are
        accounted for in the cross-reference audit.
        """
        pinned: list[list[int]] = [[] for _ in range(self.store.n_layers)]
        for chunk in self._chunks.values():
            for layer, page in enumerate(chunk.pages_per_layer):
                pinned[layer].append(page)
        return pinned

    def audit(self) -> list[str]:
        """Structural audit of chunk chains and admission segments.

        Checks that every chunk's parent is still registered and back-links
        it as a child (the reclaim-ordering bug class: a parent reclaimed
        while a descendant is live would break exactly this), that children
        sets reference only live chunks, and — when frequency-aware
        admission is active — that SLRU segment membership matches the
        registered chunk set exactly (every segment entry pins refcounted
        pages, every pinned chunk sits in exactly one segment; see
        :meth:`repro.kvcache.admission.WTinyLFUAdmissionPolicy.audit`).
        Over tiered pools (KV offload) every pinned page must additionally
        be in a definite tier — resident on a tier-0 frame XOR spilled to
        the arena — never lost in between.
        Returns violation strings (empty = clean).
        """
        violations: list[str] = []
        for key, chunk in self._chunks.items():
            if chunk.parent is not None:
                parent = self._chunks.get(chunk.parent)
                if parent is None:
                    violations.append(
                        f"registry: chunk {key.hex()} is live but its parent "
                        f"{chunk.parent.hex()} was reclaimed"
                    )
                elif key not in parent.children:
                    violations.append(
                        f"registry: chunk {key.hex()} not back-linked as a "
                        f"child of {chunk.parent.hex()}"
                    )
            for child in chunk.children:
                if child not in self._chunks:
                    violations.append(
                        f"registry: chunk {key.hex()} lists reclaimed child "
                        f"{child.hex()}"
                    )
            for layer, page in enumerate(chunk.pages_per_layer):
                tier_state = getattr(self.store.pools[layer], "tier_page_state", None)
                if tier_state is not None and tier_state(page) == "free":
                    violations.append(
                        f"registry: layer {layer} chunk {key.hex()} pins page "
                        f"{page} that is neither resident nor spilled"
                    )
        if self._admission is not None:
            violations.extend(self._admission.audit(self._chunks.keys()))
        return violations

    def telemetry(self) -> dict:
        """Registry hit/savings counters, plus admission counters when the
        ``"wtinylfu"`` policy is active (see
        :meth:`repro.kvcache.admission.WTinyLFUAdmissionPolicy.telemetry`)."""
        out = {
            "policy": self.admission_policy,
            "chunks": len(self._chunks),
            "hits": self.n_hits,
            "hit_tokens": self.n_hit_tokens,
            "registered": self.n_registered,
            "reclaimed": self.n_reclaimed,
        }
        if self._admission is not None:
            out.update(self._admission.telemetry())
        return out

    def clear(self) -> None:
        """Drop every registered chunk (leaf-first), releasing all pins."""
        for chunk in list(self._chunks.values()):
            if not chunk.children:
                self._drop(chunk)
        if self._chunks:
            self.clear()
