"""Int8-quantized paged KV storage: shrink resident pages, keep the API.

The paper's thesis is that KV-cache memory bounds generative inference; the
paged :class:`~repro.kvcache.paged.BlockPool` (PR 3) already treats free
pages as the admission currency, but every page still stores full-precision
keys/values.  :class:`QuantizedBlockPool` attacks the same bottleneck from
the *representation* side — and composes with token eviction: the eviction
policies shrink how many tokens survive, quantization shrinks what each
survivor costs.

Storage format
--------------
Each slab that holds floating-point content (keys, values and — for RoPE
models — the eagerly rotated keys) is stored as an **int8 token-major slab**
of codes in ``[-127, 127]``, with affine dequantization parameters kept
**per page, per head** in float32 tensors of shape ``(n_pages, n_heads)``::

    x_hat = code * scale[page, head] + zero[page, head]

``scale``/``zero`` are derived from a running per-page/per-head value range
``[lo, hi]``: ``scale = (hi - lo) / 254`` and ``zero = (hi + lo) / 2``, so
the extremes map to ±127 and every stored element satisfies
``|x - x_hat| <= scale / 2``.  Positions stay int64 — they are exact by
construction.

Write protocol
--------------
* A **fresh page** (allocation resets its range to empty) quantizes its
  first span directly.
* An **append into a partially filled page** widens the running range only
  when the new token falls outside it; widening re-encodes the page's
  resident codes under the new parameters (re-rounding each at most once per
  widening — dequantize-then-encode is the identity when parameters are
  unchanged).
* **Eviction** (:meth:`BlockPool.gather`) dequantizes the survivors and
  re-quantizes them against *fresh* destination-page ranges, so a page's
  range tracks the live content instead of ratcheting ever wider.  The
  suffix fast path stays pure bookkeeping — untouched pages keep their
  codes and parameters bit-for-bit.
* **Copy-on-write** copies codes *and* parameters, so a forked sequence
  dequantizes identically to its source until it actually diverges.

Determinism contract
--------------------
Quantization is a pure function of the write history (values and the order
and grouping of writes), never of physical page ids.  Two sequences that
perform the same appends/extends/evictions therefore hold bit-identical
dequantized views — which is why batched int8 serving, preemption-restart
and table fork/rollback reproduce solo int8 decoding exactly (pinned by the
schedule-equivalence tests).  What int8 mode does *not* preserve is
bit-equality with full-precision decoding; that accuracy delta is measured
by the pinned quantization benchmarks and documented in
``docs/quantization.md``.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.kvcache.paged import BlockPool, PageTable, tag_fault_row

__all__ = ["QuantizedBlockPool", "QMAX", "QUANT_STEPS"]

#: Largest code magnitude stored in the int8 slabs (codes live in [-QMAX, QMAX]).
QMAX = 127
#: Quantization steps spanning a page's [lo, hi] value range.
QUANT_STEPS = 2 * QMAX


class QuantizedBlockPool(BlockPool):
    """A :class:`BlockPool` whose K/V pages are int8 codes + per-page scales.

    Drop-in for the full-precision pool: every write path (``extend`` /
    ``append`` / ``append_rows`` / ``gather`` compaction / copy-on-write)
    quantizes through the storage hooks of the base class, and every read
    path (``keys_view`` / ``values_view`` / ``rotated_view`` / ``fill_row``
    / ``page_tokens_view``) materializes **dequantized** tensors in the
    pool's compute ``dtype`` — so :class:`~repro.kvcache.cache.LayerKVCache`,
    :class:`~repro.kvcache.batch.BatchedLayerKVCache`, prefix sharing,
    truncate/fork rollback and the attention kernels run unchanged.  The one
    structural difference from the base pool: reads are always page-gather
    copies (there is no zero-copy dequantized view of int8 codes).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        names = ["k", "v"] + (["kr"] if self._k_rot is not None else [])
        self._qnames: tuple[str, ...] = tuple(names)
        shape = (self.n_pages, self.n_heads)
        self._qscale = {n: np.ones(shape, dtype=np.float32) for n in names}
        self._qzero = {n: np.zeros(shape, dtype=np.float32) for n in names}
        self._qlo = {n: np.full(shape, np.inf, dtype=np.float32) for n in names}
        self._qhi = {n: np.full(shape, -np.inf, dtype=np.float32) for n in names}

    # ------------------------------------------------------------------
    # base-class storage hooks
    # ------------------------------------------------------------------
    def _storage_dtype(self) -> np.dtype:
        """Slabs hold int8 codes; ``self.dtype`` stays the compute dtype."""
        return np.dtype(np.int8)

    def _grow_page_state(self, n_pages: int) -> None:
        """Grow the per-page quantization tensors alongside the slabs."""
        for store, fill in (
            (self._qscale, 1.0),
            (self._qzero, 0.0),
            (self._qlo, np.inf),
            (self._qhi, -np.inf),
        ):
            for name, arr in store.items():
                extra = np.full(
                    (n_pages - arr.shape[0], self.n_heads), fill, dtype=np.float32
                )
                store[name] = np.concatenate([arr, extra])

    def _copy_page_state(self, src_page: int, dst_page: int) -> None:
        """Copy-on-write: the copied codes dequantize with the same params."""
        for store in (self._qscale, self._qzero, self._qlo, self._qhi):
            for arr in store.values():
                arr[dst_page] = arr[src_page]

    def alloc(self, n: int) -> list[int]:
        """Allocate pages with their quantization ranges reset to empty."""
        pages = super().alloc(n)
        self._reset_page_params(pages)
        return pages

    # ------------------------------------------------------------------
    # quantization primitives
    # ------------------------------------------------------------------
    def _qslab(self, name: str) -> np.ndarray:
        """The int8 slab a quantized-stream name refers to."""
        return {"k": self._k, "v": self._v, "kr": self._k_rot}[name]

    def _page_of_slot(self, slots):
        """Hook: logical page id(s) owning flat slab slot(s) — the inverse of
        :meth:`~repro.kvcache.paged.BlockPool._page_base`.  Plain page
        arithmetic here; the tiered pool maps slab *frames* back to logical
        pages, because quantization parameters are indexed by logical page
        while the slabs are indexed by frame.  Accepts a scalar or an int64
        array (vectorized compaction reads)."""
        return slots // self.page_size

    def _reset_page_params(self, pages: Sequence[int]) -> None:
        """Mark ``pages`` as empty: unit scale, zero offset, empty range."""
        if not len(pages):
            return
        idx = np.asarray(pages, dtype=np.int64)
        for name in self._qnames:
            self._qscale[name][idx] = 1.0
            self._qzero[name][idx] = 0.0
            self._qlo[name][idx] = np.inf
            self._qhi[name][idx] = -np.inf

    @staticmethod
    def _params_from(lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Affine (scale, zero) mapping ``[lo, hi]`` onto codes ``[-127, 127]``
        per head; a degenerate (constant) range gets unit scale so the
        constant round-trips exactly through ``zero``."""
        span = hi - lo
        scale = np.where(span > 0, span / QUANT_STEPS, 1.0).astype(np.float32)
        zero = ((hi + lo) * 0.5).astype(np.float32)
        return scale, zero

    @staticmethod
    def _encode(data: np.ndarray, scale: np.ndarray, zero: np.ndarray) -> np.ndarray:
        """Quantize ``(heads, T, d)`` floats to int8 codes with per-head params."""
        codes = np.rint((data - zero[:, None, None]) / scale[:, None, None])
        return np.clip(codes, -QMAX, QMAX).astype(np.int8)

    def _decode(self, codes: np.ndarray, scale: np.ndarray, zero: np.ndarray) -> np.ndarray:
        """Dequantize ``(heads, T, d)`` int8 codes into the compute dtype."""
        return codes.astype(self.dtype) * scale[:, None, None] + zero[:, None, None]

    def _quantize_into(self, name: str, page: int, within: int, data: np.ndarray) -> None:
        """Quantize ``data`` of shape ``(heads, c, d)`` into slots
        ``within .. within + c`` of ``page``, widening the page's running
        range first when the new values fall outside it (which re-encodes the
        page's resident codes under the widened parameters — a no-op for
        heads whose parameters are unchanged)."""
        slab = self._qslab(name)
        scale, zero = self._qscale[name], self._qzero[name]
        lo, hi = self._qlo[name], self._qhi[name]
        dmin = data.min(axis=(1, 2)).astype(np.float32)
        dmax = data.max(axis=(1, 2)).astype(np.float32)
        new_lo = np.minimum(lo[page], dmin)
        new_hi = np.maximum(hi[page], dmax)
        ps = self.page_size
        base = self._page_base(page)
        if (new_lo < lo[page]).any() or (new_hi > hi[page]).any():
            new_scale, new_zero = self._params_from(new_lo, new_hi)
            if np.isfinite(lo[page]).any():
                resident = self._decode(
                    slab[:, base : base + ps], scale[page], zero[page]
                )
                slab[:, base : base + ps] = self._encode(resident, new_scale, new_zero)
            scale[page], zero[page] = new_scale, new_zero
            lo[page], hi[page] = new_lo, new_hi
        slab[:, base + within : base + within + data.shape[1]] = self._encode(
            data, scale[page], zero[page]
        )

    def _quant_write_span(
        self, name: str, table: PageTable, start: int, data: np.ndarray
    ) -> None:
        """Quantize a dense ``(heads, T, d)`` span into the pages covering
        concatenated slots ``start .. start + T`` of ``table``."""
        ps = self.page_size
        span = data.shape[1]
        done = 0
        while done < span:
            slot = start + done
            page = table.pages[slot // ps]
            within = slot % ps
            chunk = min(ps - within, span - done)
            self._quantize_into(name, page, within, data[:, done : done + chunk])
            done += chunk

    # ------------------------------------------------------------------
    # write hooks
    # ------------------------------------------------------------------
    def _store_span(
        self,
        table: PageTable,
        start: int,
        keys: np.ndarray,
        values: np.ndarray,
        positions: np.ndarray,
    ) -> None:
        """Quantized bulk write: positions land exactly, K/V (and eagerly
        rotated keys) are quantized page by page."""
        self._write_span(table, start, [(self._pos, positions)])
        self._quant_write_span("k", table, start, np.asarray(keys))
        self._quant_write_span("v", table, start, np.asarray(values))
        if self._k_rot is not None:
            self._quant_write_span(
                "kr", table, start, self.rope_table.rotate(keys, positions)
            )

    def _store_token(self, slot: int, k: np.ndarray, v: np.ndarray, position: int) -> None:
        """Quantized single-token write into a resolved pool slot."""
        ps = self.page_size
        page, within = self._page_of_slot(slot), slot % ps
        self._pos[:, slot] = position
        k = np.asarray(k)
        self._quantize_into("k", page, within, k[:, None, :])
        self._quantize_into("v", page, within, np.asarray(v)[:, None, :])
        if self._k_rot is not None:
            k_rot = self.rope_table.rotate_uniform(k, position)
            self._quantize_into("kr", page, within, k_rot[:, None, :])

    def append_rows(
        self,
        tables: Sequence[PageTable],
        k: np.ndarray,
        v: np.ndarray,
        positions: np.ndarray,
    ) -> None:
        """Append one token per table, quantizing row by row.

        The base pool's vectorized scatter assumes it can write raw values;
        quantized appends must update each destination page's running range,
        so this runs the same per-row ``_store_token`` the solo cache uses —
        keeping batched int8 serving bit-identical to solo int8 decoding.
        """
        if not len(tables):
            return
        positions = np.asarray(positions, dtype=np.int64)
        for i, table in enumerate(tables):
            try:
                slot = self._append_slot(table)
                self._store_token(slot, k[i], v[i], int(positions[i]))
            except Exception as exc:
                tag_fault_row(exc, i)
                raise
            table.length += 1

    # ------------------------------------------------------------------
    # integrity auditing
    # ------------------------------------------------------------------
    def check_invariants(
        self,
        owners: Sequence[PageTable] | None = None,
        pinned: Sequence[int] = (),
        label: str = "pool",
    ) -> list[str]:
        """Base-pool audit plus the quantization-state invariants.

        For every quantized stream: the four per-page parameter tensors keep
        shape ``(n_pages, n_heads)`` (they must grow in lockstep with the
        slabs), every tracked range is either empty (``lo=+inf, hi=-inf``,
        the post-``alloc`` reset state) or finite with ``lo <= hi``, scales
        are finite and positive, and ``(scale, zero)`` equal the pure
        recomputation :meth:`_params_from` of the running range — the
        determinism contract says parameters are a function of the range,
        never of stale history.
        """
        violations = super().check_invariants(owners=owners, pinned=pinned, label=label)
        shape = (self.n_pages, self.n_heads)
        for name in self._qnames:
            scale, zero = self._qscale[name], self._qzero[name]
            lo, hi = self._qlo[name], self._qhi[name]
            for tensor_name, tensor in (
                ("scale", scale), ("zero", zero), ("lo", lo), ("hi", hi)
            ):
                if tensor.shape != shape:
                    violations.append(
                        f"{label}: quant {name}/{tensor_name} shape "
                        f"{tensor.shape} != slab page count {shape}"
                    )
            if any(t.shape != shape for t in (scale, zero, lo, hi)):
                continue  # elementwise checks below assume aligned shapes
            empty = np.isinf(lo) & np.isinf(hi) & (lo > 0) & (hi < 0)
            tracked = ~empty
            bad_range = tracked & ~(np.isfinite(lo) & np.isfinite(hi) & (lo <= hi))
            for page in np.flatnonzero(bad_range.any(axis=1)).tolist():
                violations.append(
                    f"{label}: quant {name} page {page} range is neither empty "
                    "nor a finite lo <= hi interval"
                )
            bad_scale = ~(np.isfinite(scale) & (scale > 0))
            for page in np.flatnonzero(bad_scale.any(axis=1)).tolist():
                violations.append(
                    f"{label}: quant {name} page {page} has non-finite or "
                    "non-positive scale"
                )
            if tracked.any():
                with np.errstate(invalid="ignore", over="ignore"):
                    want_scale, want_zero = self._params_from(lo, hi)
                stale = tracked & (
                    (scale != want_scale) | (zero != want_zero)
                )
                for page in np.flatnonzero(stale.any(axis=1)).tolist():
                    violations.append(
                        f"{label}: quant {name} page {page} (scale, zero) do not "
                        "match recomputation from its running [lo, hi] range"
                    )
        return violations

    # ------------------------------------------------------------------
    # eviction hooks
    # ------------------------------------------------------------------
    def _take_all(self, gidx: np.ndarray, k: int) -> list[np.ndarray | None]:
        """Compaction read: gather codes, then dequantize keys/values (and
        rotated keys) with each element's own page/head parameters."""
        data = super()._take_all(gidx, k)
        heads = gidx // self.n_slots
        pages = self._page_of_slot(gidx % self.n_slots)
        for i, name in ((0, "k"), (1, "v"), (3, "kr")):
            if i >= len(data) or data[i] is None or name not in self._qnames:
                continue
            scale = self._qscale[name][pages, heads].reshape(self.n_heads, k, 1)
            zero = self._qzero[name][pages, heads].reshape(self.n_heads, k, 1)
            data[i] = data[i].astype(self.dtype) * scale + zero
        return data

    def _write_all(self, table: PageTable, data: list[np.ndarray | None]) -> None:
        """Compaction write: survivors are re-quantized against fresh
        destination-page ranges (the destination pages hold only the
        compacted content, so their ranges never ratchet wider)."""
        keys, values, positions, k_rot = data
        self._reset_page_params(table.pages)
        self._write_span(table, 0, [(self._pos, positions)])
        self._quant_write_span("k", table, 0, keys)
        self._quant_write_span("v", table, 0, values)
        if k_rot is not None:
            self._quant_write_span("kr", table, 0, k_rot)

    # ------------------------------------------------------------------
    # reads (always dequantizing page-gather copies)
    # ------------------------------------------------------------------
    def _page_chunks(self, table: PageTable) -> Iterator[tuple[int, int, int, int]]:
        """Yield ``(logical_start, page, within, length)`` chunks covering the
        live region page by page (parameters are per page, so reads cannot
        batch across page boundaries the way the base pool's runs do)."""
        ps = self.page_size
        logical = 0
        while logical < table.length:
            slot = table.offset + logical
            page = table.pages[slot // ps]
            within = slot % ps
            chunk = min(ps - within, table.length - logical)
            yield logical, page, within, chunk
            logical += chunk

    def _dequant_view(self, table: PageTable, name: str) -> np.ndarray:
        """Dense dequantized ``(heads, length, d_head)`` of the live tokens."""
        slab = self._qslab(name)
        scale, zero = self._qscale[name], self._qzero[name]
        out = np.empty((self.n_heads, table.length, self.d_head), dtype=self.dtype)
        for logical, page, within, chunk in self._page_chunks(table):
            base = self._page_base(page) + within
            out[:, logical : logical + chunk] = self._decode(
                slab[:, base : base + chunk], scale[page], zero[page]
            )
        return out

    def keys_view(self, table: PageTable) -> np.ndarray:
        """Dequantized live keys, shape ``(heads, length, d_head)``."""
        return self._dequant_view(table, "k")

    def values_view(self, table: PageTable) -> np.ndarray:
        """Dequantized live values, shape ``(heads, length, d_head)``."""
        return self._dequant_view(table, "v")

    def rotated_view(self, table: PageTable) -> np.ndarray:
        """Dequantized live rotated keys, shape ``(heads, length, d_head)``."""
        if self._k_rot is None:
            raise RuntimeError("rotated-key slab disabled (rope_dims == 0)")
        return self._dequant_view(table, "kr")

    def fill_row(
        self,
        table: PageTable,
        out_k: np.ndarray,
        out_v: np.ndarray,
        out_pos: np.ndarray,
        rotated: bool,
    ) -> None:
        """Dequantize one table's live tokens into padded batch buffers
        (the page-gather read of the batched serving path)."""
        if table.length == 0:
            return
        kname = "kr" if rotated else "k"
        kslab = self._qslab(kname)
        for logical, page, within, chunk in self._page_chunks(table):
            base = self._page_base(page) + within
            dst = slice(logical, logical + chunk)
            out_k[:, dst] = self._decode(
                kslab[:, base : base + chunk],
                self._qscale[kname][page],
                self._qzero[kname][page],
            )
            out_v[:, dst] = self._decode(
                self._v[:, base : base + chunk],
                self._qscale["v"][page],
                self._qzero["v"][page],
            )
            out_pos[:, dst] = self._pos[:, base : base + chunk]

    def page_tokens_view(
        self, pages: Sequence[int], rotated: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dequantized keys/values of full pages (prefix-sharing read).

        Unlike the full-precision pool this is necessarily a copy, and the
        chunked-prefill attention over it sees dequantized — not exact —
        prefix KV; see the accuracy contract in ``docs/quantization.md``.
        """
        probe = PageTable()
        probe.pages = list(pages)
        probe.length = len(probe.pages) * self.page_size
        keys = self._dequant_view(probe, "kr" if rotated else "k")
        return keys, self._dequant_view(probe, "v")

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def kv_token_nbytes(self) -> float:
        """Key+value bytes per cached token: int8 codes plus the amortized
        per-page float32 ``(scale, zero)`` pairs of the K and V streams."""
        codes = 2 * self.n_heads * self.d_head
        params = 2 * self.n_heads * 2 * 4 / self.page_size
        return float(codes + params)

    @classmethod
    def estimate_page_nbytes(
        cls,
        n_heads: int,
        d_head: int,
        page_size: int,
        dtype: np.dtype | str,
        rope_dims: int,
    ) -> float:
        """Resident bytes of one quantized page: int8 code slabs, int64
        positions, and the four float32 per-head parameter rows (scale,
        zero, lo, hi) of every quantized stream.  ``dtype`` (the compute
        dtype) does not matter — that is the point."""
        slabs = 2 + (1 if rope_dims > 0 else 0)
        per_slot = n_heads * (slabs * d_head * 1 + 8)
        params = slabs * n_heads * 4 * 4
        return float(page_size * per_slot + params)

    def nbytes(self) -> int:
        """Resident bytes: int8 slabs + positions + quantization tensors."""
        total = super().nbytes()
        for store in (self._qscale, self._qzero, self._qlo, self._qhi):
            total += sum(arr.nbytes for arr in store.values())
        return total
