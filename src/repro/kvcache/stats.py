"""Cache occupancy and data-movement accounting.

The statistics collected here feed the analytical performance model
(:mod:`repro.perfmodel`): the number of KV entries read at every decoding
step determines the KV-cache data movement that dominates generation latency
in the paper's Figure 1/10 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CacheStats"]


@dataclass
class CacheStats:
    """Aggregated statistics over one generation run."""

    n_layers: int = 0
    n_heads: int = 0
    d_head: int = 0
    batch_size: int = 0
    prompt_len: int = 0
    #: cache length (per layer, per step) observed when attending
    lengths_per_step: list[list[int]] = field(default_factory=list)
    total_appended: int = 0
    total_evicted: int = 0
    #: Actual key+value storage bytes per cached token (all heads), as
    #: reported by the backing pool's ``kv_token_nbytes`` — the storage
    #: dtype's size for full-precision pools, int8 codes plus amortized
    #: per-page scales for quantized ones.  0 means "not attached to a
    #: store", in which case only the analytic fp16 numbers are reported.
    kv_token_bytes: float = 0.0

    def record_step(self, lengths: list[int]) -> None:
        """Record the per-layer cache length used at one decoding step."""
        self.lengths_per_step.append(list(lengths))

    def record_backdated_steps(self, final_lengths: list[int], n_steps: int) -> None:
        """Record ``n_steps`` steps leading up to ``final_lengths``.

        The speculative verify commit records its accepted tokens after the
        fact: a no-eviction cache held exactly ``n_steps - 1 - i`` fewer
        tokens at committed step ``i`` than it does now.  Shared by the solo
        and batched managers so the back-dating arithmetic lives once.
        """
        for i in range(n_steps):
            self.record_step(
                [length - (n_steps - 1 - i) for length in final_lengths]
            )

    # ------------------------------------------------------------------
    @property
    def n_steps(self) -> int:
        """Number of decoding steps recorded so far."""
        return len(self.lengths_per_step)

    def mean_cache_length(self) -> float:
        """Average number of cached tokens attended per layer per step."""
        if not self.lengths_per_step:
            return 0.0
        return float(np.mean([np.mean(step) for step in self.lengths_per_step]))

    def peak_cache_length(self) -> int:
        """Largest per-layer cache length observed."""
        if not self.lengths_per_step:
            return 0
        return int(max(max(step) for step in self.lengths_per_step))

    def kv_entries_read(self) -> int:
        """Total KV entries read across all layers and steps (per batch element)."""
        return int(sum(sum(step) for step in self.lengths_per_step))

    def kv_bytes_read(self, dtype_bytes: int = 2) -> int:
        """Total bytes of KV data moved during generation (keys + values)."""
        per_entry = 2 * self.n_heads * self.d_head * dtype_bytes
        return self.kv_entries_read() * per_entry * max(self.batch_size, 1)

    def peak_kv_bytes(self, dtype_bytes: int = 2) -> int:
        """Peak resident KV-cache size in bytes across all layers."""
        per_entry = 2 * self.n_heads * self.d_head * dtype_bytes
        return (
            self.peak_cache_length()
            * per_entry
            * self.n_layers
            * max(self.batch_size, 1)
        )

    def eviction_rate(self) -> float:
        """Fraction of appended tokens that were eventually evicted."""
        if self.total_appended == 0:
            return 0.0
        return self.total_evicted / self.total_appended

    def kv_bytes_read_actual(self) -> int:
        """Total bytes of KV data moved during generation at the *actual*
        storage cost per token (0 when no store was attached)."""
        return int(self.kv_entries_read() * self.kv_token_bytes * max(self.batch_size, 1))

    def peak_kv_bytes_actual(self) -> int:
        """Peak resident KV bytes at the actual storage cost per token
        (0 when no store was attached)."""
        return int(
            self.peak_cache_length()
            * self.kv_token_bytes
            * self.n_layers
            * max(self.batch_size, 1)
        )

    def summary(self) -> dict:
        """Dictionary summary for experiment reports.

        ``kv_bytes_read_fp16`` keeps the paper's analytic fp16 convention;
        the ``*_actual`` entries report what the backing store really moved
        and held (and therefore shrink under ``kv_dtype="int8"``).
        """
        out = {
            "n_steps": self.n_steps,
            "mean_cache_length": self.mean_cache_length(),
            "peak_cache_length": self.peak_cache_length(),
            "kv_entries_read": self.kv_entries_read(),
            "kv_bytes_read_fp16": self.kv_bytes_read(2),
            "eviction_rate": self.eviction_rate(),
        }
        if self.kv_token_bytes:
            out["kv_token_bytes"] = self.kv_token_bytes
            out["kv_bytes_read_actual"] = self.kv_bytes_read_actual()
            out["peak_kv_bytes_actual"] = self.peak_kv_bytes_actual()
        return out
