"""Evaluation metrics: ROUGE, perplexity, multiple-choice accuracy, attention statistics."""

from repro.metrics.rouge import RougeScore, rouge_n, rouge_l, rouge_all, aggregate_rouge
from repro.metrics.perplexity import sequence_perplexity, corpus_perplexity
from repro.metrics.accuracy import multiple_choice_accuracy
from repro.metrics.attention_stats import (
    attention_sparsity,
    attention_score_cdf,
    cumulative_attention_mass,
    head_sparsity_by_threshold,
)

__all__ = [
    "RougeScore",
    "rouge_n",
    "rouge_l",
    "rouge_all",
    "aggregate_rouge",
    "sequence_perplexity",
    "corpus_perplexity",
    "multiple_choice_accuracy",
    "attention_sparsity",
    "attention_score_cdf",
    "cumulative_attention_mass",
    "head_sparsity_by_threshold",
]
