"""Multiple-choice accuracy (the lm-eval-harness protocol used in Table 2)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["multiple_choice_accuracy", "pick_option"]


def pick_option(
    option_log_likelihoods: Sequence[float], normalize_by_length: Sequence[int] | None = None
) -> int:
    """Index of the best-scoring option.

    When ``normalize_by_length`` is provided the log-likelihoods are divided
    by the option token counts (length-normalized scoring, as lm-eval-harness
    does for its ``acc_norm`` metric).
    """
    scores = np.asarray(option_log_likelihoods, dtype=np.float64)
    if scores.size == 0:
        raise ValueError("need at least one option")
    if normalize_by_length is not None:
        lengths = np.asarray(normalize_by_length, dtype=np.float64)
        if lengths.shape != scores.shape:
            raise ValueError("lengths must align with option scores")
        scores = scores / np.maximum(lengths, 1.0)
    return int(np.argmax(scores))


def multiple_choice_accuracy(
    predictions: Sequence[int], answers: Sequence[int]
) -> float:
    """Percentage of items where the predicted option matches the answer."""
    predictions = np.asarray(predictions)
    answers = np.asarray(answers)
    if predictions.shape != answers.shape:
        raise ValueError("predictions and answers must align")
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of zero items")
    return float(100.0 * np.mean(predictions == answers))
