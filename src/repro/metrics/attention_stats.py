"""Attention statistics: sparsity, score CDF and cumulative attention mass.

These reproduce the analysis behind Figures 3a/3b (attention sparsity per
layer and the CDF showing that ~90 % of attention mass concentrates on a
small fraction of tokens) and Figure 11 (sparsity as a function of a
threshold expressed as a percentage of the per-row maximum score).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "attention_sparsity",
    "head_sparsity_by_threshold",
    "attention_score_cdf",
    "cumulative_attention_mass",
]


def _validate_attention(attn: np.ndarray) -> np.ndarray:
    attn = np.asarray(attn, dtype=np.float64)
    if attn.ndim != 4:
        raise ValueError(f"expected attention of shape (B, H, T, T), got {attn.shape}")
    return attn


def attention_sparsity(attn: np.ndarray, threshold: float = 0.0) -> float:
    """Fraction (%) of causal attention entries at or below ``threshold``.

    ``threshold`` is expressed as a fraction of each query row's maximum
    attention weight (0 counts exact zeros only, like the paper's Figure 3a).
    Entries above the causal diagonal are excluded from the statistic.
    """
    attn = _validate_attention(attn)
    b, h, t, _ = attn.shape
    causal = np.tril(np.ones((t, t), dtype=bool))
    row_max = attn.max(axis=-1, keepdims=True)
    cutoff = row_max * threshold
    below = (attn <= np.maximum(cutoff, 1e-12)) & causal[None, None]
    return float(100.0 * below.sum() / (b * h * causal.sum()))


def head_sparsity_by_threshold(
    attn_per_layer: Sequence[np.ndarray], thresholds: Sequence[float]
) -> dict[float, list[float]]:
    """Per-layer sparsity for several thresholds (Figure 11).

    Returns ``{threshold: [sparsity_layer0, sparsity_layer1, ...]}``.
    """
    return {
        float(th): [attention_sparsity(attn, th) for attn in attn_per_layer]
        for th in thresholds
    }


def cumulative_attention_mass(attn: np.ndarray, fractions: Sequence[float]) -> list[float]:
    """Average attention mass captured by the top ``fraction`` of tokens.

    For every query row, tokens are sorted by attention weight and the mass of
    the top ``fraction·T`` tokens is accumulated; the result is averaged over
    rows, heads and batch.  This is the quantity plotted in Figure 3b: with 40
    % of the tokens one captures ≈90 % of the attention mass.
    """
    attn = _validate_attention(attn)
    b, h, t, _ = attn.shape
    results = []
    # Sort each row's attention descending once.
    sorted_attn = -np.sort(-attn, axis=-1)
    cumsum = np.cumsum(sorted_attn, axis=-1)
    totals = np.maximum(cumsum[..., -1], 1e-12)
    for fraction in fractions:
        k = int(np.ceil(float(fraction) * t))
        k = min(max(k, 1), t)
        mass = cumsum[..., k - 1] / totals
        # Only consider rows with at least k valid (causal) entries to avoid
        # trivially saturated short rows dominating the average.
        row_valid = np.arange(t) + 1 >= k
        results.append(float(mass[..., row_valid].mean()))
    return results


def attention_score_cdf(attn: np.ndarray, n_points: int = 9) -> tuple[list[float], list[float]]:
    """(fractions, cumulative mass) pairs — the Figure 3b curve."""
    fractions = [(i + 1) / (n_points + 1) for i in range(n_points)]
    return fractions, cumulative_attention_mass(attn, fractions)
