"""Perplexity metrics."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.models.tensor_ops import log_softmax

__all__ = ["sequence_perplexity", "corpus_perplexity"]


def sequence_perplexity(logits: np.ndarray, targets: Sequence[int]) -> float:
    """Perplexity of one sequence given per-position logits ``(T, vocab)``.

    ``targets[t]`` is the token that should follow position ``t``; positions
    with target ``-100`` are ignored.
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets)
    if logits.ndim != 2 or logits.shape[0] != targets.shape[0]:
        raise ValueError("logits must be (T, vocab) aligned with targets")
    mask = targets != -100
    if not mask.any():
        raise ValueError("no valid targets")
    logp = log_softmax(logits, axis=-1)
    picked = logp[np.arange(len(targets))[mask], targets[mask]]
    return float(np.exp(-picked.mean()))


def corpus_perplexity(log_likelihoods: Iterable[float], token_counts: Iterable[int]) -> float:
    """Corpus-level perplexity from per-sequence log-likelihoods and token counts."""
    lls = np.asarray(list(log_likelihoods), dtype=np.float64)
    counts = np.asarray(list(token_counts), dtype=np.float64)
    if lls.shape != counts.shape or lls.size == 0:
        raise ValueError("log_likelihoods and token_counts must be equal-length and non-empty")
    total_tokens = counts.sum()
    if total_tokens <= 0:
        raise ValueError("token_counts must sum to a positive value")
    return float(np.exp(-lls.sum() / total_tokens))
