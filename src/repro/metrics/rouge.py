"""ROUGE-1 / ROUGE-2 / ROUGE-L implemented from scratch.

The paper reports ROUGE F-measures for its summarization/conversation tasks
and requires that reduced-cache configurations stay within 99 % of the
full-attention scores (MLPerf criterion).  This module implements the
standard n-gram overlap (ROUGE-N) and longest-common-subsequence (ROUGE-L)
F1 scores over whitespace tokens.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["RougeScore", "rouge_n", "rouge_l", "rouge_all", "aggregate_rouge"]


@dataclass(frozen=True)
class RougeScore:
    """Precision / recall / F1 triple for one ROUGE variant."""

    precision: float
    recall: float
    f1: float

    @classmethod
    def zero(cls) -> "RougeScore":
        return cls(0.0, 0.0, 0.0)

    @classmethod
    def from_counts(
        cls, overlap: float, candidate_total: float, reference_total: float
    ) -> "RougeScore":
        precision = overlap / candidate_total if candidate_total > 0 else 0.0
        recall = overlap / reference_total if reference_total > 0 else 0.0
        if precision + recall == 0:
            return cls(precision, recall, 0.0)
        f1 = 2 * precision * recall / (precision + recall)
        return cls(precision, recall, f1)


def _tokenize(text: str) -> list[str]:
    return text.lower().split()


def _ngrams(tokens: Sequence[str], n: int) -> Counter:
    if n <= 0:
        raise ValueError("n must be positive")
    return Counter(tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1))


def rouge_n(candidate: str, reference: str, n: int = 1) -> RougeScore:
    """ROUGE-N F-measure between a candidate and a reference text."""
    cand_tokens = _tokenize(candidate)
    ref_tokens = _tokenize(reference)
    cand_ngrams = _ngrams(cand_tokens, n)
    ref_ngrams = _ngrams(ref_tokens, n)
    if not cand_ngrams or not ref_ngrams:
        return RougeScore.zero()
    overlap = sum(min(count, ref_ngrams[gram]) for gram, count in cand_ngrams.items())
    return RougeScore.from_counts(
        overlap, sum(cand_ngrams.values()), sum(ref_ngrams.values())
    )


def _lcs_length(a: Sequence[str], b: Sequence[str]) -> int:
    """Length of the longest common subsequence (O(len(a)·len(b)) DP)."""
    if not a or not b:
        return 0
    prev = np.zeros(len(b) + 1, dtype=np.int64)
    for token_a in a:
        current = np.zeros(len(b) + 1, dtype=np.int64)
        for j, token_b in enumerate(b, start=1):
            if token_a == token_b:
                current[j] = prev[j - 1] + 1
            else:
                current[j] = max(prev[j], current[j - 1])
        prev = current
    return int(prev[-1])


def rouge_l(candidate: str, reference: str) -> RougeScore:
    """ROUGE-L F-measure based on the longest common subsequence."""
    cand_tokens = _tokenize(candidate)
    ref_tokens = _tokenize(reference)
    if not cand_tokens or not ref_tokens:
        return RougeScore.zero()
    lcs = _lcs_length(cand_tokens, ref_tokens)
    return RougeScore.from_counts(lcs, len(cand_tokens), len(ref_tokens))


def rouge_all(candidate: str, reference: str) -> dict[str, RougeScore]:
    """ROUGE-1, ROUGE-2 and ROUGE-L for one candidate/reference pair."""
    return {
        "rouge1": rouge_n(candidate, reference, 1),
        "rouge2": rouge_n(candidate, reference, 2),
        "rougeL": rouge_l(candidate, reference),
    }


def aggregate_rouge(
    candidates: Iterable[str], references: Iterable[str]
) -> dict[str, float]:
    """Mean ROUGE F1 scores (×100, like the paper's tables) over a corpus."""
    candidates = list(candidates)
    references = list(references)
    if len(candidates) != len(references):
        raise ValueError("candidates and references must have the same length")
    if not candidates:
        raise ValueError("cannot aggregate an empty corpus")
    sums = {"rouge1": 0.0, "rouge2": 0.0, "rougeL": 0.0}
    for cand, ref in zip(candidates, references):
        scores = rouge_all(cand, ref)
        for key in sums:
            sums[key] += scores[key].f1
    return {key: 100.0 * value / len(candidates) for key, value in sums.items()}
