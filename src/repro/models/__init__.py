"""Pure-NumPy decoder-only transformer substrate.

This subpackage implements the model substrate that the paper's evaluation
depends on: a trainable autoregressive transformer with the three positional
encoding families used by the paper's model zoo (RoPE for GPT-J, learned
absolute positions for Cerebras-GPT, ALiBi for MPT), a full-sequence training
path (forward + backward) and an incremental decoding path that exposes the
per-head attention probabilities and unnormalized logits required by the
KV-cache eviction policies in :mod:`repro.core`.
"""

from repro.models.config import ModelConfig
from repro.models.transformer import DecoderLM
from repro.models.model_zoo import (
    MODEL_ZOO,
    get_model_config,
    build_model,
    load_or_train,
)

__all__ = [
    "ModelConfig",
    "DecoderLM",
    "MODEL_ZOO",
    "get_model_config",
    "build_model",
    "load_or_train",
]
