"""Multi-head causal self-attention with training and incremental decode paths.

The training path (:meth:`MultiHeadAttention.forward` / ``backward``) operates
on full sequences and supports manual backpropagation.  The decode path is
split into three stateless steps (``project_step``, ``attend_step`` and the
output projection inside ``attend_step``) so that the KV-cache manager in
:mod:`repro.kvcache` can interpose between the key/value projection and the
actual attention computation — that is exactly where Keyformer and the
baseline policies observe attention logits and evict tokens.
"""

from __future__ import annotations

import numpy as np

from repro.models import tensor_ops as ops
from repro.models.config import ModelConfig
from repro.models.layers import Linear, Module
from repro.models.positional import (
    alibi_bias_matrix,
    alibi_bias_step,
    get_rope_table,
    rope_rotate,
    rope_rotate_backward,
)

__all__ = ["MultiHeadAttention"]


class MultiHeadAttention(Module):
    """Causal multi-head self-attention supporting RoPE, ALiBi or no bias."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.n_heads = config.n_heads
        self.d_head = config.d_head
        self.d_model = config.d_model
        self.positional = config.positional
        self.rope_dims = config.rope_dims if config.positional == "rope" else 0
        # Shared precomputed cos/sin table: decode-path rotations become
        # lookups instead of per-step transcendental evaluations.
        self._rope_table = get_rope_table(self.rope_dims) if self.rope_dims > 0 else None

        # A Python-float scale: a NumPy float64 scalar would upcast the whole
        # float32 inference path to float64 under NumPy 2 promotion rules
        # (bit-identical at float64 either way).
        self._scale = 1.0 / float(np.sqrt(self.d_head))

        self.w_q = Linear(config.d_model, config.d_model, rng, config.init_std)
        self.w_k = Linear(config.d_model, config.d_model, rng, config.init_std)
        self.w_v = Linear(config.d_model, config.d_model, rng, config.init_std)
        self.w_o = Linear(config.d_model, config.d_model, rng, config.init_std)

        self._cache: dict | None = None
        #: Post-softmax attention probabilities of the last ``forward`` call
        #: with ``store_attention=True`` — shape ``(B, H, T, T)``.
        self.last_attention: np.ndarray | None = None
        #: Masked unnormalized logits of the same call (``-inf`` above the
        #: causal diagonal); consumed by Keyformer's prompt-phase score.
        self.last_scores: np.ndarray | None = None
        #: Unrotated keys and values of the same call, used to seed the KV
        #: cache after prompt processing — each of shape ``(B, H, T, d_head)``.
        self.last_kv: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, T, D) -> (B, H, T, d_head)."""
        b, t, _ = x.shape
        return x.reshape(b, t, self.n_heads, self.d_head).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, H, T, d_head) -> (B, T, D)."""
        b, h, t, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * d)

    # ------------------------------------------------------------------
    # training path
    # ------------------------------------------------------------------
    def forward(
        self,
        x: np.ndarray,
        positions: np.ndarray | None = None,
        store_attention: bool = False,
    ) -> np.ndarray:
        """Full-sequence causal attention.

        Parameters
        ----------
        x:
            Input of shape ``(batch, seq, d_model)``.
        positions:
            Optional per-token positions of shape ``(seq,)`` or
            ``(batch, seq)``; defaults to ``arange(seq)``.
        store_attention:
            When true, the post-softmax attention probabilities are kept in
            :attr:`last_attention` for analysis (Figure 3 / 14 / 15).
        """
        b, t, _ = x.shape
        if positions is None:
            positions = np.arange(t)
        positions = np.asarray(positions)

        q = self._split_heads(self.w_q(x))
        k_raw = self._split_heads(self.w_k(x))
        v = self._split_heads(self.w_v(x))

        if self.positional == "rope":
            pos_bh = positions if positions.ndim == 1 else positions[:, None, :]
            q_rot = rope_rotate(q, pos_bh, self.rope_dims, table=self._rope_table)
            k_rot = rope_rotate(k_raw, pos_bh, self.rope_dims, table=self._rope_table)
        else:
            q_rot, k_rot = q, k_raw

        scale = self._scale
        scores = np.einsum("bhqd,bhkd->bhqk", q_rot, k_rot) * scale

        if self.positional == "alibi":
            scores = scores + alibi_bias_matrix(self.n_heads, t)[None]

        causal_mask = np.triu(np.ones((t, t), dtype=bool), k=1)
        scores = np.where(causal_mask[None, None], -np.inf, scores)

        attn = ops.softmax(scores, axis=-1)
        if store_attention:
            self.last_attention = attn
            self.last_scores = scores
            self.last_kv = (k_raw, v)

        ctx = np.einsum("bhqk,bhkd->bhqd", attn, v)
        out = self.w_o(self._merge_heads(ctx))

        self._cache = {
            "q_rot": q_rot,
            "k_rot": k_rot,
            "v": v,
            "attn": attn,
            "positions": positions,
            "scale": scale,
        }
        return out

    def __call__(self, x: np.ndarray, **kwargs) -> np.ndarray:
        return self.forward(x, **kwargs)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Backward pass of :meth:`forward`; returns gradient w.r.t. the input."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        q_rot, k_rot, v = cache["q_rot"], cache["k_rot"], cache["v"]
        attn, positions, scale = cache["attn"], cache["positions"], cache["scale"]

        dctx_merged = self.w_o.backward(dout)
        b, t, _ = dctx_merged.shape
        dctx = self._split_heads(dctx_merged)

        dattn = np.einsum("bhqd,bhkd->bhqk", dctx, v)
        dv = np.einsum("bhqk,bhqd->bhkd", attn, dctx)

        dscores = ops.softmax_backward(dattn, attn, axis=-1)

        dq_rot = np.einsum("bhqk,bhkd->bhqd", dscores, k_rot) * scale
        dk_rot = np.einsum("bhqk,bhqd->bhkd", dscores, q_rot) * scale

        if self.positional == "rope":
            pos_bh = positions if positions.ndim == 1 else positions[:, None, :]
            dq = rope_rotate_backward(dq_rot, pos_bh, self.rope_dims)
            dk = rope_rotate_backward(dk_rot, pos_bh, self.rope_dims)
        else:
            dq, dk = dq_rot, dk_rot

        dx_q = self.w_q.backward(self._merge_heads(dq))
        dx_k = self.w_k.backward(self._merge_heads(dk))
        dx_v = self.w_v.backward(self._merge_heads(dv))
        return dx_q + dx_k + dx_v

    # ------------------------------------------------------------------
    # chunked prefill path (prefix sharing)
    # ------------------------------------------------------------------
    def attend_prefill(
        self,
        x: np.ndarray,
        prefix_keys: np.ndarray,
        prefix_values: np.ndarray,
        prefix_len: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Prompt-phase attention for a *suffix chunk* over a cached prefix.

        The serving engine's prefix sharing maps the KV pages of an
        already-resident prompt prefix instead of recomputing them; only the
        suffix tokens run through the model.  This step attends the suffix
        queries over ``[prefix ∥ suffix]`` keys/values:

        * ``x`` — suffix hidden states, shape ``(1, S, d_model)``, sitting at
          original positions ``prefix_len .. prefix_len + S``;
        * ``prefix_keys`` — cached prefix keys of shape ``(1, H, P, d)``,
          already RoPE-rotated at their original positions for RoPE models
          (read straight from the rotated-key pages), raw otherwise;
        * ``prefix_values`` — cached prefix values, same shape.

        Bit-exactness contract: every operation reproduces the corresponding
        rows of the full prompt forward exactly — the projections are
        ``(S, d_model)`` GEMMs whose rows are bit-stable under removing
        leading rows (pinned by the prefix-sharing tests; requires ``S >= 2``,
        which the engine guarantees by capping the shared prefix at
        ``prompt_len - 2``), scores/context einsums reduce over axes of
        identical extent, and softmax runs over full-length rows with the
        same causal ``-inf`` tail the full forward produces.

        Returns ``(output, k_raw, v)`` where ``output`` is ``(1, S, d_model)``
        and ``k_raw``/``v`` are the suffix's unrotated keys and values
        (``(1, H, S, d)``) for seeding the cache.
        """
        b, s, _ = x.shape
        total_len = prefix_len + s
        positions = np.arange(prefix_len, total_len)

        q = self._split_heads(self.w_q(x))
        k_raw = self._split_heads(self.w_k(x))
        v = self._split_heads(self.w_v(x))

        if self.positional == "rope":
            q_rot = rope_rotate(q, positions, self.rope_dims, table=self._rope_table)
            k_rot = rope_rotate(k_raw, positions, self.rope_dims, table=self._rope_table)
            keys_all = np.concatenate([prefix_keys, k_rot], axis=2)
        else:
            q_rot = q
            keys_all = np.concatenate([prefix_keys, k_raw], axis=2)
        values_all = np.concatenate([prefix_values, v], axis=2)

        scale = self._scale
        scores = np.einsum("bhqd,bhkd->bhqk", q_rot, keys_all) * scale
        if self.positional == "alibi":
            scores = scores + alibi_bias_matrix(self.n_heads, total_len)[None][
                :, :, prefix_len:, :
            ]
        # Same mask rows the full forward applies to queries prefix_len..T.
        causal_mask = (
            np.arange(total_len)[None, :] > positions[:, None]
        )
        scores = np.where(causal_mask[None, None], -np.inf, scores)

        attn = ops.softmax(scores, axis=-1)
        ctx = np.einsum("bhqk,bhkd->bhqd", attn, values_all)
        out = self.w_o(self._merge_heads(ctx))
        return out, k_raw, v

    # ------------------------------------------------------------------
    # incremental decode path
    # ------------------------------------------------------------------
    def project_qkv(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project a batch of single-token hidden states to per-head q/k/v.

        ``x`` has shape ``(batch, d_model)``; each output has shape
        ``(batch, n_heads, d_head)``.  Keys are returned **unrotated** — the
        cache stores raw keys so that both the original-position and
        renumbered-position RoPE/ALiBi modes can be evaluated later.
        """
        if x.ndim != 2:
            raise ValueError(f"expected (batch, d_model) input, got shape {x.shape}")
        b = x.shape[0]
        q = self.w_q(x).reshape(b, self.n_heads, self.d_head)
        k = self.w_k(x).reshape(b, self.n_heads, self.d_head)
        v = self.w_v(x).reshape(b, self.n_heads, self.d_head)
        return q, k, v

    def project_qkv_rows(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Row-exact variant of :meth:`project_qkv` for the batched decode path.

        Each output row is bit-identical to ``project_qkv(x[b:b+1])`` — the
        projections run the single-row BLAS kernel per row (see
        ``Linear.forward_rows``), so a batch of sequences decoding together
        produces the same bits as each sequence decoding alone.
        """
        if x.ndim != 2:
            raise ValueError(f"expected (batch, d_model) input, got shape {x.shape}")
        b = x.shape[0]
        q = self.w_q.forward_rows(x).reshape(b, self.n_heads, self.d_head)
        k = self.w_k.forward_rows(x).reshape(b, self.n_heads, self.d_head)
        v = self.w_v.forward_rows(x).reshape(b, self.n_heads, self.d_head)
        return q, k, v

    def attend_step(
        self,
        q: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        query_positions: np.ndarray | int,
        key_positions: np.ndarray,
        keys_rotated: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Attend a single query token over cached keys/values.

        Parameters
        ----------
        q:
            Query of shape ``(batch, n_heads, d_head)`` (unrotated).
        keys, values:
            Cached tensors of shape ``(batch, n_heads, L, d_head)``.
        query_positions:
            Position index of the query token (scalar or ``(batch,)``).
        key_positions:
            Positions of the cached keys, shape ``(batch, n_heads, L)``.
        keys_rotated:
            When true, ``keys`` already carry RoPE at ``key_positions`` (the
            KV cache maintains rotated keys incrementally) and only the query
            is rotated here — the per-step O(L) key re-rotation disappears.

        Returns
        -------
        ``(output, logits, probs)`` where ``output`` has shape
        ``(batch, d_model)``, and ``logits`` / ``probs`` have shape
        ``(batch, n_heads, L)``.  ``logits`` are the *unnormalized* scaled
        dot-product values (the :math:`x_i` of Eq. 4 in the paper), which the
        Keyformer score function perturbs with Gumbel noise.
        """
        b = q.shape[0]
        query_positions = np.asarray(query_positions)

        if self.positional == "rope":
            if self._rope_table is not None and query_positions.ndim == 0:
                # Steady-state decode: one scalar query position.
                q_rot = self._rope_table.rotate_uniform(q, int(query_positions))
            else:
                q_pos = query_positions if query_positions.ndim else query_positions[None]
                if q_pos.shape != (b,):
                    q_pos = np.broadcast_to(q_pos, (b,))
                if self._rope_table is not None:
                    q_rot = self._rope_table.rotate(q, q_pos[:, None])
                else:
                    q_rot = rope_rotate(q, q_pos[:, None], self.rope_dims)
            if keys_rotated:
                k_rot = keys
            elif self._rope_table is not None:
                k_rot = self._rope_table.rotate(keys, key_positions)
            else:
                k_rot = rope_rotate(keys, key_positions, self.rope_dims)
        else:
            q_rot, k_rot = q, keys

        scale = self._scale
        if q_rot.dtype == np.float64:
            # float64 is the bit-parity dtype: keep einsum's exact reduction
            # order so generation stays token-identical with the reference.
            logits = np.einsum("bhd,bhld->bhl", q_rot, k_rot) * scale
        else:
            # float32 inference runs within a documented tolerance, so use the
            # (much faster) BLAS batched matmul kernel.
            logits = (q_rot[:, :, None, :] @ k_rot.swapaxes(-1, -2))[:, :, 0, :] * scale

        if self.positional == "alibi":
            logits = logits + alibi_bias_step(self.n_heads, query_positions, key_positions)

        probs = ops.softmax(logits, axis=-1)
        if probs.dtype == np.float64:
            ctx = np.einsum("bhl,bhld->bhd", probs, values)
        else:
            ctx = (probs[:, :, None, :] @ values)[:, :, 0, :]
        out = self.w_o(ctx.reshape(b, self.d_model))
        return out, logits, probs

    # ------------------------------------------------------------------
    # speculative verify path
    # ------------------------------------------------------------------
    def attend_verify(
        self,
        q: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        query_positions: np.ndarray,
        key_positions: np.ndarray,
        lengths: np.ndarray,
        keys_rotated: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Attend ``S`` consecutive queries of *one* sequence over its cache.

        The speculative verify pass appends the whole draft block's KV to the
        cache first and then scores every draft position in a single call:
        query ``i`` attends over the causal cache prefix of ``lengths[i]``
        entries — exactly the cache a sequential :meth:`attend_step` would
        have seen at that step.

        Parameters
        ----------
        q:
            Unrotated queries, shape ``(S, n_heads, d_head)``.
        keys, values:
            The sequence's cache including the just-appended draft block,
            shape ``(n_heads, L, d_head)`` with ``L == lengths[-1]``.
        query_positions:
            Original position of each query token, shape ``(S,)``.
        key_positions:
            Positions of the cached keys, shape ``(n_heads, L)``.
        lengths:
            Causal live length per query (ascending), shape ``(S,)``.
        keys_rotated:
            As in :meth:`attend_step`: keys already carry RoPE at
            ``key_positions``.

        Bit-exactness contract (float64): row ``i`` of every output is
        bit-identical to :meth:`attend_step` on that token alone — queries
        rotate per-row (elementwise), the logits einsum reduces over
        ``d_head`` only (entries beyond ``lengths[i]`` cannot perturb live
        ones), softmax and the value reduction run per query on exact-length
        slices, and the output projection uses the row-exact kernel.  At
        float32 the whole block runs masked and fully batched (the documented
        inference tolerance mode).

        Returns ``(output, logits, probs)`` shaped ``(S, d_model)`` and
        ``(S, heads, L)``; ``logits``/``probs`` rows are valid up to
        ``lengths[i]`` entries.
        """
        s = q.shape[0]
        lengths = np.asarray(lengths)
        query_positions = np.asarray(query_positions)

        if self.positional == "rope":
            if self._rope_table is not None:
                q_rot = self._rope_table.rotate(q, query_positions[:, None])
                k_rot = (
                    keys
                    if keys_rotated
                    else self._rope_table.rotate(keys, key_positions)
                )
            else:
                q_rot = rope_rotate(q, query_positions[:, None], self.rope_dims)
                k_rot = (
                    keys
                    if keys_rotated
                    else rope_rotate(keys, key_positions, self.rope_dims)
                )
        else:
            q_rot, k_rot = q, keys

        scale = self._scale
        exact = q_rot.dtype == np.float64
        keys_b = np.broadcast_to(k_rot, (s,) + k_rot.shape)
        values_b = np.broadcast_to(values, (s,) + values.shape)
        if exact:
            # Same einsum as attend_step with the query axis batched; the
            # reduction runs over d_head only, so each row's bits match its
            # solo call (the broadcast key view adds a zero stride, which
            # does not reorder the per-element reduction).
            logits = np.einsum("bhd,bhld->bhl", q_rot, keys_b) * scale
        else:
            logits = (q_rot[:, :, None, :] @ k_rot.swapaxes(-1, -2)[None])[
                :, :, 0, :
            ] * scale

        if self.positional == "alibi":
            logits = logits + alibi_bias_step(
                self.n_heads,
                query_positions,
                np.broadcast_to(key_positions, (s,) + key_positions.shape),
            )

        if exact:
            probs = np.zeros_like(logits)
            ctx = np.empty((s, self.n_heads, self.d_head), dtype=logits.dtype)
            for i in range(s):
                live = int(lengths[i])
                p = ops.softmax(logits[i : i + 1, :, :live], axis=-1)
                probs[i, :, :live] = p[0]
                ctx[i] = np.einsum("bhl,bhld->bhd", p, values_b[i : i + 1, :, :live])[0]
            out = self.w_o.forward_rows(ctx.reshape(s, self.d_model))
        else:
            mask = np.arange(logits.shape[-1]) >= lengths[:, None, None]
            logits = np.where(mask, -np.inf, logits)
            probs = ops.softmax(logits, axis=-1)
            ctx = (probs[:, :, None, :] @ values_b)[:, :, 0, :]
            out = self.w_o(ctx.reshape(s, self.d_model))
        return out, logits, probs

    # ------------------------------------------------------------------
    # ragged-batch decode path (continuous batching)
    # ------------------------------------------------------------------
    def attend_step_batch(
        self,
        q: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        query_positions: np.ndarray,
        key_positions: np.ndarray,
        lengths: np.ndarray,
        keys_rotated: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Attend one query token per sequence over a ragged batch of caches.

        ``keys``/``values``/``key_positions`` are padded to the longest
        sequence (``L_max``); row ``b`` holds ``lengths[b]`` live entries.
        ``query_positions`` has shape ``(batch,)`` — one position per
        sequence, since sequences in a continuous batch are at different
        decoding depths.

        Two execution modes, selected by dtype (same convention as
        :meth:`attend_step`):

        * **float64 (bit-parity)** — logits come from one padded einsum (the
          reduction runs over ``d_head`` only, so padding cannot perturb live
          entries), while softmax and the value reduction run per sequence on
          exact-length slices: summing over a padded axis would regroup the
          pairwise reduction and break bit-equality with a sequence decoded
          alone.  The output projection uses the row-exact kernel.
        * **float32 (throughput)** — padded slots are masked to ``-inf`` and
          the whole batch runs through BLAS softmax/matmul in one shot,
          within the documented float32 tolerance.

        Returns ``(output, logits, probs)`` shaped ``(batch, d_model)`` and
        ``(batch, heads, L_max)``; rows of ``logits``/``probs`` are valid up
        to ``lengths[b]`` entries (beyond that: unmasked garbage at float64,
        ``-inf``/``0`` at float32).
        """
        r = q.shape[0]
        lengths = np.asarray(lengths)
        query_positions = np.asarray(query_positions)

        if self.positional == "rope":
            # Per-row positions; elementwise, hence bit-identical per row to
            # the scalar-position rotation of the single-sequence path.
            if self._rope_table is not None:
                q_rot = self._rope_table.rotate(q, query_positions[:, None])
                k_rot = (
                    keys
                    if keys_rotated
                    else self._rope_table.rotate(keys, key_positions)
                )
            else:
                q_rot = rope_rotate(q, query_positions[:, None], self.rope_dims)
                k_rot = (
                    keys
                    if keys_rotated
                    else rope_rotate(keys, key_positions, self.rope_dims)
                )
        else:
            q_rot, k_rot = q, keys

        scale = self._scale
        exact = q_rot.dtype == np.float64
        if exact:
            # Reduction over d_head only: padded token slots cannot affect
            # live entries, so each row is bitwise equal to its solo einsum.
            logits = np.einsum("bhd,bhld->bhl", q_rot, k_rot) * scale
        else:
            logits = (q_rot[:, :, None, :] @ k_rot.swapaxes(-1, -2))[:, :, 0, :] * scale

        if self.positional == "alibi":
            logits = logits + alibi_bias_step(self.n_heads, query_positions, key_positions)

        if exact:
            if r > 0 and int(lengths.min()) == logits.shape[-1]:
                # All sequences at the same depth (steady state of a fixed
                # kv_budget policy): no padding exists, and softmax/einsum
                # reduce each row independently — one batched call is bitwise
                # equal to the per-row loop.
                probs = ops.softmax(logits, axis=-1)
                ctx = np.einsum("bhl,bhld->bhd", probs, values)
            else:
                probs = np.zeros_like(logits)
                ctx = np.empty((r, self.n_heads, self.d_head), dtype=logits.dtype)
                for b in range(r):
                    live = int(lengths[b])
                    p = ops.softmax(logits[b : b + 1, :, :live], axis=-1)
                    probs[b, :, :live] = p[0]
                    ctx[b] = np.einsum(
                        "bhl,bhld->bhd", p, values[b : b + 1, :, :live]
                    )[0]
            out = self.w_o.forward_rows(ctx.reshape(r, self.d_model))
        else:
            max_len = logits.shape[-1]
            mask = np.arange(max_len) >= lengths[:, None, None]
            logits = np.where(mask, -np.inf, logits)
            probs = ops.softmax(logits, axis=-1)
            ctx = (probs[:, :, None, :] @ values)[:, :, 0, :]
            out = self.w_o(ctx.reshape(r, self.d_model))
        return out, logits, probs
