"""Pre-LayerNorm decoder block used by :class:`repro.models.transformer.DecoderLM`."""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.models.attention import MultiHeadAttention
from repro.models.config import ModelConfig
from repro.models.layers import LayerNorm, Module
from repro.models.mlp import MLP

__all__ = [
    "DecoderBlock",
    "LayerDecodeCache",
    "BatchedLayerDecodeCache",
    "VerifyLayerCache",
]


class VerifyLayerCache(Protocol):
    """Interface a per-layer cache must implement for speculative verification.

    The verify pass processes ``S`` consecutive tokens of one sequence in a
    single call: it appends the whole block's KV first, then reads the cache
    back with per-query causal lengths.  There is no ``observe`` hook — the
    verify path is only sound for a no-eviction target policy, so nothing
    may shrink the cache between appends (rejected tokens are rolled back by
    the manager's ``commit_verify`` instead).
    """

    def append_block(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append ``S`` tokens' keys/values, each of shape ``(S, heads, d_head)``."""

    def verify_view(
        self, n_queries: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]:
        """Return ``(keys, values, key_positions, query_positions, lengths,
        keys_rotated)`` — unbatched ``(heads, L, ...)`` tensors plus per-query
        positions/lengths of shape ``(S,)`` (see
        :meth:`repro.kvcache.manager.CacheManager.verify_view`)."""


class BatchedLayerDecodeCache(Protocol):
    """Interface a ragged-batch KV cache must implement for continuous batching.

    Mirrors :class:`LayerDecodeCache`, but every tensor carries one row per
    in-flight sequence and ``attention_view`` additionally returns per-row
    live lengths (rows are padded to the longest sequence).  The concrete
    implementation is :class:`repro.kvcache.batch.BatchedLayerView`.
    """

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Store each sequence's new key/value (shape ``(batch, heads, d_head)``)."""

    def attention_view(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]:
        """Return ``(keys, values, key_positions, query_positions, lengths,
        keys_rotated)`` — padded to the longest row; ``lengths[b]`` gives row
        ``b``'s live entry count and ``query_positions`` is per-row."""

    def observe(self, logits: np.ndarray, probs: np.ndarray) -> None:
        """Feed padded attention logits/probabilities to per-sequence policies."""


class LayerDecodeCache(Protocol):
    """Interface a per-layer KV cache must implement for incremental decoding.

    The concrete implementation lives in :mod:`repro.kvcache`; decoder blocks
    only rely on this protocol so the model substrate stays independent of the
    eviction policies layered on top of it.
    """

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Store the key/value of the newly produced token."""

    def attention_view(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]:
        """Return ``(keys, values, key_positions, query_positions, keys_rotated)``.

        ``keys_rotated`` signals that ``keys`` already carry RoPE at the given
        key positions (incrementally maintained by the cache), so the
        attention step must not rotate them again.
        """

    def observe(self, logits: np.ndarray, probs: np.ndarray) -> None:
        """Feed attention logits/probabilities to the eviction policy."""


class DecoderBlock(Module):
    """Pre-LN transformer decoder block: attention + feed-forward residuals."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator):
        super().__init__()
        self.ln_attn = LayerNorm(config.d_model, eps=config.layer_norm_eps)
        self.attn = MultiHeadAttention(config, rng)
        self.ln_mlp = LayerNorm(config.d_model, eps=config.layer_norm_eps)
        self.mlp = MLP(config, rng)

    # ------------------------------------------------------------------
    # training path
    # ------------------------------------------------------------------
    def forward(
        self,
        x: np.ndarray,
        positions: np.ndarray | None = None,
        store_attention: bool = False,
    ) -> np.ndarray:
        """Full-sequence forward pass: ``x + attn(ln(x))`` then ``x + mlp(ln(x))``."""
        attn_out = self.attn(self.ln_attn(x), positions=positions, store_attention=store_attention)
        x = x + attn_out
        mlp_out = self.mlp(self.ln_mlp(x))
        return x + mlp_out

    def __call__(self, x: np.ndarray, **kwargs) -> np.ndarray:
        return self.forward(x, **kwargs)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Backward pass through both residual branches."""
        dmlp_in = self.mlp.backward(dout)
        dx = dout + self.ln_mlp.backward(dmlp_in)
        dattn_in = self.attn.backward(dx)
        return dx + self.ln_attn.backward(dattn_in)

    # ------------------------------------------------------------------
    # chunked prefill path (prefix sharing)
    # ------------------------------------------------------------------
    def prefill_chunk(
        self,
        x: np.ndarray,
        prefix_keys: np.ndarray,
        prefix_values: np.ndarray,
        prefix_len: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Process a prompt-suffix chunk attending over a cached prefix.

        ``x`` has shape ``(1, S, d_model)``.  Returns ``(hidden, k_raw, v)``
        where ``k_raw``/``v`` are the suffix's cache-seeding tensors.  Every
        row is bit-identical to the same row of :meth:`forward` on the full
        prompt (see :meth:`MultiHeadAttention.attend_prefill`).
        """
        a_in = self.ln_attn(x)
        attn_out, k_raw, v = self.attn.attend_prefill(
            a_in, prefix_keys, prefix_values, prefix_len
        )
        x = x + attn_out
        return x + self.mlp(self.ln_mlp(x)), k_raw, v

    # ------------------------------------------------------------------
    # incremental decode path
    # ------------------------------------------------------------------
    def decode_step(self, x: np.ndarray, layer_cache: LayerDecodeCache) -> np.ndarray:
        """Process one token through the block using a per-layer KV cache.

        ``x`` has shape ``(batch, d_model)``.  The cache appends the new
        key/value, exposes the retained keys/values with their positions, and
        observes the attention logits/probabilities so its eviction policy
        (Keyformer, H2O, window, ...) can update token scores and evict.
        """
        a_in = self.ln_attn(x)
        q, k, v = self.attn.project_qkv(a_in)
        layer_cache.append(k, v)
        keys, values, key_positions, query_positions, keys_rotated = (
            layer_cache.attention_view()
        )
        attn_out, logits, probs = self.attn.attend_step(
            q, keys, values, query_positions, key_positions, keys_rotated=keys_rotated
        )
        layer_cache.observe(logits, probs)
        x = x + attn_out
        return x + self.mlp(self.ln_mlp(x))

    def verify_step(self, x: np.ndarray, layer_cache: VerifyLayerCache) -> np.ndarray:
        """Process ``S`` consecutive draft tokens of one sequence through the block.

        ``x`` has shape ``(S, d_model)`` — the last committed token followed
        by the drafted continuation.  All ``S`` keys/values are appended to
        the cache first (optimistically; the speculative decoder rolls back
        rejected ones), then query ``i`` attends over the causal prefix a
        sequential :meth:`decode_step` would have seen.  At float64 every row
        of the result is bit-identical to feeding the tokens one at a time;
        at float32 the block runs fully batched within the documented
        inference tolerance.
        """
        exact = x.dtype == np.float64
        a_in = self.ln_attn(x)
        if exact:
            q, k, v = self.attn.project_qkv_rows(a_in)
        else:
            q, k, v = self.attn.project_qkv(a_in)
        layer_cache.append_block(k, v)
        keys, values, key_positions, query_positions, lengths, keys_rotated = (
            layer_cache.verify_view(x.shape[0])
        )
        attn_out, _, _ = self.attn.attend_verify(
            q,
            keys,
            values,
            query_positions,
            key_positions,
            lengths,
            keys_rotated=keys_rotated,
        )
        x = x + attn_out
        h = self.ln_mlp(x)
        return x + (self.mlp.forward_rows(h) if exact else self.mlp(h))

    def decode_step_batch(
        self, x: np.ndarray, layer_cache: BatchedLayerDecodeCache
    ) -> np.ndarray:
        """Process one token per in-flight sequence through the block.

        ``x`` has shape ``(batch, d_model)`` with one row per sequence; each
        sequence attends over its own (ragged) cache row.  At float64 the
        projections use the row-exact kernels, making every row bit-identical
        to :meth:`decode_step` on that sequence alone; at float32 the
        projections run as one batched BLAS matmul (documented tolerance).
        """
        exact = x.dtype == np.float64
        a_in = self.ln_attn(x)
        if exact:
            q, k, v = self.attn.project_qkv_rows(a_in)
        else:
            q, k, v = self.attn.project_qkv(a_in)
        layer_cache.append(k, v)
        keys, values, key_positions, query_positions, lengths, keys_rotated = (
            layer_cache.attention_view()
        )
        attn_out, logits, probs = self.attn.attend_step_batch(
            q,
            keys,
            values,
            query_positions,
            key_positions,
            lengths,
            keys_rotated=keys_rotated,
        )
        layer_cache.observe(logits, probs)
        x = x + attn_out
        h = self.ln_mlp(x)
        return x + (self.mlp.forward_rows(h) if exact else self.mlp(h))
