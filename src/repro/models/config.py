"""Model configuration for the NumPy transformer substrate."""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Any

import numpy as np

VALID_POSITIONAL = ("rope", "alibi", "learned", "none")
VALID_COMPUTE_DTYPES = ("float32", "float64")


@dataclass
class ModelConfig:
    """Configuration of a decoder-only transformer language model.

    Attributes
    ----------
    vocab_size:
        Number of entries in the token embedding table.
    d_model:
        Width of the residual stream.
    n_layers:
        Number of decoder blocks.
    n_heads:
        Number of attention heads; must divide ``d_model``.
    d_ff:
        Hidden width of the feed-forward block.
    max_seq_len:
        Maximum sequence length the model supports.  For ``learned``
        positional embeddings this bounds the embedding table; for RoPE and
        ALiBi it only bounds precomputed caches.
    positional:
        Positional-encoding family: ``"rope"`` (GPT-J style), ``"alibi"``
        (MPT style), ``"learned"`` (Cerebras-GPT style) or ``"none"``.
    rope_fraction:
        Fraction of each head dimension that is rotated by RoPE (GPT-J uses a
        partial rotary dimension).
    layer_norm_eps:
        Epsilon used by all LayerNorm layers.
    tie_embeddings:
        Whether the LM head shares weights with the token embedding.
    init_std:
        Standard deviation of the Gaussian weight initialization.
    compute_dtype:
        Floating dtype of parameters, activations and KV caches.  The default
        ``"float64"`` is what training and the bit-exactness tests use;
        inference deployments should prefer ``"float32"``, which halves
        memory bandwidth on the decode hot path at a documented (small)
        numerical tolerance.
    """

    vocab_size: int
    d_model: int = 64
    n_layers: int = 2
    n_heads: int = 4
    d_ff: int = 256
    max_seq_len: int = 512
    positional: str = "rope"
    rope_fraction: float = 1.0
    layer_norm_eps: float = 1e-5
    tie_embeddings: bool = True
    init_std: float = 0.02
    compute_dtype: str = "float64"
    name: str = "decoder-lm"

    def __post_init__(self) -> None:
        if self.vocab_size <= 0:
            raise ValueError(f"vocab_size must be positive, got {self.vocab_size}")
        if self.d_model % self.n_heads != 0:
            raise ValueError(
                f"d_model ({self.d_model}) must be divisible by n_heads ({self.n_heads})"
            )
        if self.positional not in VALID_POSITIONAL:
            raise ValueError(
                f"positional must be one of {VALID_POSITIONAL}, got {self.positional!r}"
            )
        if not (0.0 < self.rope_fraction <= 1.0):
            raise ValueError("rope_fraction must be in (0, 1]")
        if self.max_seq_len <= 0:
            raise ValueError("max_seq_len must be positive")
        if self.compute_dtype not in VALID_COMPUTE_DTYPES:
            raise ValueError(
                f"compute_dtype must be one of {VALID_COMPUTE_DTYPES}, got {self.compute_dtype!r}"
            )

    @property
    def np_dtype(self) -> np.dtype:
        """The configured compute dtype as a NumPy dtype."""
        return np.dtype(self.compute_dtype)

    @property
    def d_head(self) -> int:
        """Per-head dimension."""
        return self.d_model // self.n_heads

    @property
    def rope_dims(self) -> int:
        """Number of per-head dimensions rotated by RoPE (always even)."""
        dims = int(self.d_head * self.rope_fraction)
        return dims - (dims % 2)

    def n_parameters(self) -> int:
        """Approximate parameter count of a model built from this config."""
        emb = self.vocab_size * self.d_model
        pos = self.max_seq_len * self.d_model if self.positional == "learned" else 0
        per_layer = (
            4 * self.d_model * self.d_model  # q, k, v, o projections
            + 4 * self.d_model  # projection biases
            + 2 * self.d_model * self.d_ff  # feed-forward
            + self.d_ff
            + self.d_model
            + 4 * self.d_model  # two layer norms (gamma + beta)
        )
        final_ln = 2 * self.d_model
        head = 0 if self.tie_embeddings else self.vocab_size * self.d_model
        return emb + pos + self.n_layers * per_layer + final_ln + head

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain dictionary (JSON friendly)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ModelConfig":
        """Build a config from :meth:`to_dict` output."""
        return cls(**data)


@dataclass
class GenerationConfig:
    """Decoding-time configuration shared by samplers and beam search.

    Attributes
    ----------
    max_new_tokens:
        Number of tokens generated after the prompt.
    beam_size:
        Beam width; ``1`` means greedy / sampling decoding.
    temperature:
        Softmax temperature used by samplers (not Keyformer's τ); ``0``
        conventionally means greedy decoding (argmax).
    top_k:
        If positive, restrict sampling to the ``top_k`` most likely tokens.
    eos_token_id:
        Optional end-of-sequence token id that terminates generation early.
    length_penalty:
        Beam-search length penalty exponent (>1 favors longer sequences).
    seed:
        Seed for stochastic samplers.
    """

    max_new_tokens: int = 32
    beam_size: int = 1
    temperature: float = 1.0
    top_k: int = 0
    eos_token_id: int | None = None
    length_penalty: float = 1.0
    seed: int = 0
    extras: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive")
        if self.beam_size <= 0:
            raise ValueError("beam_size must be positive")
        if self.temperature < 0:
            raise ValueError("temperature must be non-negative (0 means greedy)")
