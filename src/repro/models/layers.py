"""Basic trainable layers (Linear, LayerNorm, Embedding) with manual autodiff.

Every layer owns its parameters in ``self.params`` and the matching gradients
in ``self.grads``.  ``forward`` caches whatever intermediate values the
corresponding ``backward`` needs; ``backward`` accumulates parameter gradients
and returns the gradient with respect to the layer input.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.models import tensor_ops as ops

__all__ = ["Module", "Linear", "LayerNorm", "Embedding", "dot_rows"]


def dot_rows(x: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """Row-exact batched matmul: each output row bitwise equals ``x[b:b+1] @ weight``.

    BLAS matmul kernels pick different reduction orders for different batch
    sizes, so ``(B, d) @ W`` is *not* bitwise row-equal to ``(1, d) @ W``.
    This applies the single-row kernel per row instead (a 1-D row through
    BLAS produces the same bits as the 2-D single-row call — pinned by
    ``tests/models/test_batched_decode.py``), which is what keeps the batched
    float64 decode path bit-identical to solo decoding.
    """
    if x.shape[0] == 1:
        return x @ weight
    dtype = weight.dtype if x.dtype == weight.dtype else np.result_type(x, weight)
    out = np.empty((x.shape[0], weight.shape[1]), dtype=dtype)
    for b in range(x.shape[0]):
        np.dot(x[b], weight, out=out[b])
    return out


class Module:
    """Minimal module base class with recursive parameter discovery."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    def submodules(self) -> Iterator[tuple[str, "Module"]]:
        """Yield ``(attribute_name, module)`` for direct child modules."""
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{name}.{i}", item

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(qualified_name, parameter_array)`` recursively."""
        for name, param in self.params.items():
            yield f"{prefix}{name}", param
        for child_name, child in self.submodules():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def named_gradients(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(qualified_name, gradient_array)`` recursively."""
        for name, grad in self.grads.items():
            yield f"{prefix}{name}", grad
        for child_name, child in self.submodules():
            yield from child.named_gradients(prefix=f"{prefix}{child_name}.")

    def zero_grad(self) -> None:
        """Reset all gradients (recursively) to zero."""
        for name in self.grads:
            self.grads[name][...] = 0.0
        for _, child in self.submodules():
            child.zero_grad()

    def to_dtype(self, dtype: np.dtype | str) -> "Module":
        """Cast all parameters and gradients (recursively) to ``dtype`` in place."""
        dtype = np.dtype(dtype)
        for name, param in self.params.items():
            self.params[name] = param.astype(dtype, copy=False)
        for name, grad in self.grads.items():
            self.grads[name] = grad.astype(dtype, copy=False)
        for _, child in self.submodules():
            child.to_dtype(dtype)
        return self

    def n_parameters(self) -> int:
        """Total number of scalar parameters in this module tree."""
        return sum(p.size for _, p in self.named_parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat ``name -> array`` mapping of all parameters."""
        return {name: param.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters in place from :meth:`state_dict` output."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if param.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {param.shape} vs {state[name].shape}"
                )
            param[...] = state[name]


class Linear(Module):
    """Affine projection ``y = x @ W + b``."""

    def __init__(self, d_in: int, d_out: int, rng: np.random.Generator, init_std: float = 0.02):
        super().__init__()
        self.d_in = d_in
        self.d_out = d_out
        self.params = {
            "W": rng.normal(0.0, init_std, size=(d_in, d_out)),
            "b": np.zeros(d_out),
        }
        self.grads = {name: np.zeros_like(p) for name, p in self.params.items()}
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the projection; caches the input for the backward pass."""
        self._x = x
        out = x @ self.params["W"]
        out += self.params["b"]
        return out

    def forward_rows(self, x: np.ndarray) -> np.ndarray:
        """Row-exact batched projection for the bit-parity decode path.

        Each output row is bit-identical to ``forward(x[b:b+1])`` (see
        :func:`dot_rows`).  Used by the batched decode path at float64; does
        not cache activations (inference only, no backward).
        """
        out = dot_rows(x, self.params["W"])
        out += self.params["b"]
        return out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients and return ``d(loss)/d(input)``."""
        if self._x is None:
            raise RuntimeError("backward called before forward")
        x2d = self._x.reshape(-1, self.d_in)
        dout2d = dout.reshape(-1, self.d_out)
        self.grads["W"] += x2d.T @ dout2d
        self.grads["b"] += dout2d.sum(axis=0)
        return (dout2d @ self.params["W"].T).reshape(self._x.shape)


class LayerNorm(Module):
    """Layer normalization over the trailing dimension."""

    def __init__(self, d: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.params = {"gamma": np.ones(d), "beta": np.zeros(d)}
        self.grads = {name: np.zeros_like(p) for name, p in self.params.items()}
        self._cache: dict | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, self._cache = ops.layer_norm(
            x, self.params["gamma"], self.params["beta"], eps=self.eps
        )
        return out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        dx, dgamma, dbeta = ops.layer_norm_backward(dout, self._cache)
        self.grads["gamma"] += dgamma
        self.grads["beta"] += dbeta
        return dx


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, n_embeddings: int, d: int, rng: np.random.Generator, init_std: float = 0.02):
        super().__init__()
        self.n_embeddings = n_embeddings
        self.d = d
        self.params = {"weight": rng.normal(0.0, init_std, size=(n_embeddings, d))}
        self.grads = {"weight": np.zeros((n_embeddings, d))}
        self._ids: np.ndarray | None = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.n_embeddings):
            raise IndexError(
                f"embedding ids out of range [0, {self.n_embeddings}): "
                f"min={ids.min()} max={ids.max()}"
            )
        self._ids = ids
        return self.params["weight"][ids]

    def __call__(self, ids: np.ndarray) -> np.ndarray:
        return self.forward(ids)

    def backward(self, dout: np.ndarray) -> None:
        if self._ids is None:
            raise RuntimeError("backward called before forward")
        np.add.at(self.grads["weight"], self._ids.reshape(-1), dout.reshape(-1, self.d))
