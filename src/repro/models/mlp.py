"""Position-wise feed-forward block with GeLU activation."""

from __future__ import annotations

import numpy as np

from repro.models import tensor_ops as ops
from repro.models.config import ModelConfig
from repro.models.layers import Linear, Module

__all__ = ["MLP"]


class MLP(Module):
    """Two-layer feed-forward network ``W2(gelu(W1 x))``."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator):
        super().__init__()
        self.fc_in = Linear(config.d_model, config.d_ff, rng, config.init_std)
        self.fc_out = Linear(config.d_ff, config.d_model, rng, config.init_std)
        self._pre_act: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        hidden = self.fc_in(x)
        self._pre_act = hidden
        return self.fc_out(ops.gelu(hidden))

    def forward_rows(self, x: np.ndarray) -> np.ndarray:
        """Row-exact batched forward (bit-parity decode path, no backward).

        GeLU is elementwise and the projections use the single-row kernel per
        row, so each output row is bit-identical to ``forward(x[b:b+1])``.
        """
        return self.fc_out.forward_rows(ops.gelu(self.fc_in.forward_rows(x)))

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._pre_act is None:
            raise RuntimeError("backward called before forward")
        dhidden_act = self.fc_out.backward(dout)
        dhidden = ops.gelu_backward(dhidden_act, self._pre_act)
        return self.fc_in.backward(dhidden)
