"""Mini model zoo mirroring the paper's three model families.

The paper evaluates GPT-J (RoPE), Cerebras-GPT (learned positions) and MPT
(ALiBi), plus MPT-storywriter for long contexts.  The zoo defines laptop-scale
configurations with the same positional-encoding axis and provides
``load_or_train`` which trains each model on the synthetic corpora once and
caches the weights on disk, so the experiment harness never retrains.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.models.config import ModelConfig
from repro.models.transformer import DecoderLM

__all__ = ["ZooEntry", "MODEL_ZOO", "get_model_config", "build_model", "load_or_train"]

DEFAULT_CACHE_DIR = Path(
    os.environ.get("KEYFORMER_REPRO_CACHE", Path.cwd() / ".cache" / "models")
)


@dataclass(frozen=True)
class ZooEntry:
    """A named model family in the zoo."""

    name: str
    positional: str
    d_model: int
    n_layers: int
    n_heads: int
    d_ff: int
    max_seq_len: int
    datasets: tuple[str, ...]
    n_steps: int
    batch_size: int
    description: str


MODEL_ZOO: dict[str, ZooEntry] = {
    # GPT-J uses rotary position embeddings.
    "gptj_mini": ZooEntry(
        name="gptj_mini",
        positional="rope",
        d_model=64,
        n_layers=2,
        n_heads=4,
        d_ff=192,
        max_seq_len=512,
        datasets=("cnn_dailymail", "soda"),
        n_steps=260,
        batch_size=12,
        description="GPT-J analogue (RoPE positional encoding), summarization fine-tune",
    ),
    # Cerebras-GPT uses learned absolute position embeddings.
    "cerebras_mini": ZooEntry(
        name="cerebras_mini",
        positional="learned",
        d_model=64,
        n_layers=2,
        n_heads=4,
        d_ff=192,
        max_seq_len=512,
        datasets=("cnn_dailymail", "soda"),
        n_steps=260,
        batch_size=12,
        description="Cerebras-GPT analogue (learned absolute positions)",
    ),
    # MPT uses ALiBi attention biases.
    "mpt_mini": ZooEntry(
        name="mpt_mini",
        positional="alibi",
        d_model=64,
        n_layers=2,
        n_heads=4,
        d_ff=192,
        max_seq_len=512,
        datasets=("cnn_dailymail", "soda"),
        n_steps=260,
        batch_size=12,
        description="MPT analogue (ALiBi), also used as MPT-chat for conversation",
    ),
    # MPT-storywriter analogue: same architecture, trained on long documents.
    "mpt_storywriter_mini": ZooEntry(
        name="mpt_storywriter_mini",
        positional="alibi",
        d_model=64,
        n_layers=2,
        n_heads=4,
        d_ff=192,
        max_seq_len=1024,
        datasets=("govreport",),
        n_steps=160,
        batch_size=6,
        description="MPT-storywriter analogue (ALiBi) for long-context summarization",
    ),
}

#: Mapping from paper model names to zoo entries (for experiment reports).
PAPER_NAME_MAP = {
    "GPT-J-6B": "gptj_mini",
    "Cerebras-GPT-6.7B": "cerebras_mini",
    "MPT-7B": "mpt_mini",
    "MPT-7B-chat": "mpt_mini",
    "MPT-7B-storywriter": "mpt_storywriter_mini",
}


def get_model_config(name: str, vocab_size: int) -> ModelConfig:
    """Resolve a zoo entry into a :class:`ModelConfig`."""
    if name not in MODEL_ZOO:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}")
    entry = MODEL_ZOO[name]
    return ModelConfig(
        vocab_size=vocab_size,
        d_model=entry.d_model,
        n_layers=entry.n_layers,
        n_heads=entry.n_heads,
        d_ff=entry.d_ff,
        max_seq_len=entry.max_seq_len,
        positional=entry.positional,
        name=name,
    )


def build_model(name: str, vocab_size: int, seed: int = 0) -> DecoderLM:
    """Instantiate an untrained model from the zoo."""
    return DecoderLM(get_model_config(name, vocab_size), seed=seed)


# ----------------------------------------------------------------------
# training with on-disk caching
# ----------------------------------------------------------------------

def _cache_paths(cache_dir: Path, key: str) -> tuple[Path, Path]:
    return cache_dir / f"{key}.npz", cache_dir / f"{key}.json"


def _training_pairs(entry: ZooEntry, tokenizer, world, seed: int):
    """Build the training pairs (padded to a shared length) for a zoo entry."""
    from repro.data.registry import make_dataset

    datasets = [
        make_dataset(ds_name, world=world, n_examples=48, seed=seed + i)
        for i, ds_name in enumerate(entry.datasets)
    ]
    max_len = max(ds.max_sequence_length(tokenizer) for ds in datasets)
    max_len = min(max_len, entry.max_seq_len - 64)
    pairs = []
    for ds in datasets:
        pairs.extend(ds.to_training_pairs(tokenizer, max_len))
    return pairs, max_len


def load_or_train(
    name: str,
    cache_dir: Path | str | None = None,
    n_steps: int | None = None,
    seed: int = 0,
    force_retrain: bool = False,
    log_fn: Callable[[str], None] | None = None,
):
    """Return ``(model, tokenizer, world)`` for a zoo entry, training if needed.

    Trained weights are cached under ``cache_dir`` (default
    ``./.cache/models`` or ``$KEYFORMER_REPRO_CACHE``), keyed by the model
    name, step count and seed, so repeated calls — e.g. from the benchmark
    harness — reuse the same trained model.
    """
    from repro.data.registry import build_shared_tokenizer
    from repro.data.world import SyntheticWorld
    from repro.training.trainer import Trainer, TrainingConfig

    if name not in MODEL_ZOO:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}")
    entry = MODEL_ZOO[name]
    n_steps = entry.n_steps if n_steps is None else n_steps

    world = SyntheticWorld(seed=0)
    tokenizer = build_shared_tokenizer(world)
    config = get_model_config(name, tokenizer.vocab_size)
    model = DecoderLM(config, seed=seed)

    cache_dir = Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE_DIR
    cache_dir.mkdir(parents=True, exist_ok=True)
    key = f"{name}_steps{n_steps}_seed{seed}_v{tokenizer.vocab_size}"
    weights_path, meta_path = _cache_paths(cache_dir, key)

    if weights_path.exists() and not force_retrain:
        with np.load(weights_path) as data:
            state = {k: data[k] for k in data.files}
        model.load_state_dict(state)
        return model, tokenizer, world

    pairs, max_len = _training_pairs(entry, tokenizer, world, seed)
    trainer = Trainer(
        model,
        TrainingConfig(
            n_steps=n_steps,
            batch_size=entry.batch_size,
            lr=3e-3,
            warmup_steps=max(n_steps // 10, 1),
            seed=seed,
            log_every=0,
        ),
        log_fn=log_fn,
    )
    result = trainer.train_on_dataset(pairs)

    np.savez(weights_path, **model.state_dict())
    meta = {
        "model": name,
        "n_steps": n_steps,
        "seed": seed,
        "vocab_size": tokenizer.vocab_size,
        "max_training_len": max_len,
        "initial_loss": result.initial_loss,
        "final_loss": result.final_loss,
        "datasets": list(entry.datasets),
    }
    meta_path.write_text(json.dumps(meta, indent=2))
    return model, tokenizer, world
