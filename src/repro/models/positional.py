"""Positional-encoding families used by the paper's model zoo.

The paper evaluates Keyformer across three positional-encoding mechanisms to
show the method is robust to how position is injected:

* **RoPE** (rotary position embeddings) — GPT-J.
* **ALiBi** (attention with linear biases) — MPT.
* **Learned absolute embeddings** — Cerebras-GPT (handled at the embedding
  layer; see :class:`repro.models.transformer.DecoderLM`).

RoPE and ALiBi act inside the attention computation, so this module exposes
stateless helpers used by both the training path and the incremental decoding
path.  All helpers accept arbitrary leading batch/head dimensions and accept
*per-head* position indices, which is required once KV-cache eviction makes
the retained token set differ between heads (Keyformer "original position"
mode, §4.4.2 of the paper).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "RopeTable",
    "get_rope_table",
    "rope_rotate",
    "rope_rotate_backward",
    "alibi_slopes",
    "alibi_bias_matrix",
    "alibi_bias_step",
]

_ROPE_BASE = 10000.0


def _rope_cos_sin(
    positions: np.ndarray, rope_dims: int, base: float = _ROPE_BASE
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``cos`` and ``sin`` tables of shape ``positions.shape + (rope_dims//2,)``."""
    if rope_dims % 2 != 0:
        raise ValueError(f"rope_dims must be even, got {rope_dims}")
    half = rope_dims // 2
    inv_freq = base ** (-np.arange(half, dtype=np.float64) / half)
    angles = np.asarray(positions, dtype=np.float64)[..., None] * inv_freq
    return np.cos(angles), np.sin(angles)


class RopeTable:
    """Precomputed cos/sin values for integer positions ``0..capacity-1``.

    The incremental decode path looks positions up here instead of evaluating
    ``cos``/``sin`` from scratch every step.  Values are bit-identical to
    :func:`_rope_cos_sin` because both compute ``f(position * inv_freq)`` in
    float64 with the same ``inv_freq`` vector.  The table grows geometrically
    on demand, so one shared instance serves arbitrarily long generations.
    """

    def __init__(self, rope_dims: int, base: float = _ROPE_BASE, initial_capacity: int = 2048):
        if rope_dims % 2 != 0:
            raise ValueError(f"rope_dims must be even, got {rope_dims}")
        self.rope_dims = rope_dims
        self.base = base
        self._cos = np.empty((0, rope_dims // 2))
        self._sin = np.empty((0, rope_dims // 2))
        # Dtype-cast mirrors (e.g. float32 for inference) built lazily so the
        # decode path never casts cos/sin per call.
        self._cast: dict[np.dtype, tuple[np.ndarray, np.ndarray]] = {}
        self._ensure(initial_capacity)

    @property
    def capacity(self) -> int:
        return self._cos.shape[0]

    def _ensure(self, n_positions: int) -> None:
        if n_positions <= self.capacity:
            return
        capacity = max(n_positions, 2 * self.capacity, 16)
        self._cos, self._sin = _rope_cos_sin(np.arange(capacity), self.rope_dims, self.base)
        self._cast = {}

    def _tables(self, dtype: np.dtype) -> tuple[np.ndarray, np.ndarray]:
        """cos/sin tables in ``dtype`` (cast once, bit-identical per element)."""
        if dtype == self._cos.dtype:
            return self._cos, self._sin
        cached = self._cast.get(dtype)
        if cached is None:
            cached = (self._cos.astype(dtype), self._sin.astype(dtype))
            self._cast[dtype] = cached
        return cached

    def cos_sin(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(cos, sin)`` of shape ``positions.shape + (rope_dims//2,)``."""
        positions = np.asarray(positions)
        if positions.size == 0:
            half = self.rope_dims // 2
            return (
                np.empty(positions.shape + (half,)),
                np.empty(positions.shape + (half,)),
            )
        self._ensure(int(positions.max()) + 1)
        return self._cos[positions], self._sin[positions]

    def rotate(self, x: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Rotate ``x`` (``(..., d_head)``) at integer ``positions``.

        A lean decode-path variant of :func:`rope_rotate` — no dtype/shape
        validation, bit-identical arithmetic.  ``positions`` must broadcast
        against ``x.shape[:-1]`` and must be an integer array.
        """
        if self.rope_dims == 0 or positions.size == 0:
            return x.copy()
        self._ensure(int(positions.max()) + 1)
        cos, sin = self._tables(x.dtype)
        return self._apply(x, cos[positions], sin[positions])

    def rotate_uniform(self, x: np.ndarray, position: int) -> np.ndarray:
        """Rotate every vector of ``x`` (``(..., d_head)``) at one ``position``.

        The steady-state decode fast path: the query token (and each newly
        appended key) sits at a single scalar position, so the cos/sin rows
        are plain table rows instead of an advanced-indexing gather.
        Bit-identical to :meth:`rotate` at a uniform position.
        """
        if self.rope_dims == 0:
            return x.copy()
        self._ensure(position + 1)
        cos, sin = self._tables(x.dtype)
        return self._apply(x, cos[position], sin[position])

    def _apply(self, x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
        half = self.rope_dims // 2
        x1 = x[..., :half]
        x2 = x[..., half : self.rope_dims]
        out = x.copy()
        out[..., :half] = x1 * cos - x2 * sin
        out[..., half : self.rope_dims] = x1 * sin + x2 * cos
        return out


@lru_cache(maxsize=8)
def get_rope_table(rope_dims: int, base: float = _ROPE_BASE) -> RopeTable:
    """Process-wide shared :class:`RopeTable` for a given geometry."""
    return RopeTable(rope_dims, base)


def rope_rotate(
    x: np.ndarray,
    positions: np.ndarray,
    rope_dims: int | None = None,
    inverse: bool = False,
    table: RopeTable | None = None,
) -> np.ndarray:
    """Apply rotary position embedding to the trailing dimension of ``x``.

    Parameters
    ----------
    x:
        Array of shape ``(..., d_head)``.
    positions:
        Integer positions broadcastable to ``x.shape[:-1]``.  Passing per-head
        positions (e.g. ``(batch, heads, seq)``) is supported.
    rope_dims:
        Number of leading head dimensions to rotate (rotate-half layout).
        Defaults to the full head dimension.
    inverse:
        Apply the inverse rotation (used for the backward pass, since rotation
        is orthogonal).
    table:
        Optional precomputed :class:`RopeTable`; requires integer positions.
        Produces bit-identical results to the direct computation.
    """
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.floating):
        x = x.astype(np.float64)
    d_head = x.shape[-1]
    rope_dims = d_head if rope_dims is None else rope_dims
    if rope_dims > d_head:
        raise ValueError(f"rope_dims ({rope_dims}) exceeds head dim ({d_head})")
    if rope_dims == 0:
        return x.copy()

    positions = np.asarray(positions)
    if (
        table is not None
        and table.rope_dims == rope_dims
        and np.issubdtype(positions.dtype, np.integer)
    ):
        cos, sin = table.cos_sin(positions)
    else:
        cos, sin = _rope_cos_sin(positions, rope_dims)
    if x.dtype != cos.dtype:
        cos = cos.astype(x.dtype)
        sin = sin.astype(x.dtype)
    if inverse:
        sin = -sin

    half = rope_dims // 2
    x1 = x[..., :half]
    x2 = x[..., half:rope_dims]
    rotated_1 = x1 * cos - x2 * sin
    rotated_2 = x1 * sin + x2 * cos

    out = x.copy()
    out[..., :half] = rotated_1
    out[..., half:rope_dims] = rotated_2
    return out


def rope_rotate_backward(
    dout: np.ndarray, positions: np.ndarray, rope_dims: int | None = None
) -> np.ndarray:
    """Gradient of :func:`rope_rotate` w.r.t. its input (inverse rotation)."""
    return rope_rotate(dout, positions, rope_dims=rope_dims, inverse=True)


@lru_cache(maxsize=32)
def _alibi_slopes_cached(n_heads: int) -> tuple[float, ...]:
    if n_heads <= 0:
        raise ValueError("n_heads must be positive")

    def power_of_two_slopes(n: int) -> list[float]:
        start = 2.0 ** (-(2.0 ** -(np.log2(n) - 3)))
        return [start * (start**i) for i in range(n)]

    if np.log2(n_heads).is_integer():
        slopes = power_of_two_slopes(n_heads)
    else:
        closest = 2 ** int(np.floor(np.log2(n_heads)))
        slopes = power_of_two_slopes(closest)
        extra = power_of_two_slopes(2 * closest)[0::2][: n_heads - closest]
        slopes = slopes + extra
    return tuple(float(s) for s in slopes)


def alibi_slopes(n_heads: int) -> np.ndarray:
    """Per-head ALiBi slopes.

    Follows the reference construction from Press et al. (2021): for a head
    count that is a power of two the slopes are a geometric sequence starting
    at ``2^(-8/n)``; otherwise the sequence is extended with interpolated
    slopes exactly like the original implementation.  Slopes are memoized per
    head count; a fresh array is returned so callers may mutate it freely.
    """
    return np.asarray(_alibi_slopes_cached(n_heads), dtype=np.float64)


def alibi_bias_matrix(n_heads: int, seq_len: int) -> np.ndarray:
    """Full causal ALiBi bias of shape ``(n_heads, seq_len, seq_len)``.

    ``bias[h, i, j] = -slope_h * (i - j)`` for ``j <= i``; entries above the
    diagonal are left at zero (the causal mask removes them anyway).
    """
    slopes = alibi_slopes(n_heads)
    positions = np.arange(seq_len)
    distance = positions[:, None] - positions[None, :]
    distance = np.maximum(distance, 0)
    return -slopes[:, None, None] * distance[None, :, :]


def alibi_bias_step(
    n_heads: int, query_position: np.ndarray | int, key_positions: np.ndarray
) -> np.ndarray:
    """ALiBi bias for a single decoding step.

    Parameters
    ----------
    query_position:
        Scalar or array broadcastable against ``key_positions[..., 0]`` giving
        the (original or renumbered) position of the current query token.
    key_positions:
        Array of shape ``(..., n_heads, L)`` or ``(n_heads, L)`` with the
        positions of the cached keys.

    Returns
    -------
    Bias with the same shape as ``key_positions``; entry ``= -slope_h *
    max(query_position - key_position, 0)``.
    """
    key_positions = np.asarray(key_positions, dtype=np.float64)
    slopes = alibi_slopes(n_heads)
    distance = np.asarray(query_position, dtype=np.float64)[..., None, None] - key_positions
    distance = np.maximum(distance, 0.0)
    # Align the slope vector with the head axis (second to last).
    slope_shape = [1] * key_positions.ndim
    slope_shape[-2] = n_heads
    return -slopes.reshape(slope_shape) * distance
