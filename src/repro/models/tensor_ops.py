"""Numerically stable tensor primitives with explicit gradients.

All functions operate on NumPy arrays and are written in vectorized form.  The
backward functions implement the exact analytical gradients and are verified
against finite differences in ``tests/models/test_tensor_ops.py``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "softmax_backward",
    "gelu",
    "gelu_backward",
    "layer_norm",
    "layer_norm_backward",
    "cross_entropy",
    "one_hot",
]

# Coefficient of the tanh GeLU approximation (same as GPT-2 / GPT-J).
# A Python float so float32 inputs are not silently promoted to float64.
_GELU_C = float(np.sqrt(2.0 / np.pi))


_FLOAT_KINDS = frozenset("f")


def _as_float(x: np.ndarray) -> np.ndarray:
    """View ``x`` as a floating array, preserving float32/float64 inputs."""
    x = np.asarray(x)
    if x.dtype.kind not in _FLOAT_KINDS:
        return x.astype(np.float64)
    return x


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``.

    Rows that are entirely ``-inf`` (fully masked) produce all-zero outputs
    rather than NaNs, which is convenient for causal attention masks.  The
    input's floating dtype is preserved (float32 stays float32).
    """
    x = _as_float(x)
    # ndarray methods skip the np.max/np.sum dispatch overhead, which is
    # measurable on the (B, H, L) arrays of the per-token decode path.
    x_max = x.max(axis=axis, keepdims=True)
    # Fully-masked rows have max == -inf; shift them to zero to avoid NaN.
    x_max = np.where(np.isfinite(x_max), x_max, 0.0)
    e = np.exp(x - x_max)
    denom = e.sum(axis=axis, keepdims=True)
    denom = np.where(denom == 0.0, 1.0, denom)
    return e / denom


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis`` (dtype-preserving)."""
    x = _as_float(x)
    x_max = x.max(axis=axis, keepdims=True)
    x_max = np.where(np.isfinite(x_max), x_max, 0.0)
    shifted = x - x_max
    log_denom = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    return shifted - log_denom


def softmax_backward(dprobs: np.ndarray, probs: np.ndarray, axis: int = -1) -> np.ndarray:
    """Gradient of softmax given upstream gradient ``dprobs`` and output ``probs``."""
    inner = np.sum(dprobs * probs, axis=axis, keepdims=True)
    return probs * (dprobs - inner)


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximated Gaussian Error Linear Unit (dtype-preserving).

    Computed with an in-place operation chain; bit-identical to the textbook
    ``0.5 * x * (1 + tanh(c * (x + 0.044715 * x^3)))`` because multiplication
    is exactly commutative and scaling by 0.5 is exact.
    """
    x = _as_float(x)
    inner = x * x
    inner *= x
    inner *= 0.044715
    inner += x
    inner *= _GELU_C
    np.tanh(inner, out=inner)
    inner += 1.0
    inner *= x
    inner *= 0.5
    return inner


def gelu_backward(dout: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Gradient of the tanh-approximated GeLU with respect to its input."""
    x = _as_float(x)
    u = _GELU_C * (x + 0.044715 * x**3)
    tanh_u = np.tanh(u)
    du_dx = _GELU_C * (1.0 + 3 * 0.044715 * x**2)
    dgelu = 0.5 * (1.0 + tanh_u) + 0.5 * x * (1.0 - tanh_u**2) * du_dx
    return dout * dgelu


def layer_norm(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
) -> tuple[np.ndarray, dict]:
    """Layer normalization over the last dimension.

    Returns the normalized output and a cache consumed by
    :func:`layer_norm_backward`.
    """
    x = _as_float(x)
    d = x.shape[-1]
    # Hand-rolled mean/var: bit-identical to ndarray.mean/.var but without
    # their per-call dispatch overhead (the decode path normalizes (B, d)
    # vectors thousands of times per generation).
    mean = x.sum(axis=-1, keepdims=True) / d
    centered = x - mean
    var = (centered * centered).sum(axis=-1, keepdims=True) / d
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = centered * inv_std
    out = gamma * x_hat + beta
    cache = {"x_hat": x_hat, "inv_std": inv_std, "gamma": gamma}
    return out, cache


def layer_norm_backward(
    dout: np.ndarray, cache: dict
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`layer_norm`.

    Returns ``(dx, dgamma, dbeta)``.  ``dgamma`` and ``dbeta`` are summed over
    all leading dimensions.
    """
    x_hat = cache["x_hat"]
    inv_std = cache["inv_std"]
    gamma = cache["gamma"]
    d = x_hat.shape[-1]

    reduce_axes = tuple(range(dout.ndim - 1))
    dgamma = np.sum(dout * x_hat, axis=reduce_axes)
    dbeta = np.sum(dout, axis=reduce_axes)

    dx_hat = dout * gamma
    dx = (
        inv_std
        / d
        * (
            d * dx_hat
            - np.sum(dx_hat, axis=-1, keepdims=True)
            - x_hat * np.sum(dx_hat * x_hat, axis=-1, keepdims=True)
        )
    )
    return dx, dgamma, dbeta


def cross_entropy(
    logits: np.ndarray, targets: np.ndarray, ignore_index: int = -100
) -> tuple[float, np.ndarray]:
    """Mean token-level cross entropy and its gradient w.r.t. ``logits``.

    Parameters
    ----------
    logits:
        Array of shape ``(N, vocab)``.
    targets:
        Integer array of shape ``(N,)``.  Positions equal to ``ignore_index``
        contribute neither to the loss nor to the gradient.
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D (N, vocab), got shape {logits.shape}")
    if targets.shape[0] != logits.shape[0]:
        raise ValueError("targets length must match logits rows")

    mask = targets != ignore_index
    n_valid = int(mask.sum())
    logp = log_softmax(logits, axis=-1)
    safe_targets = np.where(mask, targets, 0)
    picked = logp[np.arange(logits.shape[0]), safe_targets]
    loss = -float(np.sum(picked * mask)) / max(n_valid, 1)

    probs = np.exp(logp)
    dlogits = probs
    dlogits[np.arange(logits.shape[0]), safe_targets] -= 1.0
    dlogits *= mask[:, None] / max(n_valid, 1)
    return loss, dlogits


def one_hot(indices: np.ndarray, depth: int) -> np.ndarray:
    """One-hot encode an integer array to ``(..., depth)``."""
    indices = np.asarray(indices)
    out = np.zeros(indices.shape + (depth,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out
