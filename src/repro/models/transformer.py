"""Decoder-only language model built from the NumPy substrate layers."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.models import tensor_ops as ops
from repro.models.block import (
    BatchedLayerDecodeCache,
    DecoderBlock,
    LayerDecodeCache,
    VerifyLayerCache,
)
from repro.models.config import ModelConfig
from repro.models.layers import Embedding, LayerNorm, Linear, Module, dot_rows

__all__ = ["DecoderLM"]


class DecoderLM(Module):
    """Autoregressive decoder-only transformer language model.

    The model supports three positional-encoding families via
    :class:`ModelConfig.positional`:

    * ``"rope"`` — rotary embeddings applied inside attention (GPT-J family);
    * ``"alibi"`` — linear attention biases (MPT family);
    * ``"learned"`` — absolute position embeddings added to token embeddings
      (Cerebras-GPT family).

    Two execution paths are provided:

    * :meth:`forward` / :meth:`backward` / :meth:`loss` — full-sequence
      training (and prompt processing);
    * :meth:`embed_step` + :meth:`DecoderBlock.decode_step` +
      :meth:`lm_logits` — incremental decoding with a pluggable KV cache.
    """

    def __init__(self, config: ModelConfig, seed: int = 0):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(seed)

        self.token_embedding = Embedding(config.vocab_size, config.d_model, rng, config.init_std)
        self.position_embedding: Embedding | None = None
        if config.positional == "learned":
            self.position_embedding = Embedding(
                config.max_seq_len, config.d_model, rng, config.init_std
            )
        self.blocks = [DecoderBlock(config, rng) for _ in range(config.n_layers)]
        self.ln_final = LayerNorm(config.d_model, eps=config.layer_norm_eps)
        self.lm_head: Linear | None = None
        if not config.tie_embeddings:
            self.lm_head = Linear(config.d_model, config.vocab_size, rng, config.init_std)

        if config.np_dtype != np.float64:
            # Weights are drawn in float64 for seed-stable initialization,
            # then cast once so every activation downstream stays in the
            # configured compute dtype.
            self.to_dtype(config.np_dtype)

        self._final_hidden: np.ndarray | None = None

    # ------------------------------------------------------------------
    # embedding / head helpers
    # ------------------------------------------------------------------
    def embed(self, token_ids: np.ndarray, positions: np.ndarray | None = None) -> np.ndarray:
        """Embed a batch of token sequences: ``(B, T)`` -> ``(B, T, d_model)``."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        h = self.token_embedding(token_ids)
        if self.position_embedding is not None:
            if positions is None:
                positions = np.arange(token_ids.shape[1])
            h = h + self.position_embedding(np.asarray(positions))
        return h

    def embed_step(self, token_ids: np.ndarray, positions: np.ndarray | int) -> np.ndarray:
        """Embed a single decoding step: ``(B,)`` token ids -> ``(B, d_model)``."""
        token_ids = np.asarray(token_ids).reshape(-1)
        h = self.token_embedding(token_ids)
        if self.position_embedding is not None:
            pos = np.asarray(positions).reshape(-1)
            pos = np.broadcast_to(pos, token_ids.shape)
            pos = np.minimum(pos, self.config.max_seq_len - 1)
            h = h + self.position_embedding(pos)
        return h

    def lm_logits(self, hidden: np.ndarray) -> np.ndarray:
        """Project hidden states to vocabulary logits."""
        if self.lm_head is not None:
            return self.lm_head(hidden)
        weight = self.token_embedding.params["weight"]
        if hidden.ndim == 3:
            # Sequence path (prompt forward / chunked prefill): BLAS GEMM
            # rows over a *contiguous* B are bit-stable when leading rows are
            # removed, while the transposed view hits a strided small-M
            # kernel whose reduction order depends on the row count — which
            # would break the prefix-sharing invariant that a suffix chunk
            # reproduces the full forward's rows exactly.  The contiguous
            # copy is bit-identical to the view at any full-sequence length
            # (pinned by the golden tests) and is rebuilt per call so
            # in-place weight updates during training are always seen.
            return hidden @ np.ascontiguousarray(weight.T)
        return hidden @ weight.T

    # ------------------------------------------------------------------
    # training / prompt processing path
    # ------------------------------------------------------------------
    def forward(
        self,
        token_ids: np.ndarray,
        positions: np.ndarray | None = None,
        store_attention: bool = False,
    ) -> np.ndarray:
        """Full-sequence forward pass returning logits ``(B, T, vocab)``.

        When ``store_attention`` is true every attention layer keeps its
        post-softmax probabilities in ``block.attn.last_attention`` for
        analysis and for prompt-phase score accumulation.
        """
        token_ids = np.asarray(token_ids)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        if token_ids.shape[1] > self.config.max_seq_len and self.config.positional == "learned":
            raise ValueError(
                f"sequence length {token_ids.shape[1]} exceeds max_seq_len "
                f"{self.config.max_seq_len} for learned positional embeddings"
            )
        h = self.embed(token_ids, positions=positions)
        for block in self.blocks:
            h = block(h, positions=positions, store_attention=store_attention)
        h = self.ln_final(h)
        self._final_hidden = h
        return self.lm_logits(h)

    def __call__(self, token_ids: np.ndarray, **kwargs) -> np.ndarray:
        return self.forward(token_ids, **kwargs)

    def loss(
        self, token_ids: np.ndarray, targets: np.ndarray, ignore_index: int = -100
    ) -> tuple[float, np.ndarray]:
        """Compute mean cross-entropy and the gradient w.r.t. the logits.

        ``targets`` must have the same shape as ``token_ids``; positions equal
        to ``ignore_index`` are excluded from the loss (used to mask prompt
        tokens when only the summary/response should be learned).
        """
        logits = self.forward(token_ids)
        b, t, v = logits.shape
        loss, dlogits = ops.cross_entropy(
            logits.reshape(b * t, v), np.asarray(targets).reshape(b * t), ignore_index
        )
        return loss, dlogits.reshape(b, t, v)

    def backward(self, dlogits: np.ndarray) -> None:
        """Backpropagate from the vocabulary logits through the whole model."""
        if self._final_hidden is None:
            raise RuntimeError("backward called before forward")
        if self.lm_head is not None:
            dh = self.lm_head.backward(dlogits)
        else:
            weight = self.token_embedding.params["weight"]
            b, t, v = dlogits.shape
            dh = dlogits @ weight
            dweight = dlogits.reshape(b * t, v).T @ self._final_hidden.reshape(b * t, -1)
            self.token_embedding.grads["weight"] += dweight
        dh = self.ln_final.backward(dh)
        for block in reversed(self.blocks):
            dh = block.backward(dh)
        if self.position_embedding is not None:
            # The positional embedding was broadcast-added over the batch, so
            # its gradient is the sum of dh over the batch dimension.
            self.position_embedding.backward(dh.sum(axis=0))
        self.token_embedding.backward(dh)

    def train_step_gradients(
        self, token_ids: np.ndarray, targets: np.ndarray, ignore_index: int = -100
    ) -> float:
        """Convenience wrapper: zero grads, forward, loss, backward; return loss."""
        self.zero_grad()
        loss, dlogits = self.loss(token_ids, targets, ignore_index=ignore_index)
        self.backward(dlogits)
        return loss

    # ------------------------------------------------------------------
    # chunked prefill path (prefix sharing)
    # ------------------------------------------------------------------
    def forward_suffix(
        self,
        suffix_ids: np.ndarray,
        prefix_kv: Sequence[tuple[np.ndarray, np.ndarray]],
        prefix_len: int,
    ) -> tuple[np.ndarray, list[tuple[np.ndarray, np.ndarray]]]:
        """Prompt forward for a suffix chunk over cached prefix KV.

        ``suffix_ids`` has shape ``(1, S)`` with ``S >= 2`` (the bit-stability
        floor of the chunked projections); ``prefix_kv`` holds one
        ``(keys_for_attention, values)`` pair per layer, shape ``(1, H, P, d)``
        (keys RoPE-rotated at original positions for RoPE models, raw
        otherwise).  Returns the suffix logits ``(1, S, vocab)`` — bit-equal
        to the corresponding rows of :meth:`forward` on the full prompt —
        and the per-layer ``(k_raw, v)`` suffix tensors that seed the cache.

        Attention maps are *not* stored: the engine only takes this path for
        eviction policies that never read prompt attention values.
        """
        suffix_ids = np.asarray(suffix_ids)
        if suffix_ids.ndim == 1:
            suffix_ids = suffix_ids[None, :]
        s = suffix_ids.shape[1]
        if s < 2:
            raise ValueError(
                f"chunked prefill needs a suffix of >= 2 tokens, got {s} "
                "(cap the shared prefix at prompt_len - 2)"
            )
        if len(prefix_kv) != len(self.blocks):
            raise ValueError(
                f"expected {len(self.blocks)} layers of prefix KV, got {len(prefix_kv)}"
            )
        positions = np.arange(prefix_len, prefix_len + s)
        h = self.embed(suffix_ids, positions=positions)
        suffix_kv: list[tuple[np.ndarray, np.ndarray]] = []
        for block, (prefix_keys, prefix_values) in zip(self.blocks, prefix_kv):
            h, k_raw, v = block.prefill_chunk(h, prefix_keys, prefix_values, prefix_len)
            suffix_kv.append((k_raw, v))
        h = self.ln_final(h)
        return self.lm_logits(h), suffix_kv

    # ------------------------------------------------------------------
    # incremental decode path
    # ------------------------------------------------------------------
    def decode_step(
        self,
        token_ids: np.ndarray,
        positions: np.ndarray | int,
        layer_caches: Sequence[LayerDecodeCache],
    ) -> np.ndarray:
        """Run one decoding step through all layers using per-layer caches.

        Returns the vocabulary logits for the new token, shape ``(B, vocab)``.
        """
        if len(layer_caches) != len(self.blocks):
            raise ValueError(
                f"expected {len(self.blocks)} layer caches, got {len(layer_caches)}"
            )
        h = self.embed_step(token_ids, positions)
        for block, cache in zip(self.blocks, layer_caches):
            h = block.decode_step(h, cache)
        h = self.ln_final(h)
        return self.lm_logits(h)

    def verify_step(
        self,
        token_ids: np.ndarray,
        positions: np.ndarray,
        layer_caches: Sequence["VerifyLayerCache"],
    ) -> np.ndarray:
        """Teacher-forced multi-token decode for speculative verification.

        ``token_ids``/``positions`` have shape ``(S,)`` — ``S`` consecutive
        tokens of *one* sequence (the last committed token followed by the
        draft).  Every layer appends all ``S`` KV entries and attends each
        query over its causal prefix, so the returned logits ``(S, vocab)``
        satisfy: at float64, row ``i`` is bit-identical to
        :meth:`decode_step` fed token ``i`` after tokens ``0..i-1`` — the
        greedy-acceptance test of speculative decoding therefore reproduces
        vanilla greedy decoding exactly.
        """
        token_ids = np.asarray(token_ids).reshape(-1)
        positions = np.asarray(positions).reshape(-1)
        if len(layer_caches) != len(self.blocks):
            raise ValueError(
                f"expected {len(self.blocks)} layer caches, got {len(layer_caches)}"
            )
        h = self.embed_step(token_ids, positions)
        for block, cache in zip(self.blocks, layer_caches):
            h = block.verify_step(h, cache)
        h = self.ln_final(h)
        if h.dtype == np.float64:
            return self.lm_logits_rows(h)
        return self.lm_logits(h)

    def decode_step_batch(
        self,
        token_ids: np.ndarray,
        positions: np.ndarray,
        layer_caches: Sequence[BatchedLayerDecodeCache],
    ) -> np.ndarray:
        """One decoding step for a ragged batch of independent sequences.

        ``token_ids`` and ``positions`` have shape ``(batch,)`` — each
        sequence contributes one token at its own position.  Embedding,
        layer norms and activations are row-independent; projections use the
        row-exact kernels at float64 — so each row of the returned logits
        ``(batch, vocab)`` is bit-identical to :meth:`decode_step` run on
        that sequence alone.  At float32, projections run fully batched.
        """
        if len(layer_caches) != len(self.blocks):
            raise ValueError(
                f"expected {len(self.blocks)} layer caches, got {len(layer_caches)}"
            )
        h = self.embed_step(token_ids, positions)
        for block, cache in zip(self.blocks, layer_caches):
            h = block.decode_step_batch(h, cache)
        h = self.ln_final(h)
        if h.dtype == np.float64:
            return self.lm_logits_rows(h)
        return self.lm_logits(h)

    def lm_logits_rows(self, hidden: np.ndarray) -> np.ndarray:
        """Row-exact LM head for 2-D hidden states (bit-parity decode path)."""
        if self.lm_head is not None:
            return self.lm_head.forward_rows(hidden)
        return dot_rows(hidden, self.token_embedding.params["weight"].T)

    def collect_attention(self) -> list[np.ndarray]:
        """Return the stored attention maps of every layer (after a forward with
        ``store_attention=True``)."""
        maps = []
        for block in self.blocks:
            if block.attn.last_attention is None:
                raise RuntimeError("forward(store_attention=True) has not been run")
            maps.append(block.attn.last_attention)
        return maps
