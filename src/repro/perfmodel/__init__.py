"""Analytical performance model of LLM generative inference on an A100-class GPU.

The paper's performance results (Figures 1, 9, 10 and Table 1) are measured on
an NVIDIA A100 (80 GB).  Without that hardware we reproduce the *shape* of
those results with a roofline model: per-token decode latency is dominated by
moving the model weights and the KV cache from HBM, so reducing the KV cache
by 50 % directly reduces the memory-bound portion of each step and allows a
larger batch before running out of HBM capacity.
"""

from repro.perfmodel.hardware import HardwareSpec, A100_80GB
from repro.perfmodel.memory import PerfModelSpec, MemoryModel, MPT_7B, GPT_J_6B, CEREBRAS_GPT_6_7B
from repro.perfmodel.latency import LatencyModel, LatencyBreakdown, AttentionPolicyOverhead
from repro.perfmodel.serving import StepCostModel, TTFTModel
from repro.perfmodel.speculation import SpeculationModel, expected_tokens_per_round
from repro.perfmodel.throughput import ThroughputModel, ThroughputResult

__all__ = [
    "StepCostModel",
    "TTFTModel",
    "SpeculationModel",
    "expected_tokens_per_round",
    "HardwareSpec",
    "A100_80GB",
    "PerfModelSpec",
    "MemoryModel",
    "MPT_7B",
    "GPT_J_6B",
    "CEREBRAS_GPT_6_7B",
    "LatencyModel",
    "LatencyBreakdown",
    "AttentionPolicyOverhead",
    "ThroughputModel",
    "ThroughputResult",
]
