"""Hardware specifications for the roofline performance model."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HardwareSpec", "A100_80GB", "A100_40GB"]


@dataclass(frozen=True)
class HardwareSpec:
    """An accelerator described by the quantities the roofline model needs.

    Attributes
    ----------
    name:
        Human-readable device name.
    hbm_bandwidth_gbps:
        Peak HBM bandwidth in GB/s.
    peak_fp16_tflops:
        Peak dense fp16 tensor throughput in TFLOP/s.
    hbm_capacity_gb:
        HBM capacity in GB.
    memory_efficiency:
        Achievable fraction of peak bandwidth for streaming reads (0–1).
    compute_efficiency:
        Achievable fraction of peak FLOP/s for the small GEMV-like kernels of
        token generation (0–1).
    kernel_launch_overhead_s:
        Fixed per-decoder-step overhead (kernel launches, Python dispatch).
    """

    name: str
    hbm_bandwidth_gbps: float
    peak_fp16_tflops: float
    hbm_capacity_gb: float
    memory_efficiency: float = 0.8
    compute_efficiency: float = 0.5
    kernel_launch_overhead_s: float = 2.0e-4

    def __post_init__(self) -> None:
        if self.hbm_bandwidth_gbps <= 0 or self.peak_fp16_tflops <= 0:
            raise ValueError("bandwidth and peak FLOP/s must be positive")
        if not (0 < self.memory_efficiency <= 1 and 0 < self.compute_efficiency <= 1):
            raise ValueError("efficiencies must be in (0, 1]")

    @property
    def effective_bandwidth_bytes(self) -> float:
        """Achievable bandwidth in bytes/s."""
        return self.hbm_bandwidth_gbps * 1e9 * self.memory_efficiency

    @property
    def effective_flops(self) -> float:
        """Achievable FLOP/s."""
        return self.peak_fp16_tflops * 1e12 * self.compute_efficiency

    @property
    def capacity_bytes(self) -> float:
        """HBM capacity in bytes."""
        return self.hbm_capacity_gb * 1e9


#: NVIDIA A100 (80 GB, SXM) — the device used in the paper's evaluation.
A100_80GB = HardwareSpec(
    name="NVIDIA A100 80GB",
    hbm_bandwidth_gbps=2039.0,
    peak_fp16_tflops=312.0,
    hbm_capacity_gb=80.0,
)

#: 40 GB variant, useful for ablating the OOM crossover point.
A100_40GB = HardwareSpec(
    name="NVIDIA A100 40GB",
    hbm_bandwidth_gbps=1555.0,
    peak_fp16_tflops=312.0,
    hbm_capacity_gb=40.0,
)
