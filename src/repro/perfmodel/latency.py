"""Roofline latency model for prompt processing and token generation.

Token generation on large models is memory-bandwidth bound: every step must
stream the model weights plus the entire KV cache from HBM.  Prompt
processing is compute bound (large GEMMs).  The model therefore computes, per
decoding step:

* ``weight_time``   — model bytes / effective bandwidth,
* ``kv_time``       — KV-cache bytes for the current cache length / bandwidth,
* ``compute_time``  — GEMV + attention FLOPs / effective FLOP/s,
* ``overhead``      — fixed per-step kernel-launch overhead, plus the score
  function overhead of the eviction policy (Keyformer's Gumbel softmax).

Per-step latency is ``max(memory, compute) + overhead`` (memory and compute
overlap on the GPU), which reduces to the memory term for 7B-class models —
exactly the regime the paper analyses.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.perfmodel.hardware import HardwareSpec, A100_80GB
from repro.perfmodel.memory import MemoryModel, PerfModelSpec

__all__ = ["AttentionPolicyOverhead", "LatencyBreakdown", "LatencyModel"]


@dataclass(frozen=True)
class AttentionPolicyOverhead:
    """Extra per-step cost of a KV-cache eviction policy's score function.

    ``flops_per_cached_token`` models the Gumbel-softmax / top-k work per
    cached token per layer; ``fixed_seconds`` models kernel launches for the
    additional ops.  ``none()`` describes full attention / window attention,
    ``keyformer()`` the Gumbel softmax + top-k selection, ``h2o()`` the
    accumulated-attention update + top-k.
    """

    name: str
    flops_per_cached_token: float = 0.0
    fixed_seconds: float = 0.0

    @classmethod
    def none(cls) -> "AttentionPolicyOverhead":
        return cls(name="none")

    @classmethod
    def h2o(cls) -> "AttentionPolicyOverhead":
        # accumulate + top-k ≈ a few ops per cached token per layer plus a
        # small number of extra kernel launches per step.
        return cls(name="h2o", flops_per_cached_token=6.0, fixed_seconds=5.0e-6)

    @classmethod
    def keyformer(cls) -> "AttentionPolicyOverhead":
        # Gumbel noise addition, temperature scaling, softmax and top-k:
        # ≈ 12 ops per cached token per layer plus extra kernel launches.
        return cls(name="keyformer", flops_per_cached_token=12.0, fixed_seconds=1.0e-5)


@dataclass
class LatencyBreakdown:
    """Per-phase latency decomposition of one generation run (seconds)."""

    prompt_time: float = 0.0
    kv_data_movement_time: float = 0.0
    weight_data_movement_time: float = 0.0
    compute_time: float = 0.0
    attention_compute_time: float = 0.0
    score_overhead_time: float = 0.0
    step_overhead_time: float = 0.0
    n_decode_steps: int = 0

    @property
    def decode_time(self) -> float:
        """Total token-generation time (memory/compute overlap already applied)."""
        memory = self.kv_data_movement_time + self.weight_data_movement_time
        return (
            max(memory, self.compute_time)
            + self.score_overhead_time
            + self.step_overhead_time
        )

    @property
    def total_time(self) -> float:
        return self.prompt_time + self.decode_time

    @property
    def kv_movement_fraction(self) -> float:
        """Fraction of total time spent moving KV-cache data (Figure 1a green bars)."""
        if self.total_time == 0:
            return 0.0
        return self.kv_data_movement_time / self.total_time

    def as_dict(self) -> dict:
        return {
            "prompt_time_s": self.prompt_time,
            "decode_time_s": self.decode_time,
            "total_time_s": self.total_time,
            "kv_data_movement_s": self.kv_data_movement_time,
            "weight_data_movement_s": self.weight_data_movement_time,
            "compute_s": self.compute_time,
            "attention_compute_s": self.attention_compute_time,
            "score_overhead_s": self.score_overhead_time,
            "kv_movement_fraction": self.kv_movement_fraction,
        }


class LatencyModel:
    """Roofline latency model for one model on one accelerator."""

    def __init__(
        self,
        spec: PerfModelSpec,
        hardware: HardwareSpec = A100_80GB,
        kv_reorder_passes: float = 2.0,
    ):
        self.spec = spec
        self.hardware = hardware
        self.memory = MemoryModel(spec)
        #: Extra KV-cache traffic per step when beam search re-orders the cache
        #: (one read + one write of the whole cache), matching the HuggingFace
        #: beam-search implementation the paper measures.
        self.kv_reorder_passes = kv_reorder_passes

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------
    def prompt_flops(self, prompt_len: int, batch_size: int = 1) -> float:
        """FLOPs of the prompt phase (dense forward over ``prompt_len`` tokens)."""
        params = self.spec.n_parameters()
        dense = 2.0 * params * prompt_len * batch_size
        attention = (
            4.0 * self.spec.n_layers * self.spec.d_model * prompt_len**2 * batch_size
        )
        return dense + attention

    def decode_step_flops(self, kv_len: int, batch_size: int = 1) -> float:
        """FLOPs of one decode step with ``kv_len`` cached tokens."""
        params = self.spec.n_parameters()
        dense = 2.0 * params * batch_size
        attention = 4.0 * self.spec.n_layers * self.spec.d_model * kv_len * batch_size
        return dense + attention

    def attention_step_flops(self, kv_len: int, batch_size: int = 1) -> float:
        """FLOPs of the scaled-dot-product ``(QK^T)V`` only (Figure 10 right)."""
        return 4.0 * self.spec.n_layers * self.spec.d_model * kv_len * batch_size

    def prompt_latency(self, prompt_len: int, batch_size: int = 1) -> float:
        """Prompt-processing latency (compute bound, overlapped with weight reads)."""
        compute = self.prompt_flops(prompt_len, batch_size) / self.hardware.effective_flops
        weights = self.memory.model_bytes() / self.hardware.effective_bandwidth_bytes
        return max(compute, weights) + self.hardware.kernel_launch_overhead_s

    # ------------------------------------------------------------------
    # full generation runs
    # ------------------------------------------------------------------
    def generation_breakdown(
        self,
        prompt_len: int,
        gen_len: int,
        batch_size: int = 1,
        beam_size: int = 1,
        kv_fraction: float = 1.0,
        policy_overhead: AttentionPolicyOverhead | None = None,
    ) -> LatencyBreakdown:
        """Latency breakdown of prompt + ``gen_len`` generated tokens.

        ``kv_fraction`` is the retained KV-cache fraction: 1.0 models full
        attention (the cache grows every step), smaller values model a policy
        that caps the cache at ``kv_fraction * prompt_len`` entries.
        """
        if not (0 < kv_fraction <= 1.0):
            raise ValueError("kv_fraction must be in (0, 1]")
        policy_overhead = policy_overhead or AttentionPolicyOverhead.none()
        bw = self.hardware.effective_bandwidth_bytes
        flops = self.hardware.effective_flops
        effective_batch = batch_size * beam_size

        breakdown = LatencyBreakdown(n_decode_steps=gen_len)
        breakdown.prompt_time = self.prompt_latency(prompt_len, effective_batch)

        budget = max(int(round(kv_fraction * prompt_len)), 1)
        weight_bytes = self.memory.model_bytes()
        kv_bytes_per_token = self.memory.kv_bytes_per_token() * effective_batch
        kv_traffic_passes = 1.0 + (self.kv_reorder_passes if beam_size > 1 else 0.0)

        for step in range(gen_len):
            if kv_fraction >= 1.0:
                kv_len = prompt_len + step
            else:
                kv_len = budget
            kv_bytes = kv_bytes_per_token * kv_len * kv_traffic_passes
            breakdown.kv_data_movement_time += kv_bytes / bw
            breakdown.weight_data_movement_time += weight_bytes / bw
            step_flops = self.decode_step_flops(kv_len, effective_batch)
            breakdown.compute_time += step_flops / flops
            breakdown.attention_compute_time += (
                self.attention_step_flops(kv_len, effective_batch) / flops
            )
            breakdown.score_overhead_time += (
                policy_overhead.flops_per_cached_token
                * kv_len
                * self.spec.n_layers
                * effective_batch
                / flops
                + policy_overhead.fixed_seconds
            )
            breakdown.step_overhead_time += self.hardware.kernel_launch_overhead_s
        return breakdown

    def generation_latency(
        self,
        prompt_len: int,
        gen_len: int,
        batch_size: int = 1,
        beam_size: int = 1,
        kv_fraction: float = 1.0,
        policy_overhead: AttentionPolicyOverhead | None = None,
    ) -> float:
        """End-to-end latency of prompt + generation in seconds."""
        return self.generation_breakdown(
            prompt_len, gen_len, batch_size, beam_size, kv_fraction, policy_overhead
        ).total_time

    def speedup_vs_full(
        self,
        prompt_len: int,
        gen_len: int,
        kv_fraction: float,
        batch_size: int = 1,
        beam_size: int = 1,
        policy_overhead: AttentionPolicyOverhead | None = None,
    ) -> float:
        """Latency speedup of a reduced-cache policy over full attention (Figure 9)."""
        full = self.generation_latency(prompt_len, gen_len, batch_size, beam_size, 1.0)
        reduced = self.generation_latency(
            prompt_len, gen_len, batch_size, beam_size, kv_fraction, policy_overhead
        )
        return full / reduced
