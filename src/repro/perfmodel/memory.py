"""Model and KV-cache memory accounting for the performance model.

Besides the contiguous worst-case model, :class:`MemoryModel` accounts for
**paged** KV storage (fixed-size pages, as implemented in
:mod:`repro.kvcache.paged`): per-sequence memory rounds up to whole pages
(bounded internal fragmentation of at most ``page_size - 1`` tokens per
sequence) while reservation-based fragmentation — the worst-case
``prompt + max_new_tokens`` slabs the pre-paged engine had to hold — is
eliminated entirely.  The paged formulas (:meth:`MemoryModel.kv_page_bytes`,
:meth:`MemoryModel.paged_kv_cache_bytes`,
:meth:`MemoryModel.paged_max_concurrency`) take a ``kv_dtype`` knob: with
``"int8"`` a page stores 1-byte codes plus per-page/per-head float32
``(scale, zero)`` pairs (:mod:`repro.kvcache.quant`), which is how the same
HBM budget funds several times more concurrent sequences.

A **tiered** section models KV offload (:mod:`repro.kvcache.offload`):
:meth:`MemoryModel.tier0_frames` converts a tier-0 byte budget into page
frames the way the serving engine does, :meth:`MemoryModel.
tiered_capacity_ratio` and :meth:`MemoryModel.tiered_max_concurrency` give
the capacity amplification and frame-bound concurrency when cold pages
spill to a tier-1 arena, and :meth:`MemoryModel.spill_transfer_seconds`
prices the spill/restore traffic a decode step pays across the tier link.

Two distinct byte conventions coexist here, on purpose:

* **Analytic deployment projections** use ``PerfModelSpec.dtype_bytes``
  (default 2 — the paper's fp16 serving hardware) unless ``kv_dtype``
  overrides them.  These model a hypothetical full-size deployment.
* **Measured residency** (:meth:`MemoryModel.measured_kv_bytes`) asks live
  caches what a token *actually* costs in this process — the storage
  dtype's item size for full-precision pools, int8 codes plus amortized
  page scales for quantized ones — so it never re-derives bytes from a
  parallel formula that could drift from the implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["PerfModelSpec", "MemoryModel", "MPT_7B", "GPT_J_6B", "CEREBRAS_GPT_6_7B"]


@dataclass(frozen=True)
class PerfModelSpec:
    """Architecture description of a (full-size) transformer for perf modelling."""

    name: str
    n_layers: int
    d_model: int
    n_heads: int
    d_ff: int
    vocab_size: int
    dtype_bytes: int = 2  # fp16 deployment

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ValueError("d_model must be divisible by n_heads")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")

    @property
    def d_head(self) -> int:
        return self.d_model // self.n_heads

    def n_parameters(self) -> int:
        """Approximate parameter count (attention + MLP + embeddings)."""
        per_layer = 4 * self.d_model**2 + 2 * self.d_model * self.d_ff
        return self.n_layers * per_layer + self.vocab_size * self.d_model


#: MPT-7B — the model used for the paper's performance experiments.
MPT_7B = PerfModelSpec(
    name="MPT-7B", n_layers=32, d_model=4096, n_heads=32, d_ff=16384, vocab_size=50432
)
GPT_J_6B = PerfModelSpec(
    name="GPT-J-6B", n_layers=28, d_model=4096, n_heads=16, d_ff=16384, vocab_size=50400
)
CEREBRAS_GPT_6_7B = PerfModelSpec(
    name="Cerebras-GPT-6.7B", n_layers=32, d_model=4096, n_heads=32, d_ff=16384, vocab_size=50257
)


class MemoryModel:
    """Byte accounting for model weights and the KV cache."""

    def __init__(self, spec: PerfModelSpec):
        self.spec = spec

    # ------------------------------------------------------------------
    def model_bytes(self) -> float:
        """Size of the model weights in bytes."""
        return self.spec.n_parameters() * self.spec.dtype_bytes

    def kv_bytes_per_token(self, beam_size: int = 1) -> float:
        """KV-cache bytes contributed by one sequence token (all layers, K and V)."""
        return 2 * self.spec.n_layers * self.spec.d_model * self.spec.dtype_bytes * beam_size

    def kv_cache_bytes(self, seq_len: int, batch_size: int = 1, beam_size: int = 1) -> float:
        """Total KV-cache size for ``seq_len`` cached tokens per sequence."""
        return self.kv_bytes_per_token(beam_size) * seq_len * batch_size

    def activation_bytes(self, batch_size: int, seq_len: int) -> float:
        """Rough activation working-set during decode (a few residual streams)."""
        return 8 * batch_size * seq_len * self.spec.d_model * self.spec.dtype_bytes

    # ------------------------------------------------------------------
    # paged storage
    # ------------------------------------------------------------------
    def kv_pages(self, seq_len: int, page_size: int) -> int:
        """Pages (per layer) holding ``seq_len`` cached tokens."""
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        return -(-int(seq_len) // page_size)

    def kv_page_bytes(self, page_size: int, kv_dtype: str | None = None) -> float:
        """Bytes of one KV page across all layers (keys + values).

        ``kv_dtype=None`` stores the deployment dtype
        (``PerfModelSpec.dtype_bytes`` per element); ``"int8"`` stores 1-byte
        codes plus one float32 ``(scale, zero)`` pair per page, per head, per
        K/V stream, per layer — the storage format of
        :class:`repro.kvcache.quant.QuantizedBlockPool`.
        """
        if kv_dtype in (None, "native"):
            return self.kv_bytes_per_token() * page_size
        if str(kv_dtype) != "int8":
            raise ValueError(f"unknown kv_dtype {kv_dtype!r}; expected None or 'int8'")
        codes = 2 * self.spec.n_layers * self.spec.d_model * page_size
        params = 2 * 2 * 4 * self.spec.n_heads * self.spec.n_layers
        return float(codes + params)

    def paged_kv_cache_bytes(
        self,
        seq_len: int,
        batch_size: int = 1,
        page_size: int = 16,
        kv_dtype: str | None = None,
    ) -> float:
        """Resident KV bytes under paged storage: whole pages per sequence.

        The gap to :meth:`kv_cache_bytes` at the same ``seq_len`` is the
        internal fragmentation (< one page per sequence); the gap to the
        worst-case reservation ``kv_cache_bytes(prompt + max_new)`` is what
        paging reclaims for additional concurrent sequences.  ``kv_dtype``
        (see :meth:`kv_page_bytes`) additionally shrinks what each resident
        page costs — eviction and quantization compose.
        """
        return (
            self.kv_pages(seq_len, page_size)
            * self.kv_page_bytes(page_size, kv_dtype)
            * batch_size
        )

    def paged_max_concurrency(
        self,
        hbm_capacity_bytes: float,
        seq_len: int,
        page_size: int = 16,
        watermark: float = 0.1,
        kv_dtype: str | None = None,
    ) -> int:
        """Concurrent sequences of resident length ``seq_len`` a paged pool
        sized to the free HBM (after weights, below the watermark) can hold.

        With ``kv_dtype="int8"`` each sequence's pages cost ~``dtype_bytes``x
        less, so concurrency under the same budget rises by nearly that
        factor (the pinned ``quant_concurrency_ratio`` benchmark gates it at
        >= 2x).
        """
        budget = (hbm_capacity_bytes - self.model_bytes()) * (1.0 - watermark)
        per_seq = self.paged_kv_cache_bytes(seq_len, 1, page_size, kv_dtype)
        if budget <= 0 or per_seq <= 0:
            return 0
        return int(budget // per_seq)

    # ------------------------------------------------------------------
    # tiered offload (repro.kvcache.offload)
    # ------------------------------------------------------------------
    def tier0_frames(
        self,
        tier0_budget_bytes: float,
        page_size: int = 16,
        kv_dtype: str | None = None,
    ) -> int:
        """Tier-0 page frames (per layer) a byte budget funds.

        Mirrors the engine's ``tier0_budget`` conversion: the budget buys
        whole cross-layer pages, with a floor of two frames per layer (the
        minimum for copy-on-write, which transiently holds a source and a
        destination page resident).
        """
        if tier0_budget_bytes <= 0:
            raise ValueError("tier0_budget_bytes must be positive")
        frames = int(tier0_budget_bytes // self.kv_page_bytes(page_size, kv_dtype))
        return max(frames, 2)

    def tiered_capacity_ratio(
        self,
        seq_len: int,
        page_size: int = 16,
        resident_pages_per_seq: int = 1,
    ) -> float:
        """Capacity amplification of tiered offload at fixed tier-0 bytes.

        Without offload a sequence of resident length ``seq_len`` pins all
        of its pages in tier 0; with offload only its hot working set
        (``resident_pages_per_seq`` — at minimum the append page) must be
        resident while the cold tail lives in the tier-1 arena.  The ratio
        of the two is how many times more cacheable tokens the same tier-0
        budget funds — the analytic counterpart of the pinned
        ``offload_capacity_ratio`` benchmark (gated at >= 2x).
        """
        if resident_pages_per_seq <= 0:
            raise ValueError("resident_pages_per_seq must be positive")
        return self.kv_pages(seq_len, page_size) / resident_pages_per_seq

    def tiered_max_concurrency(
        self,
        tier0_budget_bytes: float,
        page_size: int = 16,
        resident_pages_per_seq: int = 1,
        watermark: float = 0.1,
        kv_dtype: str | None = None,
    ) -> int:
        """Concurrent sequences a tier-0 frame budget can keep decoding.

        Unlike :meth:`paged_max_concurrency`, residency no longer scales
        with ``seq_len`` — each running sequence only needs its hot
        ``resident_pages_per_seq`` frames while spilled pages wait in the
        arena.  A watermark fraction of the frames stays free as restore
        headroom, matching the scheduler's frame-aware admission rule.
        """
        frames = self.tier0_frames(tier0_budget_bytes, page_size, kv_dtype)
        usable = frames - max(int(watermark * frames), 1)
        if resident_pages_per_seq <= 0:
            raise ValueError("resident_pages_per_seq must be positive")
        return max(usable // resident_pages_per_seq, 0)

    def spill_transfer_seconds(
        self,
        n_pages: int,
        transfer_bandwidth_bytes: float,
        page_size: int = 16,
        kv_dtype: str | None = None,
    ) -> float:
        """Time to move ``n_pages`` cross-layer pages across the tier link.

        Spill and restore traffic are symmetric byte-for-byte (transfers
        are byte-exact in both directions), so one formula covers both; a
        decode step that restores ``r`` pages and spills ``s`` victims pays
        ``spill_transfer_seconds(r + s, bw)`` of transfer time, which is
        how the engine's ``pool_usage()`` spill/restore byte counters
        convert into a latency overhead.
        """
        if transfer_bandwidth_bytes <= 0:
            raise ValueError("transfer_bandwidth_bytes must be positive")
        if n_pages < 0:
            raise ValueError("n_pages must be non-negative")
        return n_pages * self.kv_page_bytes(page_size, kv_dtype) / transfer_bandwidth_bytes

    @staticmethod
    def measured_kv_bytes(caches: Iterable, dtype_bytes: int | None = None) -> int:
        """Resident KV bytes of live per-layer caches, summed via each cache's
        own ``nbytes`` — which asks the backing pool what a cached token
        actually costs (full-precision storage dtype, or int8 codes plus
        amortized page scales for a quantized pool) — the measured
        counterpart of the analytical formulas above."""
        return sum(cache.nbytes(dtype_bytes) for cache in caches)

    # ------------------------------------------------------------------
    def kv_working_multiplier(self, beam_size: int = 1) -> float:
        """Transient working-set multiplier applied to the KV cache.

        Beam-search decoding re-orders the cached keys/values after every step,
        which transiently holds a second copy of the cache (this is what pushes
        the paper's 4096+4096, batch-2, beam-4 full-attention configuration out
        of memory on an 80 GB A100).  Greedy decoding only pays an allocator
        fragmentation margin.
        """
        return 2.0 if beam_size > 1 else 1.2

    def fits(
        self,
        hbm_capacity_bytes: float,
        seq_len: int,
        batch_size: int,
        beam_size: int = 1,
    ) -> bool:
        """Whether weights + KV cache + activations fit in HBM (no CPU offload)."""
        total = (
            self.model_bytes()
            + self.kv_cache_bytes(seq_len, batch_size, beam_size)
            * self.kv_working_multiplier(beam_size)
            + self.activation_bytes(batch_size, min(seq_len, 2048))
        )
        return total <= hbm_capacity_bytes

    def max_batch_size(
        self, hbm_capacity_bytes: float, seq_len: int, beam_size: int = 1, limit: int = 1024
    ) -> int:
        """Largest batch size that fits; 0 when even batch 1 does not fit."""
        for batch in range(1, limit + 1):
            if not self.fits(hbm_capacity_bytes, seq_len, batch, beam_size):
                return batch - 1
        return limit

    def crossover_seq_len(self, beam_size: int = 1, batch_size: int = 1) -> int:
        """Sequence length at which the KV cache size equals the model size (Fig. 1b)."""
        per_token = self.kv_bytes_per_token(beam_size) * batch_size
        return int(self.model_bytes() / per_token)
