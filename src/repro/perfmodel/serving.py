"""Analytical step-cost and expected-TTFT model for the serving harness.

The load harness (``tools/run_load.py``, ``repro.serving.workload``) replays
traces in **virtual step-time**: real wall-clock would make every latency
percentile machine-dependent and every CI gate flaky, so instead each engine
step is charged an analytical cost of what it computed.  The cost model is
deliberately affine — the same shape the roofline model
(:mod:`repro.perfmodel.latency`) predicts for a batched step once memory and
compute overlap:

``step_cost = fixed + per_prefill_token * prefill_tokens
                    + per_decode_row * decode_rows``

* ``fixed`` — kernel-launch / scheduling overhead every step pays.
* ``per_prefill_token`` — the compute-bound prompt-processing term; a step
  that prefills a 512-token prompt costs 512 of these, which is exactly the
  stall every co-resident decode row experiences.  Chunked prefill caps this
  term per step at the chunk budget.
* ``per_decode_row`` — the memory-bound per-sequence decode term (weights +
  KV stream per row).

:class:`TTFTModel` turns the same three coefficients into closed-form
expected TTFT for chunked vs. unchunked prefill and a per-step
**decode-stall bound** — the number the chunked-prefill benchmark gate
checks empirically (p99 TTFT improves when long prompts are chunked at
equal throughput).  See ``docs/workloads.md`` for the derivation.

:class:`ReplicaScalingModel` extends the step cost to the multi-replica
front-end (:mod:`repro.serving.sharded`): aggregate decode throughput vs
replica count with a router-overhead term and the prefix-hit dilution
factor affinity routing avoids.  See ``docs/sharding.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["StepCostModel", "TTFTModel", "ReplicaScalingModel"]


@dataclass(frozen=True)
class StepCostModel:
    """Affine virtual-time cost of one engine step.

    Defaults make one decode row cost 1 virtual-time unit above the fixed
    term and a prefill token one tenth of that — the ~10× compute-bound vs.
    memory-bound gap the roofline model predicts for short prompts on
    A100-class hardware.  Absolute units are arbitrary (virtual time); only
    ratios matter for percentile comparisons.
    """

    fixed: float = 0.5
    per_prefill_token: float = 0.1
    per_decode_row: float = 1.0

    def __post_init__(self):
        if self.fixed < 0 or self.per_prefill_token < 0 or self.per_decode_row < 0:
            raise ValueError("cost coefficients must be non-negative")
        if self.fixed == 0 and self.per_prefill_token == 0 and self.per_decode_row == 0:
            raise ValueError("at least one cost coefficient must be positive")

    def step_cost(self, prefill_tokens: int, decode_rows: int) -> float:
        """Virtual-time cost of a step that prefilled ``prefill_tokens``
        prompt tokens and decoded ``decode_rows`` sequence rows."""
        return (
            self.fixed
            + self.per_prefill_token * prefill_tokens
            + self.per_decode_row * decode_rows
        )


@dataclass(frozen=True)
class TTFTModel:
    """Closed-form expected TTFT under chunked vs. unchunked prefill.

    All formulas assume ``decode_rows`` co-resident sequences decoding at
    the prompt's side and zero queue wait — they model the *prefill* part
    of TTFT, which is the part chunking redistributes.
    """

    cost: StepCostModel

    def unchunked_ttft(self, prompt_len: int, decode_rows: int = 0) -> float:
        """Expected TTFT when the whole prompt prefills in one step.

        One step computes ``prompt_len`` prefill tokens plus the resident
        decode rows; the first output token is sampled in that same step.
        """
        return self.cost.step_cost(prompt_len, decode_rows)

    def chunked_ttft(
        self, prompt_len: int, chunk_tokens: int, decode_rows: int = 0
    ) -> float:
        """Expected TTFT when the prompt prefills in ``chunk_tokens`` chunks.

        The engine absorbs a 1-token remainder into the previous chunk, so
        the number of steps is ``ceil`` of the split with that adjustment;
        every chunk step also pays the fixed cost and the resident decode
        rows.  Chunking *raises* the long prompt's own TTFT — the win is
        the neighbours' stall bound (:meth:`decode_stall_bound`), which is
        what shows up in p99 TTFT across the whole trace.
        """
        if chunk_tokens < 2:
            raise ValueError("chunk_tokens must be >= 2")
        if prompt_len <= chunk_tokens + 1:
            n_chunks = 1
        else:
            n_chunks = math.ceil(prompt_len / chunk_tokens)
            # A trailing 1-token chunk is absorbed into its predecessor.
            if prompt_len - (n_chunks - 1) * chunk_tokens == 1:
                n_chunks -= 1
        per_chunk = self.cost.step_cost(0, decode_rows)
        return n_chunks * per_chunk + self.cost.per_prefill_token * prompt_len

    def decode_stall_bound(self, chunk_tokens: int | None, max_prompt_len: int) -> float:
        """Worst-case extra step time a decode row sees from a neighbour's
        prefill: the whole prompt unchunked, one chunk's budget chunked
        (+1 for the absorbed remainder)."""
        if chunk_tokens is None:
            return self.cost.per_prefill_token * max_prompt_len
        return self.cost.per_prefill_token * min(chunk_tokens + 1, max_prompt_len)


@dataclass(frozen=True)
class ReplicaScalingModel:
    """Aggregate decode throughput vs replica count for sharded serving.

    The sharded front-end (:mod:`repro.serving.sharded`) steps ``N``
    replicas in parallel; one **super-step** costs the slowest replica's
    :class:`StepCostModel` step cost plus a fixed ``router_overhead``, and
    produces the *sum* of the replicas' decode rows.  Throughput therefore
    scales with ``N`` until the per-step fixed cost and the router overhead
    dominate — the same saturating shape every scale-out system shows.

    The second effect the model carries is **prefix-hit dilution**: routing
    same-prefix traffic uniformly over ``N`` replicas makes every replica
    pay its own cold prefill of each shared prefix, multiplying computed
    prefill work by up to ``min(N, m)`` for prefixes reused ``m`` times
    (:meth:`prefill_dilution`); the affinity router's whole purpose is to
    keep that factor at 1.  The pinned test in
    ``tests/perfmodel/test_serving_model.py`` checks both terms against
    measured 1/2/4-replica virtual-time harness runs.
    """

    cost: StepCostModel
    router_overhead: float = 0.0

    def __post_init__(self):
        if self.router_overhead < 0:
            raise ValueError("router_overhead must be non-negative")

    def super_step_cost(
        self, rows_per_replica: float, prefill_tokens_per_replica: float = 0.0
    ) -> float:
        """Virtual-time cost of one front-end super-step.

        Models the balanced case (every replica does the same work, so the
        max over replicas equals any one of them) plus the router's fixed
        per-super-step overhead.
        """
        return (
            self.cost.step_cost(prefill_tokens_per_replica, rows_per_replica)
            + self.router_overhead
        )

    def aggregate_throughput(
        self,
        n_replicas: int,
        rows_per_replica: float,
        prefill_tokens_per_replica: float = 0.0,
    ) -> float:
        """Decode tokens per virtual-time unit across all replicas.

        One super-step emits ``n_replicas * rows_per_replica`` decode
        tokens and costs :meth:`super_step_cost` — feed in the *measured*
        average per-replica decode rows and prefill tokens per step to
        predict a harness run's throughput.
        """
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        tokens = n_replicas * rows_per_replica
        return tokens / self.super_step_cost(rows_per_replica, prefill_tokens_per_replica)

    def speedup(
        self,
        n_replicas: int,
        rows_per_replica: float,
        prefill_tokens_per_replica: float = 0.0,
    ) -> float:
        """Predicted aggregate-throughput gain of ``N`` replicas over one.

        Both sides run the same per-replica batch (a replica is a full
        engine with its own ``max_batch_size``), so the gain is ``N`` times
        the single-engine step cost over the super-step cost — sub-linear
        exactly by the router overhead.
        """
        solo = self.cost.step_cost(prefill_tokens_per_replica, rows_per_replica)
        return n_replicas * solo / self.super_step_cost(
            rows_per_replica, prefill_tokens_per_replica
        )

    @staticmethod
    def prefill_dilution(n_replicas: int, requests_per_prefix: float) -> float:
        """Computed-prefill inflation of random routing vs prefix affinity.

        A prefix reused by ``m`` requests costs one cold prefill under
        affinity routing but up to ``min(N, m)`` cold prefills when its
        requests spread uniformly over ``N`` replicas — the dilution the
        rendezvous hash exists to avoid.
        """
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if requests_per_prefix < 1:
            raise ValueError("requests_per_prefix must be >= 1")
        return min(float(n_replicas), float(requests_per_prefix))
