"""Analytical expected-speedup model for draft-then-verify decoding.

Under the standard i.i.d. acceptance approximation (Leviathan et al., 2023,
"Fast Inference from Transformers via Speculative Decoding"): if each drafted
token is accepted with probability ``alpha``, a round that drafts ``k``
tokens commits

    E[c] = (1 - alpha^(k+1)) / (1 - alpha)        (and k + 1 when alpha = 1)

tokens — the accepted geometric prefix plus the correction/bonus token.  A
round costs ``k`` drafter steps plus one verify pass, so the speedup over
vanilla decoding (one target step per token) is

    speedup(alpha, k) = E[c] / (k * draft_cost + verify_cost(k))

with costs normalized to one vanilla target step.  The model exposes exactly
the two knobs the implementation has: the drafter's relative step cost
(``draft_cost`` — near zero for the n-gram drafter, a budget-dependent
fraction for self-drafting) and the verify pass's cost model
(``verify_base + k * verify_per_token``, capturing that one multi-query pass
amortizes per-step dispatch but still performs each token's attention math).

Feed a measured acceptance rate from
:class:`repro.speculative.telemetry.SpeculationStats` to compare observed
against expected speedups, or sweep :meth:`SpeculationModel.optimal_k` to
pick the draft length.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SpeculationModel", "expected_tokens_per_round"]


def expected_tokens_per_round(alpha: float, k: int) -> float:
    """Expected committed tokens per round at acceptance rate ``alpha``.

    ``alpha`` is clamped to ``[0, 1]``; ``k`` is the draft length.  The
    result lies in ``[1, k + 1]``.
    """
    if k < 0:
        raise ValueError("draft length k must be non-negative")
    alpha = min(max(alpha, 0.0), 1.0)
    if alpha == 1.0:
        return float(k + 1)
    return (1.0 - alpha ** (k + 1)) / (1.0 - alpha)


@dataclass(frozen=True)
class SpeculationModel:
    """Cost model of one speculation round, normalized to a vanilla step.

    Parameters
    ----------
    draft_cost:
        Cost of one drafter step relative to one vanilla target step.
        ``0.0`` models the n-gram drafter; self-drafting over a
        budget-``B`` cache at context ``L`` lands around the fraction of
        step time attention occupies times ``B / L`` plus the
        dispatch-bound floor.
    verify_base:
        Fixed cost of a verify pass (the single pass's dispatch/projection
        overhead, paid once per round).
    verify_per_token:
        Incremental verify cost per scored token (each token's attention
        math still happens once).
    """

    draft_cost: float = 0.3
    verify_base: float = 0.4
    verify_per_token: float = 0.6

    @classmethod
    def ngram(cls) -> "SpeculationModel":
        """Model of prompt-lookup drafting: drafting itself is free."""
        return cls(draft_cost=0.0)

    @classmethod
    def self_draft(
        cls, budget: int, context: int, attention_fraction: float = 0.5
    ) -> "SpeculationModel":
        """Model of self-drafting with a sparse cache of ``budget`` tokens.

        A drafter step runs the same dense math as the target but attends
        over ``budget`` instead of ``context`` entries;
        ``attention_fraction`` is the share of a vanilla step spent in
        attention at the given context.
        """
        if budget <= 0 or context <= 0:
            raise ValueError("budget and context must be positive")
        ratio = min(budget / context, 1.0)
        draft = (1.0 - attention_fraction) + attention_fraction * ratio
        return cls(draft_cost=draft)

    # ------------------------------------------------------------------
    def round_cost(self, k: int) -> float:
        """Cost of one round (k drafter steps + one k+1-token verify pass)."""
        return k * self.draft_cost + self.verify_base + (k + 1) * self.verify_per_token

    def speedup(self, alpha: float, k: int) -> float:
        """Expected decode speedup over vanilla one-token-per-step decoding."""
        if k == 0:
            return 1.0 / (self.verify_base + self.verify_per_token)
        return expected_tokens_per_round(alpha, k) / self.round_cost(k)

    def optimal_k(self, alpha: float, max_k: int = 16) -> int:
        """Draft length maximizing expected speedup (searched over 1..max_k)."""
        if max_k < 1:
            raise ValueError("max_k must be >= 1")
        return max(range(1, max_k + 1), key=lambda k: self.speedup(alpha, k))

    def breakeven_alpha(self, k: int, resolution: int = 1000) -> float:
        """Smallest acceptance rate at which speculation beats vanilla decode.

        Returns 1.0 when even perfect acceptance cannot pay for the round
        (drafting too expensive for this ``k``).
        """
        for i in range(resolution + 1):
            alpha = i / resolution
            if self.speedup(alpha, k) >= 1.0:
                return alpha
        return 1.0
