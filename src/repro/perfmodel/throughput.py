"""Token-generation throughput and out-of-memory modelling (Table 1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.hardware import HardwareSpec, A100_80GB
from repro.perfmodel.latency import AttentionPolicyOverhead, LatencyModel
from repro.perfmodel.memory import MemoryModel, PerfModelSpec

__all__ = ["ThroughputResult", "ThroughputModel"]


@dataclass
class ThroughputResult:
    """Throughput of one configuration; ``oom`` marks configurations that do not fit."""

    tokens_per_second: float
    total_time_s: float
    batch_size: int
    kv_fraction: float
    oom: bool = False

    def formatted(self) -> str:
        """Table-ready cell: ``OOM`` or the throughput rounded like the paper."""
        return "OOM" if self.oom else f"{self.tokens_per_second:.1f}"


class ThroughputModel:
    """Generation throughput (tokens/s) under a KV-cache policy and batch size."""

    def __init__(self, spec: PerfModelSpec, hardware: HardwareSpec = A100_80GB):
        self.spec = spec
        self.hardware = hardware
        self.latency = LatencyModel(spec, hardware)
        self.memory = MemoryModel(spec)

    def evaluate(
        self,
        prompt_len: int,
        gen_len: int,
        batch_size: int = 1,
        beam_size: int = 1,
        kv_fraction: float = 1.0,
        policy_overhead: AttentionPolicyOverhead | None = None,
    ) -> ThroughputResult:
        """Throughput of one (sequence-length, batch, policy) configuration.

        The peak KV-cache footprint uses the *retained* cache length, so cache
        reduction increases the batch size that fits in HBM — the mechanism
        behind the paper's "2× batch size at 50 % KV cache" observation.
        """
        retained = max(int(round(kv_fraction * prompt_len)), 1)
        peak_seq = prompt_len + gen_len if kv_fraction >= 1.0 else retained + 1
        if not self.memory.fits(
            self.hardware.capacity_bytes, peak_seq, batch_size, beam_size
        ):
            return ThroughputResult(0.0, float("inf"), batch_size, kv_fraction, oom=True)

        total = self.latency.generation_latency(
            prompt_len, gen_len, batch_size, beam_size, kv_fraction, policy_overhead
        )
        tokens = gen_len * batch_size
        return ThroughputResult(tokens / total, total, batch_size, kv_fraction, oom=False)

    def max_feasible_batch(
        self, prompt_len: int, gen_len: int, kv_fraction: float = 1.0, beam_size: int = 1
    ) -> int:
        """Largest batch size that fits in HBM for this configuration."""
        retained = max(int(round(kv_fraction * prompt_len)), 1)
        peak_seq = prompt_len + gen_len if kv_fraction >= 1.0 else retained + 1
        return self.memory.max_batch_size(self.hardware.capacity_bytes, peak_seq, beam_size)
