"""Continuous-batching serving: request model, schedulers, batched engine.

Requests decode together over the paged KV store with prefix sharing and
memory-aware (page-granular) admission; see ``docs/serving.md`` for the
request lifecycle, scheduler budgets, preemption and the batching
bit-exactness invariants, ``docs/robustness.md`` for the fault-tolerance
layer (fault injection, row quarantine, deadlines/retries, pool auditing),
``docs/workloads.md`` for the trace-driven load harness, SLO tiers and
latency-percentile telemetry, ``docs/sharding.md`` for multi-replica
sharded serving behind the prefix-affinity router, and ``docs/kvcache.md``
for the storage layer.
"""

from repro.serving.engine import BatchedGenerator, ContinuousBatchingEngine
from repro.serving.faults import (
    EngineWatchdog,
    FaultInjector,
    InjectedFault,
    LivelockError,
)
from repro.serving.request import FinishReason, Request, RequestState, RequestStatus
from repro.serving.scheduler import FCFSScheduler, PagedScheduler
from repro.serving.sharded import (
    PrefixAffinityRouter,
    ReplicaDead,
    ReplicaSpec,
    ShardedEngine,
    ShardedRequest,
)
from repro.serving.slo import (
    TIER_BATCH,
    TIER_INTERACTIVE,
    TIER_STANDARD,
    LatencyRecord,
    LatencyReport,
    PriorityScheduler,
    SLOSpec,
    SLOTarget,
)
from repro.serving.workload import (
    ReplayResult,
    Trace,
    TraceEvent,
    WorkloadConfig,
    generate_trace,
    replay_trace,
)

__all__ = [
    "BatchedGenerator",
    "ContinuousBatchingEngine",
    "EngineWatchdog",
    "FCFSScheduler",
    "FaultInjector",
    "FinishReason",
    "InjectedFault",
    "LatencyRecord",
    "LatencyReport",
    "LivelockError",
    "PagedScheduler",
    "PrefixAffinityRouter",
    "PriorityScheduler",
    "ReplayResult",
    "ReplicaDead",
    "ReplicaSpec",
    "Request",
    "RequestState",
    "RequestStatus",
    "SLOSpec",
    "ShardedEngine",
    "ShardedRequest",
    "SLOTarget",
    "TIER_BATCH",
    "TIER_INTERACTIVE",
    "TIER_STANDARD",
    "Trace",
    "TraceEvent",
    "WorkloadConfig",
    "generate_trace",
    "replay_trace",
]
