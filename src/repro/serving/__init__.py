"""Continuous-batching serving: request model, schedulers, batched engine.

Requests decode together over the paged KV store with prefix sharing and
memory-aware (page-granular) admission; see ``docs/serving.md`` for the
request lifecycle, scheduler budgets, preemption and the batching
bit-exactness invariants, and ``docs/kvcache.md`` for the storage layer.
"""

from repro.serving.engine import BatchedGenerator, ContinuousBatchingEngine
from repro.serving.request import FinishReason, Request, RequestState, RequestStatus
from repro.serving.scheduler import FCFSScheduler, PagedScheduler

__all__ = [
    "BatchedGenerator",
    "ContinuousBatchingEngine",
    "FCFSScheduler",
    "PagedScheduler",
    "Request",
    "RequestState",
    "RequestStatus",
    "FinishReason",
]
