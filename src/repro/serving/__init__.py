"""Continuous-batching serving: request model, FCFS scheduler, batched engine.

See ``docs/serving.md`` for the request lifecycle, scheduler budgets and the
batching bit-exactness invariants.
"""

from repro.serving.engine import BatchedGenerator, ContinuousBatchingEngine
from repro.serving.request import FinishReason, Request, RequestState, RequestStatus
from repro.serving.scheduler import FCFSScheduler

__all__ = [
    "BatchedGenerator",
    "ContinuousBatchingEngine",
    "FCFSScheduler",
    "Request",
    "RequestState",
    "RequestStatus",
    "FinishReason",
]
