"""Continuous-batching serving: request model, schedulers, batched engine.

Requests decode together over the paged KV store with prefix sharing and
memory-aware (page-granular) admission; see ``docs/serving.md`` for the
request lifecycle, scheduler budgets, preemption and the batching
bit-exactness invariants, ``docs/robustness.md`` for the fault-tolerance
layer (fault injection, row quarantine, deadlines/retries, pool auditing),
and ``docs/kvcache.md`` for the storage layer.
"""

from repro.serving.engine import BatchedGenerator, ContinuousBatchingEngine
from repro.serving.faults import (
    EngineWatchdog,
    FaultInjector,
    InjectedFault,
    LivelockError,
)
from repro.serving.request import FinishReason, Request, RequestState, RequestStatus
from repro.serving.scheduler import FCFSScheduler, PagedScheduler

__all__ = [
    "BatchedGenerator",
    "ContinuousBatchingEngine",
    "EngineWatchdog",
    "FCFSScheduler",
    "FaultInjector",
    "FinishReason",
    "InjectedFault",
    "LivelockError",
    "PagedScheduler",
    "Request",
    "RequestState",
    "RequestStatus",
]
