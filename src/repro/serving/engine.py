"""Continuous-batching serving engine over the paged KV-cache store.

The engine runs many generation requests concurrently by executing **one
batched forward pass per decoding step** over a ragged batch of sequences,
admitting queued requests and retiring finished ones *between* steps — the
standard continuous-batching (in-flight batching) discipline of modern LLM
serving systems, built here on the repo's NumPy substrate.

Execution model
---------------
* **Prefill** — an admitted request's prompt runs through the ordinary
  full-sequence forward pass, its KV tensors are written into pages of the
  shared :class:`BatchedCacheManager` store, and its eviction policy performs
  the prompt-phase reduction.  When **prefix sharing** is enabled and the
  prompt starts with a page-aligned chunk chain already resident in the
  :class:`~repro.kvcache.paged.PrefixRegistry`, the engine *maps* those pages
  (a refcount bump) and runs only the prompt suffix through
  :meth:`DecoderLM.forward_suffix` — prefill compute drops from O(T²) to
  O(S·T) for a prompt of length T sharing all but S tokens.
* **Decode** — every engine step advances all running requests by one token
  through :meth:`DecoderLM.decode_step_batch`: dense layers run batched over
  the ``(R, d_model)`` hidden rows while attention is ragged (each sequence
  attends over its own page table, padded to the batch maximum).
* **Scheduling** — a :class:`PagedScheduler` admits requests against the
  pool's *actual free pages* (with a watermark of headroom) instead of
  worst-case token budgets.  When a fixed-size pool runs dry mid-decode the
  engine **preempts** the newest-admitted running request: its pages are
  freed, its state reset, and it re-enters the head of the queue to be
  re-prefilled later — FCFS completion order is preserved because older
  requests are never the victim.

Bit-exactness invariant
-----------------------
At float64 every request's output — token sequence, log-probabilities and
cache statistics — is **bit-identical** to running that request alone through
``Generator.generate``.  This holds because every shared computation is
row-independent, all cross-request state (eviction policies, score
accumulators, sampler RNGs, KV pages) is kept per request, mapped prefix
pages hold exactly the bits a full prompt forward would recompute (and
copy-on-write shields them from neighbours), and a preempted request restarts
from scratch with freshly reset policy and sampler state.  Consequently batch
composition, admission order, prefix sharing, preemption and retirement
timing can never change *what* any request generates — only *when*.
At float32 the engine switches to fully batched BLAS projections and masked
padded attention (the documented inference tolerance mode) for throughput.

Fault tolerance
---------------
The engine optionally runs with a request-lifecycle fault-tolerance layer
(see ``docs/robustness.md``): a deterministic
:class:`~repro.serving.faults.FaultInjector` exercises the failure paths, an
exception in one row's step is **quarantined** — only that row retires
(:attr:`FinishReason.ERROR`) or is retried through the preempt-and-restart
machinery with deterministic step-based backoff, while the surviving rows
replay the step bit-exactly from copy-on-write snapshots — and per-request
step-count deadlines (:attr:`FinishReason.TIMEOUT`), load-shedding admission
(:attr:`FinishReason.SHED`) and an
:class:`~repro.serving.faults.EngineWatchdog` bound how long anything can go
wrong quietly.  :meth:`ContinuousBatchingEngine.check_invariants` audits the
paged store's refcounts against every live page-table reference.
"""

from __future__ import annotations

import traceback as _traceback
from typing import Callable, Sequence

import numpy as np

from repro.core.policies import EvictionPolicy, FullAttentionPolicy
from repro.generation.generator import GenerationResult, Generator
from repro.generation.sampler import GreedySampler, Sampler, make_sampler, sample_rows
from repro.kvcache.admission import ADMISSION_POLICIES
from repro.kvcache.batch import BatchedCacheManager
from repro.kvcache.paged import (
    DEFAULT_PAGE_SIZE,
    PagedKVStore,
    PoolExhausted,
    PoolIntegrityError,
    PrefixMatch,
)
from repro.serving.faults import EngineWatchdog, FaultInjector
from repro.kvcache.stats import CacheStats
from repro.models.config import GenerationConfig
from repro.models.positional import get_rope_table
from repro.models.tensor_ops import log_softmax
from repro.models.transformer import DecoderLM
from repro.serving.request import FinishReason, Request, RequestState, RequestStatus
from repro.serving.scheduler import FCFSScheduler, PagedScheduler
from repro.speculative.config import SpeculationConfig
from repro.speculative.decoder import BatchedRowVerifyTarget, run_round
from repro.speculative.drafter import (
    Drafter,
    NgramDrafter,
    PolicyDrafter,
    make_drafter_policy,
)
from repro.speculative.telemetry import SpeculationStats

__all__ = ["ContinuousBatchingEngine", "BatchedGenerator"]

#: ``_prefill`` outcomes: the admission loop dispatches on these.
_PREFILL_JOINED = 1  # the request is running (truthy, for callers that gate on it)
_PREFILL_BLOCKED = 0  # pool could not fund the join; a victim was preempted
_PREFILL_FAILED_RETRY = 2  # quarantined fault; requeued with retry backoff
_PREFILL_FAILED_FINAL = 3  # quarantined fault; retired with FinishReason.ERROR
_PREFILL_CHUNKED = 4  # first chunk ran; the request joins after its last chunk


class _ChunkedPrefill:
    """Engine-internal state of the (single) in-flight chunked prefill.

    Accumulates the per-layer KV computed so far: raw keys/values for the
    eventual :meth:`BatchedCacheManager.join` plus attention-form keys
    (RoPE-rotated at their original positions; raw otherwise) that later
    chunks attend over through :meth:`DecoderLM.forward_suffix`.  No pool
    pages are touched until the final join, so abandoning an in-flight
    chunked prefill (abort, deadline, quarantined fault) never leaks pool
    state — the accumulated arrays are simply garbage-collected.
    """

    __slots__ = ("state", "chunk_tokens", "done", "k_raw", "v_cat", "k_attn",
                 "complete", "next_row")

    def __init__(self, state: RequestState, chunk_tokens: int):
        self.state = state
        self.chunk_tokens = int(chunk_tokens)
        #: Prompt tokens computed so far (chunks are contiguous from 0).
        self.done = 0
        #: Per-layer raw (unrotated) keys, shape (1, H, done, d) — join input.
        self.k_raw: list[np.ndarray] = []
        #: Per-layer values, shape (1, H, done, d).
        self.v_cat: list[np.ndarray] = []
        #: Per-layer attention-form keys the next chunk attends over.
        self.k_attn: list[np.ndarray] = []
        self.complete = False
        #: Last-token logits of the final chunk (the first-token sample).
        self.next_row: np.ndarray | None = None

    def next_chunk(self) -> int:
        """Size of the next chunk: the budget, except that the final chunk
        absorbs a would-be 1-token remainder (``forward_suffix`` needs >= 2
        suffix tokens — the bit-stability floor of the chunked projections).
        """
        remaining = self.state.request.prompt_len - self.done
        if remaining <= self.chunk_tokens + 1:
            return remaining
        return self.chunk_tokens


class ContinuousBatchingEngine:
    """Schedules and executes a stream of generation requests as one batch.

    Parameters
    ----------
    model:
        The decoder LM shared by all requests.
    policy_factory:
        Zero-argument callable producing a fresh :class:`EvictionPolicy` for
        each request (per-request instances keep policy state isolated).
        Defaults to full attention.
    positional_mode:
        ``"original"`` or ``"new"``; defaults to the mode declared by the
        first admitted request's policy.  All requests in one engine must
        agree — the batched attention step applies one mode.
    scheduler:
        Admission scheduler; defaults to a :class:`PagedScheduler` built from
        ``max_batch_size``/``max_total_tokens``.  Passing a
        :class:`~repro.serving.slo.PriorityScheduler` additionally enables
        priority-tier admission and priority preemption.
    prefill_chunk_tokens:
        Chunked-prefill budget: prompts longer than this run one chunk of at
        most this many tokens per engine step instead of a single monolithic
        prefill step, so running decode rows (and other admissions)
        interleave between chunks — the knob that bounds how long one long
        prompt can stall everyone else's step.  Stored on the scheduler
        (it shapes admission timing); ``None`` (default) disables chunking.
        Chunking is skipped per request for policies that consume prompt
        attention (Keyformer, H2O), for prompts with a resident shared
        prefix (the mapped-prefix path is already cheap), and in speculation
        mode; bit-exactness is unaffected either way.
    page_size:
        Tokens per KV page of the paged store.
    max_pool_tokens:
        When set, fixes every layer pool at ``ceil(max_pool_tokens /
        page_size)`` pages: admission becomes memory-aware and running out of
        pages triggers preemption.  ``None`` (default) keeps the pools
        growable — the engine never preempts and behaves like an unbounded
        store.
    max_pool_bytes:
        Alternative to ``max_pool_tokens``: a **byte** budget per engine,
        converted to pages with the actual per-page footprint of the chosen
        ``kv_dtype`` — so the same budget funds ~4x (float32; ~8x at
        float64) more pages, and therefore proportionally more concurrent
        sequences, with ``kv_dtype="int8"``.  Mutually exclusive with
        ``max_pool_tokens``.
    kv_dtype:
        KV-page storage format of the shared store: ``None`` (default) keeps
        full-precision pages — every output bit-identical to solo decoding —
        while ``"int8"`` stores quantized pages (:mod:`repro.kvcache.quant`).
        Int8 serving stays bit-identical to *solo int8* decoding (same
        dequantized reads, preemption-restart included) except through
        shared-prefix prefill (reads dequantized prefix pages) and
        speculation (a rejected draft can widen a page's quantization range
        before rollback); see the accuracy contract in
        ``docs/quantization.md``.
    enable_prefix_sharing:
        Map resident prompt-prefix pages instead of recomputing them.
        Automatically skipped per request for policies that consume prompt
        attention values (Keyformer, H2O); bit-exactness is unaffected either
        way.
    admission_policy:
        How the prefix registry picks reclaim victims under pool pressure:
        ``"lru"`` (default) keeps the historical least-recently-used
        leaf-first reclaim byte-exactly; ``"wtinylfu"`` ranks victims by
        W-TinyLFU competitive admission (count-min sketched frequency over
        window/probation/protected SLRU segments — see
        :mod:`repro.kvcache.admission`), which retains hot shared prefixes
        through scan bursts.  Outputs stay bit-identical to solo decoding
        under both values; only which prefixes stay resident (and hence
        prefill savings) differs.
    tier0_budget:
        When set, enables **tiered KV offload** (:mod:`repro.kvcache.offload`):
        a tier-0 **byte** budget per engine, converted to resident frames
        per layer pool with the same per-page footprint ``max_pool_bytes``
        uses; cold pages beyond it spill byte-exactly to a tier-1 arena and
        are restored on access, with the engine bulk-prefetching each decode
        step's pages (one restore call per layer) before the step runs.
        Admission counts only tier-0 residency (running rows are capped
        against the frame budget with the scheduler's watermark headroom).
        ``max_pool_tokens``/``max_pool_bytes`` still bound total *logical*
        capacity — with offload on, that capacity no longer needs to be
        resident.  Outputs are bit-identical with offload on or off, for
        every dtype, policy and scheduler interleaving.
    spill_backend:
        Tier-1 arena of the offload layer: ``"compressed"`` (default, an
        in-memory zlib arena) or ``"mmap"`` (records in a memory-mapped
        temporary file).  Requires ``tier0_budget``.
    speculation:
        When set, running requests decode through the draft-then-verify loop
        (:mod:`repro.speculative`) instead of one token per step: each engine
        step runs one speculation round per row, so rows advance by one to
        ``k + 1`` tokens depending on their acceptance.  Requires greedy
        requests under the (default) full-attention policy — the sparse
        policy belongs to the *drafter* — and keeps every request's output
        bit-identical to its non-speculative run.  Self-drafting rows hold
        their drafter page tables in the engine's own store; admission,
        FCFS ordering and newest-first preemption work unchanged.
    faults:
        Optional :class:`~repro.serving.faults.FaultInjector` whose seeded
        schedule fires :class:`~repro.serving.faults.InjectedFault` at the
        page-allocation, prefill, decode, verify, draft and spill-transfer
        (``spill_io``, under KV offload) injection points.  Installing one
        turns fault tolerance on (see ``fault_tolerant``).
    fault_tolerant:
        Force the quarantine machinery on (``True``) or off (``False``);
        ``None`` (default) enables it exactly when ``faults`` is given.
        When off, a non-``PoolExhausted`` exception propagates as before.
    max_retries:
        Quarantined transient faults restart a request this many times
        (through the preempt-and-restart machinery) before it retires with
        :attr:`FinishReason.ERROR`.  ``0`` (default) fails on first fault.
    retry_backoff_steps:
        Base of the deterministic step-count backoff between retries: retry
        ``r`` (0-based) waits ``retry_backoff_steps * 2**r`` engine steps.
    deadline_steps:
        Default per-request step-count deadline (``submit`` can override):
        a request still unfinished after this many engine steps since its
        submission retires with :attr:`FinishReason.TIMEOUT`.  The clock is
        end-to-end; preemptions and retries do not reset it.
    shed_queue_depth:
        Load-shedding admission: once the queue holds at least this many
        requests *and* the fixed pool is pressed below its admission
        watermark, new submissions finish immediately with
        :attr:`FinishReason.SHED` instead of queueing.  ``None`` disables.
    watchdog:
        ``True`` (default) installs an
        :class:`~repro.serving.faults.EngineWatchdog` with default patience;
        pass an instance to tune it, or ``False``/``None`` to disable.  It
        only observes steps that had work, so polling an idle engine never
        trips it.
    """

    def __init__(
        self,
        model: DecoderLM,
        policy_factory: Callable[[], EvictionPolicy] | None = None,
        positional_mode: str | None = None,
        scheduler: FCFSScheduler | None = None,
        max_batch_size: int = 8,
        max_total_tokens: int | None = None,
        prefill_chunk_tokens: int | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        max_pool_tokens: int | None = None,
        max_pool_bytes: int | None = None,
        kv_dtype: str | None = None,
        enable_prefix_sharing: bool = True,
        admission_policy: str = "lru",
        tier0_budget: int | None = None,
        spill_backend: str | None = None,
        speculation: SpeculationConfig | None = None,
        faults: FaultInjector | None = None,
        fault_tolerant: bool | None = None,
        max_retries: int = 0,
        retry_backoff_steps: int = 4,
        deadline_steps: int | None = None,
        shed_queue_depth: int | None = None,
        watchdog: EngineWatchdog | bool | None = True,
    ):
        self.model = model
        self.policy_factory = policy_factory or FullAttentionPolicy
        self.positional_mode = positional_mode
        if prefill_chunk_tokens is not None and prefill_chunk_tokens < 2:
            raise ValueError("prefill_chunk_tokens must be >= 2 (or None)")
        # Explicit ``is None`` check: schedulers define ``__len__``, so an
        # *empty* caller-supplied scheduler is falsy and ``scheduler or ...``
        # would silently replace it with the default.
        self.scheduler = (
            scheduler
            if scheduler is not None
            else PagedScheduler(
                max_batch_size,
                max_total_tokens,
                prefill_chunk_tokens=prefill_chunk_tokens,
            )
        )
        if prefill_chunk_tokens is not None:
            # An explicitly passed scheduler adopts the engine-level knob.
            self.scheduler.prefill_chunk_tokens = prefill_chunk_tokens
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if retry_backoff_steps < 0:
            raise ValueError("retry_backoff_steps must be non-negative")
        if deadline_steps is not None and deadline_steps <= 0:
            raise ValueError("deadline_steps must be positive (or None)")
        if shed_queue_depth is not None and shed_queue_depth <= 0:
            raise ValueError("shed_queue_depth must be positive (or None)")
        self.faults = faults
        self.fault_tolerant = (
            faults is not None if fault_tolerant is None else bool(fault_tolerant)
        )
        self.max_retries = int(max_retries)
        self.retry_backoff_steps = int(retry_backoff_steps)
        self.deadline_steps = deadline_steps
        self.shed_queue_depth = shed_queue_depth
        if watchdog is True:
            self.watchdog: EngineWatchdog | None = EngineWatchdog()
        elif watchdog is False or watchdog is None:
            self.watchdog = None
        else:
            self.watchdog = watchdog
        #: Engine steps executed — the clock deadlines and backoff run on.
        self.step_count = 0
        #: Tokens committed to request outputs (watchdog progress signal).
        self.n_tokens_recorded = 0
        #: Faults quarantined (injected or organic), counting each retry.
        self.n_faults = 0
        #: Automatic retries granted after quarantined faults.
        self.n_retries = 0
        #: Requests retired with :attr:`FinishReason.TIMEOUT`.
        self.n_timeouts = 0
        #: Requests refused at submission with :attr:`FinishReason.SHED`.
        self.n_shed = 0
        self.page_size = int(page_size)
        self.kv_dtype = kv_dtype
        if max_pool_bytes is not None:
            if max_pool_tokens is not None:
                raise ValueError("pass either max_pool_tokens or max_pool_bytes, not both")
            # Convert the byte budget into pages using the per-page footprint
            # of the chosen kv_dtype (conservatively counting the rotated-key
            # slab whenever the model is RoPE — renumbered-position engines
            # simply get a little slack).
            config = model.config
            page_bytes = PagedKVStore.page_nbytes_for(
                kv_dtype,
                config.n_heads,
                config.d_head,
                self.page_size,
                config.np_dtype,
                config.rope_dims if config.positional == "rope" else 0,
            )
            n_pages = max(int(max_pool_bytes // (config.n_layers * page_bytes)), 1)
            max_pool_tokens = n_pages * self.page_size
        self.max_pool_bytes = max_pool_bytes
        self.max_pool_tokens = max_pool_tokens
        if spill_backend is not None and tier0_budget is None:
            raise ValueError(
                "spill_backend requires tier0_budget — KV offload is enabled "
                "by the tier-0 byte budget"
            )
        if tier0_budget is not None:
            if tier0_budget <= 0:
                raise ValueError("tier0_budget must be positive (or None)")
            # The tier-0 byte budget converts to resident frames per layer
            # with the same per-page footprint the pool-byte budget uses;
            # at least 2 frames (copy-on-write holds two pages at once).
            config = model.config
            page_bytes = PagedKVStore.page_nbytes_for(
                kv_dtype,
                config.n_heads,
                config.d_head,
                self.page_size,
                config.np_dtype,
                config.rope_dims if config.positional == "rope" else 0,
            )
            self.tier0_pages: int | None = max(
                int(tier0_budget // (config.n_layers * page_bytes)), 2
            )
        else:
            self.tier0_pages = None
        self.tier0_budget = tier0_budget
        self.spill_backend = spill_backend
        self.enable_prefix_sharing = enable_prefix_sharing
        if admission_policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission_policy {admission_policy!r}; "
                f"expected one of {ADMISSION_POLICIES}"
            )
        self.admission_policy = admission_policy
        self.speculation = speculation
        #: Per-request drafter + telemetry, keyed by request id (spec mode).
        self._spec: dict[int, tuple[Drafter, SpeculationStats]] = {}
        #: Draft/verify work paid by requests that were later preempted or
        #: aborted — preemption resets a request's own counters (the rerun
        #: repeats the work), but the cost was still paid and the aggregate
        #: telemetry must not hide it.
        self._spec_discarded = SpeculationStats()
        #: Prefix sharing must be skipped when the *drafter* policy seeds
        #: from prompt attention values (mirrors needs_prompt_attention).
        self._spec_blocks_sharing = False
        if (
            speculation is not None
            and speculation.drafter != "ngram"
            and speculation.drafter_model is None
        ):
            self._spec_blocks_sharing = make_drafter_policy(
                speculation
            ).needs_prompt_attention
        self._last_prompt_attn: list[np.ndarray] | None = None
        self._last_prompt_scores: list[np.ndarray] | None = None
        self._manager: BatchedCacheManager | None = None
        self._layer_views: list | None = None
        #: Running requests, index == KV-cache row (persistent batch).
        self._states: list[RequestState] = []
        #: Latest logits, one row per running request (aligned with _states).
        self._next_logits: np.ndarray | None = None
        self._finished: list[RequestState] = []
        self._next_id = 0
        self._admit_seq = 0
        #: Prompt tokens submitted for prefill vs actually run through the
        #: model — the gap is the prefix-sharing saving.
        self.prefill_prompt_tokens = 0
        self.prefill_computed_tokens = 0
        #: Preemptions performed (requests bumped back to the queue).
        self.n_preemptions = 0
        #: The at-most-one in-flight chunked prefill (``prefill_chunk_tokens``).
        self._chunked: _ChunkedPrefill | None = None
        #: Prompt chunks executed through the chunked-prefill path.
        self.n_prefill_chunks = 0
        #: Work done by the most recent :meth:`step` — the load harness feeds
        #: these into a :class:`~repro.perfmodel.serving.StepCostModel` to run
        #: traces in deterministic virtual time (``docs/workloads.md``).
        self.last_step_prefill_tokens = 0
        self.last_step_decode_rows = 0
        self._decode_rows_step = 0
        #: Shared RoPE table for rotating accumulated chunk keys at their
        #: original positions (bit-identical to the rotation inside
        #: ``attend_prefill``); ``None`` for non-RoPE models.
        self._rope_chunk_table = (
            get_rope_table(model.config.rope_dims)
            if model.config.positional == "rope"
            else None
        )

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        prompt_ids,
        config: GenerationConfig | None = None,
        sampler: Sampler | None = None,
        policy: EvictionPolicy | None = None,
        deadline_steps: int | None = None,
        priority: int = 0,
    ) -> RequestState:
        """Queue one request; returns its state handle (results after finish).

        ``deadline_steps`` overrides the engine default for this request; the
        submission may also be refused outright (``FinishReason.SHED``) when
        load shedding is configured and the engine is saturated.
        ``priority`` is the request's SLO tier (higher = more urgent); it
        only matters under a :class:`~repro.serving.slo.PriorityScheduler`
        and never affects what the request generates.
        """
        config = config or GenerationConfig()
        request = Request.from_config(
            self._next_id, prompt_ids, config, priority=int(priority)
        )
        # A lone request must be able to grow to its worst case (plus one
        # page of slack, plus the transient draft block in speculation mode)
        # inside the fixed pool, or it could exhaust the pool mid-decode with
        # nothing left to preempt.
        worst_case = request.token_budget + self.page_size
        if self.speculation is not None:
            # The transient draft block, plus — for self-drafting — the
            # drafter's resident budget-sized cache, which lives in the same
            # per-layer pools as the request itself.
            worst_case += self.speculation.k + 1
            if (
                self.speculation.drafter != "ngram"
                and self.speculation.drafter_model is None
            ):
                probe = make_drafter_policy(self.speculation)
                probe.setup(1, 1, 1, request.prompt_len, request.max_new_tokens)
                worst_case += probe.budget + self.page_size
        if self.max_pool_tokens is not None and worst_case > self.max_pool_tokens:
            raise ValueError(
                f"request needs up to {request.token_budget} tokens but the "
                f"fixed pool holds only {self.max_pool_tokens} — raise "
                "max_pool_tokens or shorten prompt/max_new_tokens"
            )
        self._next_id += 1
        sampler_factory = None
        if sampler is None:
            sampler_factory = lambda: make_sampler(
                config.temperature, config.top_k, config.seed
            )
            sampler = sampler_factory()
        policy = policy or self.policy_factory()
        if self.speculation is not None:
            if not isinstance(sampler, GreedySampler):
                raise ValueError(
                    "speculative serving verifies greedily; submit greedy "
                    "requests (temperature 0, or temperature 1 with "
                    "top_k 0) or disable speculation"
                )
            if not isinstance(policy, FullAttentionPolicy):
                raise ValueError(
                    "speculative serving runs the full-attention target; put "
                    "the sparse policy in SpeculationConfig's drafter instead"
                )
        state = RequestState(
            request=request,
            sampler=sampler,
            policy=policy,
            sampler_factory=sampler_factory,
            deadline_steps=(
                deadline_steps if deadline_steps is not None else self.deadline_steps
            ),
            submitted_step=self.step_count,
        )
        if self._should_shed():
            self.n_shed += 1
            self._finish_unjoined(state, FinishReason.SHED)
            return state
        self.scheduler.submit(state)
        return state

    def _should_shed(self) -> bool:
        """Load-shedding admission check: deep queue *and* pool pressure."""
        if self.shed_queue_depth is None:
            return False
        if len(self.scheduler) < self.shed_queue_depth:
            return False
        return self._pool_pressed()

    def _pool_pressed(self) -> bool:
        """True when the fixed pool is below the scheduler's admission
        watermark (counting reclaimable registry pages) — the same headroom
        rule :class:`PagedScheduler` admits against."""
        if self._manager is None:
            return False
        store = self._manager.store
        if store.growable:
            return False
        reclaimable = self._manager.registry.reclaimable_pages()
        watermark = getattr(self.scheduler, "watermark", 0.1)
        headroom = max(int(watermark * store.pools[0].n_pages), 1)
        return store.min_free_pages() + reclaimable <= headroom

    def abort(self, request_id: int) -> bool:
        """Cancel a request wherever it currently lives.

        A queued request leaves the scheduler; a running one retires
        immediately with its pages freed.  Either way it finishes with
        :attr:`FinishReason.ABORTED` and an empty/partial token list.
        Returns ``False`` when the id is unknown or already finished.
        """
        state = self.scheduler.cancel(request_id)
        if state is not None:
            self._finish_unjoined(state, FinishReason.ABORTED)
            return True
        if self._chunked is not None and self._chunked.state.request_id == request_id:
            # Mid-chunked-prefill: no pages were allocated yet, so dropping
            # the accumulator is the whole cleanup.
            state = self._chunked.state
            self._chunked = None
            self._finish_unjoined(state, FinishReason.ABORTED)
            return True
        for row, running in enumerate(self._states):
            if running.request_id == request_id:
                self._retire(row, FinishReason.ABORTED)
                return True
        return False

    @property
    def n_running(self) -> int:
        """Requests currently decoding in the batch."""
        return len(self._states)

    @property
    def n_queued(self) -> int:
        """Requests waiting for admission."""
        return len(self.scheduler)

    @property
    def has_work(self) -> bool:
        """True while any request is running, queued or mid-chunked-prefill."""
        return (
            bool(self._states)
            or bool(len(self.scheduler))
            or self._chunked is not None
        )

    def pool_usage(self) -> dict:
        """Current page-pool utilization (empty before the first prefill)."""
        if self._manager is None:
            return {}
        return self._manager.pool_usage()

    @property
    def prefill_savings(self) -> float:
        """Prompt tokens submitted / prompt tokens actually computed.

        1.0 without sharing; e.g. 3.0 means two thirds of all prompt tokens
        were served from mapped pages instead of being recomputed.
        """
        if self.prefill_computed_tokens == 0:
            return 1.0
        return self.prefill_prompt_tokens / self.prefill_computed_tokens

    def step_virtual_cost(self, cost_model) -> float:
        """Virtual-time cost of the most recent :meth:`step`.

        The front-end half of the pluggable replay protocol
        (:func:`~repro.serving.workload.replay_trace`): after each step the
        harness asks the engine what the step cost under a
        :class:`~repro.perfmodel.serving.StepCostModel`.  A multi-replica
        front-end overrides this with the *maximum* over its replicas'
        per-step costs (they run in parallel on real hardware); the solo
        engine simply prices its own prefill tokens and decode rows.
        """
        return cost_model.step_cost(
            self.last_step_prefill_tokens, self.last_step_decode_rows
        )

    # ------------------------------------------------------------------
    # engine loop
    # ------------------------------------------------------------------
    def step(self) -> list[RequestState]:
        """Advance the batch by one decoding step.

        Order of operations (the continuous-batching contract): record the
        previous step's sampled tokens and retire finished requests, admit
        queued requests into the freed capacity (prefill + first token),
        then run one batched decode step for everything still running —
        preempting back to the queue first if the page pool cannot fund the
        step's appends.  Returns the requests that finished during this step.

        With ``speculation`` configured the decode half becomes one
        draft-then-verify round per running request (rows advance by 1 to
        ``k + 1`` tokens); admission, preemption and FCFS semantics are
        unchanged.

        Each call also advances the fault-tolerance clock: the step counter
        ticks, expired deadlines retire (:attr:`FinishReason.TIMEOUT`), and
        the watchdog observes progress (only on steps that had work, so
        polling an idle engine never trips it).
        """
        n_done = len(self._finished)
        had_work = self.has_work
        tokens_before = self.n_tokens_recorded
        prefill_before = self.prefill_computed_tokens
        preempts_before = self.n_preemptions
        self._decode_rows_step = 0
        self.step_count += 1
        self._expire_deadlines()
        if self.speculation is not None:
            self._step_speculative()
        else:
            self._step_vanilla()
        finished = self._finished[n_done:]
        self.last_step_prefill_tokens = self.prefill_computed_tokens - prefill_before
        self.last_step_decode_rows = self._decode_rows_step
        if self.watchdog is not None and had_work:
            # A chunked prefill advances the prompt without recording tokens,
            # so prefill progress counts as progress too.
            self.watchdog.observe(
                bool(finished)
                or self.n_tokens_recorded > tokens_before
                or self.prefill_computed_tokens > prefill_before,
                self.n_preemptions - preempts_before,
            )
        return finished

    def _step_vanilla(self) -> None:
        """The non-speculative step body: record, admit, decode."""
        self._record_rows(range(len(self._states)))
        joined = self._admit_and_prefill()
        if joined:
            # Identify rows by state (a failed admission may have preempted
            # and therefore moved rows): record each joined request's first
            # sampled token.
            members = set(map(id, joined))
            self._record_rows(
                [row for row, st in enumerate(self._states) if id(st) in members]
            )
        self._decode()

    def run(self) -> list[RequestState]:
        """Run until the queue and the batch are both empty; returns all
        requests finished during this call, in completion order."""
        n_done = len(self._finished)
        while self.has_work:
            self.step()
        return self._finished[n_done:]

    # ------------------------------------------------------------------
    # fault tolerance: deadlines, retries, quarantine
    # ------------------------------------------------------------------
    def _finish_unjoined(self, state: RequestState, reason: FinishReason) -> None:
        """Finish a request that never held a cache row (shed, queued-abort,
        queued-timeout, final prefill failure) — nothing to release."""
        state.status = RequestStatus.FINISHED
        state.finish_reason = reason
        state.pending_token = None
        state.finished_step = self.step_count
        state.cache_stats = CacheStats()
        self._finished.append(state)

    def _deadline_exceeded(self, state: RequestState) -> bool:
        if state.deadline_steps is None:
            return False
        return self.step_count - state.submitted_step > state.deadline_steps

    def _expire_deadlines(self) -> None:
        """Retire every request past its step-count deadline.

        The clock is end-to-end from submission: queue wait, preemptions and
        retry backoff all count against it, so a deadline bounds total
        latency rather than active compute.
        """
        expired = [
            row
            for row, state in enumerate(self._states)
            if self._deadline_exceeded(state)
        ]
        # Highest row first: each retirement moves the last row into the
        # freed slot, which never disturbs a lower expired row.
        for row in sorted(expired, reverse=True):
            self.n_timeouts += 1
            self._retire(row, FinishReason.TIMEOUT)
        for state in list(self.scheduler.pending):
            if self._deadline_exceeded(state):
                self.scheduler.cancel(state.request_id)
                self.n_timeouts += 1
                self._finish_unjoined(state, FinishReason.TIMEOUT)
        if self._chunked is not None and self._deadline_exceeded(self._chunked.state):
            state = self._chunked.state
            self._chunked = None  # no pages held mid-chunking; nothing to free
            self.n_timeouts += 1
            self._finish_unjoined(state, FinishReason.TIMEOUT)

    def _record_fault(self, state: RequestState, exc: BaseException) -> None:
        """Stamp the fault's message and traceback onto the request state."""
        self.n_faults += 1
        state.error = f"{type(exc).__name__}: {exc}"
        state.error_traceback = "".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        )

    def _backoff(self, state: RequestState) -> int:
        """Deterministic exponential step-count backoff for the next retry."""
        return self.retry_backoff_steps * (2 ** state.retries)

    def _fault_row_of(self, exc: BaseException) -> int | None:
        """Attribute an exception to a running row, if possible.

        Low-level code tags exceptions with ``fault_row`` (a batch row index)
        via :func:`~repro.kvcache.paged.tag_fault_row`; injected faults carry
        the ``request_id`` they fired for.  Returns ``None`` when neither
        resolves — the caller must re-raise rather than guess.
        """
        row = getattr(exc, "fault_row", None)
        if row is not None and 0 <= row < len(self._states):
            return int(row)
        request_id = getattr(exc, "request_id", None)
        if request_id is not None:
            for row, state in enumerate(self._states):
                if state.request_id == request_id:
                    return row
        return None

    def _quarantine_row(self, row: int, exc: BaseException) -> None:
        """Retire (or retry) one faulted running row; the batch continues.

        With retry budget left the row goes back through the
        preempt-and-restart machinery — pages freed, generation state reset,
        requeued behind its backoff window — so its eventual output is
        bit-identical to a fault-free run.  Otherwise it retires with
        :attr:`FinishReason.ERROR` carrying the fault's message + traceback.
        """
        state = self._states[row]
        self._record_fault(state, exc)
        if state.retries < self.max_retries:
            self.n_retries += 1
            self._release_spec(state)
            self._manager.release_row(row)
            self._drop_row(row)
            state.reset_for_retry(self.step_count + self._backoff(state))
            self.scheduler.requeue(state)
        else:
            self._retire(row, FinishReason.ERROR)

    def _n_admission_slots(self) -> int:
        """Batch slots spoken for: running rows + the in-flight chunked
        prefill (its row exists only after the final chunk joins)."""
        return len(self._states) + (1 if self._chunked is not None else 0)

    def _tokens_in_flight(self) -> int:
        """Worst-case token budgets of running rows + the chunked prefill."""
        total = sum(st.request.token_budget for st in self._states)
        if self._chunked is not None:
            total += self._chunked.state.request.token_budget
        return total

    def _chunked_reserved_pages(self) -> int:
        """Pages the in-flight chunked prefill will claim at its join —
        reserved at admission time so concurrent admissions cannot spend
        the same free pages twice (the kvcache admission accounting for
        chunked prefill)."""
        if self._chunked is None or self._manager is None:
            return 0
        return self._manager.store.pages_for_tokens(
            self._chunked.state.request.prompt_len + 1
        )

    def _admit_queued(self, admitted_already: list[RequestState]) -> list[RequestState]:
        """One scheduler admission pass with full in-flight accounting."""
        reserved = self._chunked_reserved_pages()
        if self._manager is not None:
            # Earlier admissions this step have not joined yet; their prompt
            # pages are promised but unallocated, exactly like the chunked
            # prefill's.
            reserved += sum(
                self._manager.store.pages_for_tokens(st.request.prompt_len + 1)
                for st in admitted_already
            )
        return self.scheduler.admit(
            self._n_admission_slots() + len(admitted_already),
            self._tokens_in_flight()
            + sum(st.request.token_budget for st in admitted_already),
            store=self._manager.store if self._manager is not None else None,
            registry=self._manager.registry if self._manager is not None else None,
            now_step=self.step_count,
            reserved_pages=reserved,
        )

    def _preempt_for_priority(self, admitted: list[RequestState]) -> None:
        """Preempt running lower-priority requests for a blocked
        higher-priority queue head, extending ``admitted`` in place.

        Only runs when the scheduler opts in (``priority_preemption``,
        :class:`~repro.serving.slo.PriorityScheduler`).  Each iteration
        preempts exactly one victim — the lowest-priority, newest-admitted
        running request — then retries admission; the loop ends when the
        head is admitted, out-prioritized, or there is nothing left to
        preempt.  Preemption restarts regenerate bit-identically, so this
        trades the victims' completion time for the head's, never output.
        """
        while len(self.scheduler) and self._states:
            head = self.scheduler.pending[0]
            if head.retry_at > self.step_count:
                break
            if not any(
                st.request.priority < head.request.priority for st in self._states
            ):
                break
            self._preempt_victim()
            admitted.extend(self._admit_queued(admitted))

    def _admit_and_prefill(self) -> list[RequestState]:
        """Advance the chunked prefill, admit queued requests, prefill them.

        Builds the store before the first admission so memory-aware
        admission sees real page counts from the very first request.  A
        failed join (the pool could not be funded; a victim was preempted)
        requeues the failing request and every younger admission behind it,
        in order — letting the younger ones jump in would break the
        head-of-line FCFS contract.  When nothing is running, nothing could
        join and the queue is non-empty, the pool is as free as it will ever
        get and the head request can never fit, so this raises
        :class:`PoolExhausted`.  Returns the requests that joined.
        """
        joined: list[RequestState] = []
        if self._chunked is not None:
            completed = self._advance_chunked()
            if completed is not None:
                joined.append(completed)
        if self._manager is None and len(self.scheduler):
            self._build_manager(self.scheduler.pending[0].policy)
        admitted = self._admit_queued([])
        if getattr(self.scheduler, "priority_preemption", False):
            self._preempt_for_priority(admitted)
        for i, state in enumerate(admitted):
            outcome = self._prefill(state)
            if outcome == _PREFILL_JOINED:
                joined.append(state)
                continue
            if outcome == _PREFILL_CHUNKED:
                continue  # first chunk ran; the join happens in a later step
            if outcome == _PREFILL_FAILED_FINAL:
                continue  # retired with ERROR; younger admissions may proceed
            if outcome == _PREFILL_FAILED_RETRY:
                # The failing request is already requeued (with backoff);
                # younger admissions go back behind it in arrival order.
                self.scheduler.requeue_many(admitted[i + 1 :])
            else:  # _PREFILL_BLOCKED: pool could not fund the join
                self.scheduler.requeue_many(admitted[i:])
            break
        if (
            not self._states
            and self._chunked is None
            and not joined
            and not admitted
            and len(self.scheduler)
        ):
            head = self.scheduler.pending[0]
            if head.retry_at <= self.step_count:
                raise PoolExhausted(
                    f"request {head.request_id} (prompt {head.request.prompt_len} "
                    f"tokens) cannot be admitted even into an idle pool — raise "
                    "max_pool_tokens or lower the scheduler watermark"
                )
        return joined

    # ------------------------------------------------------------------
    # speculative stepping
    # ------------------------------------------------------------------
    def _step_speculative(self) -> None:
        """One engine step in speculation mode.

        Admission and prefill are shared with the vanilla path; the decode
        half runs one draft-then-verify round per running request instead of
        one batched token.  Rows are processed newest-first so that a
        retirement's persistent-batch move (last row into the freed slot)
        only ever touches rows already handled this step.
        """
        joined_ids = set(map(id, self._admit_and_prefill()))
        # Record each joined request's first sampled token (vanilla defers
        # this to the next step's bookkeeping; speculation records inline).
        for row in range(len(self._states) - 1, -1, -1):
            state = self._states[row]
            if id(state) in joined_ids:
                joined_ids.discard(id(state))
                # Context drafters must see the first token too, or every
                # later n-gram lookup spans a history with a hole at the
                # prompt/generation seam.
                drafter, _ = self._spec[state.request_id]
                drafter.note_committed([state.pending_token])
                self._spec_commit(row, [(state.pending_token, state.pending_logprob)])
        processed: set[int] = set()
        for row in range(len(self._states) - 1, -1, -1):
            if row >= len(self._states):
                continue  # preemption shrank the batch mid-sweep
            state = self._states[row]
            if id(state) in processed:
                continue
            processed.add(id(state))
            self._spec_round(row)

    def _spec_round(self, row: int) -> None:
        """One draft-then-verify round for one running row.

        Under fixed pools the round first preempts newest-admitted rows until
        the store can fund the transient draft block; a mid-round
        ``PoolExhausted`` (the watermark under-estimated) rolls the drafter
        back to the round start and preempts — the row simply retries next
        step, so pressure changes *when* it finishes, never *what* it emits.
        A lone request with nothing to preempt swaps its drafter for the
        page-free n-gram fallback instead.
        """
        state = self._states[row]
        drafter, stats = self._spec[state.request_id]
        store = self._manager.store
        if not store.growable:
            need = store.pages_for_tokens(self.speculation.k + 1) + 1
            while store.min_free_pages() < need and len(self._states) > 1:
                self._preempt_victim()
                if all(st is not state for st in self._states):
                    return  # this row was the preemption victim
            row = next(i for i, st in enumerate(self._states) if st is state)
        remaining = state.request.max_new_tokens - len(state.tokens)
        target = BatchedRowVerifyTarget(
            self.model,
            self._manager,
            row,
            faults=self.faults,
            request_id=state.request_id,
        )
        try:
            if self.faults is not None:
                self.faults.check("draft", state.request_id)
            commits = run_round(
                target,
                drafter,
                state.tokens[-1],
                self.speculation.k,
                remaining,
                state.request.eos_token_id,
                stats,
            )
        except PoolExhausted:
            drafter.abort_round()
            if len(self._states) > 1:
                self._preempt_victim()
                return
            # Lone request with nothing to preempt: drop the page-holding
            # drafter and fall back to model-free n-gram drafting.  Its
            # pages return to the pool, and the verify path alone fits any
            # request submit() accepted — progress is guaranteed, and by the
            # verification contract the output is unchanged.  The stats
            # object stays live with the fallback (not through
            # ``_release_spec``, which would merge it into the discarded
            # aggregate and double-count every round at retirement).
            carried_steps = drafter.draft_steps
            del self._spec[state.request_id]
            drafter.release()
            fallback = NgramDrafter(state.request.prompt_ids[0], self.speculation)
            fallback.note_committed(state.tokens)
            fallback.draft_steps = carried_steps
            self._spec[state.request_id] = (fallback, stats)
            return
        except Exception as exc:
            if not self.fault_tolerant:
                raise
            # Quarantine: the verify adapter already unwound its partial
            # appends; roll the drafter back to the round start, then retire
            # or retry this row alone — the other rows are untouched (rounds
            # are strictly row-at-a-time).
            drafter.abort_round()
            self._quarantine_row(row, exc)
            return
        # One draft-then-verify round ≈ one decode-row unit in the step-cost
        # model (the verify pass is a single ragged forward for this row).
        self._decode_rows_step += 1
        self._spec_commit(row, commits)

    def _spec_commit(self, row: int, commits: list[tuple[int, float]]) -> bool:
        """Record committed ``(token, logprob)`` pairs; retire on EOS/budget.

        Returns ``True`` when the row retired.  ``run_round`` already clips
        the commits at EOS and at the remaining budget, so the checks here
        fire on the final committed token only.
        """
        state = self._states[row]
        self.n_tokens_recorded += len(commits)
        if commits and state.first_token_step is None:
            state.first_token_step = self.step_count
        finish: FinishReason | None = None
        for token, logprob in commits:
            state.tokens.append(int(token))
            state.total_logprob += logprob
            eos = state.request.eos_token_id
            if eos is not None and token == eos:
                finish = FinishReason.EOS
                break
            if len(state.tokens) >= state.request.max_new_tokens:
                finish = FinishReason.LENGTH
                break
        if finish is not None:
            self._retire(row, finish)
            return True
        return False

    def _build_drafter(self, state: RequestState, row: int) -> Drafter:
        """Construct the per-request drafter right after its prefill joined."""
        spec = self.speculation
        if spec.drafter == "ngram":
            return NgramDrafter(state.request.prompt_ids[0], spec)
        policy = make_drafter_policy(spec)
        if spec.drafter_model is not None:
            return PolicyDrafter.seed_from_prompt(
                spec.drafter_model,
                policy,
                state.request.prompt_ids,
                state.request.max_new_tokens,
                positional_mode=self._manager.positional_mode,
            )
        # Self-drafting: the drafter's page tables live in the engine's own
        # store, seeded by mapping the freshly joined row's prompt pages.
        return PolicyDrafter.seed_mapped(
            self.model,
            policy,
            self._manager.store,
            [[cache.tables[row]] for cache in self._manager.caches],
            self._last_prompt_attn,
            self._last_prompt_scores,
            state.request.max_new_tokens,
            positional_mode=self._manager.positional_mode,
        )

    @property
    def speculation_stats(self) -> SpeculationStats:
        """Aggregate draft/verify telemetry over finished *and* running
        requests (spec mode; zeros otherwise)."""
        total = SpeculationStats()
        total.merge(self._spec_discarded)
        for state in self._finished:
            if state.speculation:
                total.merge(SpeculationStats.from_summary(state.speculation))
        for drafter, stats in self._spec.values():
            stats.draft_steps = drafter.draft_steps
            total.merge(stats)
        return total

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def _prefill(self, state: RequestState) -> int:
        """Prompt phase for one admitted request + row join + first-token
        sampling.  Returns one of the ``_PREFILL_*`` outcome codes:
        ``_PREFILL_JOINED`` (truthy) on success, ``_PREFILL_BLOCKED`` when
        the pool could not fund the join (a victim was preempted; the caller
        requeues the request), or — under fault tolerance — the two
        quarantine outcomes ``_PREFILL_FAILED_RETRY`` /
        ``_PREFILL_FAILED_FINAL``.

        Runs the full prompt forward (identical math to
        ``Generator._prompt_forward``) unless a registered prefix of the
        prompt is resident, in which case only the suffix runs through
        :meth:`DecoderLM.forward_suffix` — bit-identical either way.
        """
        if self._manager is None:
            self._build_manager(state.policy)
        mode = self.positional_mode or state.policy.config.positional_mode
        if mode != self._manager.positional_mode:
            raise ValueError(
                f"request {state.request_id} uses positional mode {mode!r} but the "
                f"batch runs in {self._manager.positional_mode!r} — one engine "
                "serves one positional mode"
            )

        prompt = state.request.prompt_ids
        prompt_len = state.request.prompt_len
        match = None
        if (
            self.enable_prefix_sharing
            and not state.policy.needs_prompt_attention
            and not self._spec_blocks_sharing
        ):
            # The chunked projections are only row-stable for suffixes of two
            # or more tokens, so always recompute at least the last two.
            match = self._manager.registry.match(prompt[0], max_tokens=prompt_len - 2)

        try:
            if self.faults is not None:
                self.faults.check("prefill", state.request_id)
            if match is None and self._should_chunk(state):
                # Long unshared prompt under a chunk budget: run the first
                # chunk now and spread the rest over the following steps —
                # decode rows (and other admissions) interleave in between.
                self._chunked = _ChunkedPrefill(
                    state, self.scheduler.prefill_chunk_tokens
                )
                self._run_chunk(self._chunked)
                return _PREFILL_CHUNKED
            if match is not None:
                row, next_row = self._prefill_shared(state, match)
                computed = prompt_len - match.length
            else:
                row, next_row = self._prefill_full(state)
                computed = prompt_len
            if self.speculation is not None:
                # The drafter seeds against the just-joined row (mapping its
                # prompt pages for self-drafting); a failed seed must not
                # leak the row, so unwind it before taking the preempt (or
                # quarantine) path.
                try:
                    self._spec[state.request_id] = (
                        self._build_drafter(state, row),
                        SpeculationStats(),
                    )
                except Exception:
                    self._manager.release_row(row)
                    raise
        except PoolExhausted:
            # The watermark under-estimated (e.g. concurrent COW growth).
            # Free pages by preempting the newest running request; the caller
            # requeues this request (and any younger admissions) so the next
            # step retries in arrival order.
            if not self._states:
                raise  # nothing to preempt — the pool simply cannot fit it
            self._preempt_victim()
            return _PREFILL_BLOCKED
        except Exception as exc:
            # ``join`` and the drafter seed both unwind their own pages on
            # failure, so the store is clean here; quarantine the request
            # alone (running rows are untouched by a prefill).
            if self._chunked is not None and self._chunked.state is state:
                self._chunked = None
            if not self.fault_tolerant:
                raise
            return self._prefill_failure(state, exc)
        finally:
            # The prompt-attention tensors are only needed between prefill
            # and drafter seeding; holding the dense (1, H, T, T) arrays any
            # longer would pin O(n_layers * T^2) memory per engine.
            self._last_prompt_attn = None
            self._last_prompt_scores = None
        self.prefill_prompt_tokens += prompt_len
        self.prefill_computed_tokens += computed
        self._complete_join(state, row, next_row)
        return _PREFILL_JOINED

    def _complete_join(self, state: RequestState, row: int, next_row: np.ndarray) -> None:
        """Post-join bookkeeping shared by every prefill path: sample the
        first token from the prompt's final logits and append the request to
        the running batch."""
        assert row == len(self._states), "engine rows out of sync with cache rows"
        if self.speculation is not None:
            # Speculation records tokens inline (rows advance unevenly), so
            # no per-row logits are carried between steps — keep the pending
            # token's log-probability on the state instead.
            state.pending_token = int(state.sampler(next_row)[0])
            state.pending_logprob = float(
                log_softmax(next_row, axis=-1)[0, state.pending_token]
            )
            self._states.append(state)
        else:
            if self._next_logits is None or not self._states:
                self._next_logits = next_row
            else:
                self._next_logits = np.concatenate([self._next_logits, next_row])
            self._states.append(state)
            state.pending_token = int(state.sampler(next_row)[0])
        state.status = RequestStatus.RUNNING
        state.admitted_seq = self._admit_seq
        self._admit_seq += 1

    # ------------------------------------------------------------------
    # chunked prefill
    # ------------------------------------------------------------------
    def _should_chunk(self, state: RequestState) -> bool:
        """Whether this admitted request's prefill should be chunked.

        Requires a chunk budget on the scheduler, no other chunked prefill
        in flight (one at a time keeps the accounting simple; a second long
        prompt simply prefills unchunked), a prompt long enough that
        chunking actually splits it (> budget + 1, so no 1-token tail), a
        policy that never reads prompt attention values (the join passes
        the same zero-strided dummies as the shared-prefix path), and
        non-speculative mode (the draft/verify loop has its own step
        structure).  The caller additionally requires no resident shared
        prefix — a mapped prefix already makes prefill cheap, and chunking
        across an LRU-reclaimable mapping would race the registry.
        """
        budget = getattr(self.scheduler, "prefill_chunk_tokens", None)
        return (
            budget is not None
            and self._chunked is None
            and self.speculation is None
            and not state.policy.needs_prompt_attention
            and state.request.prompt_len > budget + 1
        )

    def _run_chunk(self, pending: _ChunkedPrefill) -> None:
        """Compute the next prompt chunk and fold it into the accumulators.

        The first chunk runs the ordinary full forward (its rows and raw KV
        are bit-identical to the corresponding rows of a whole-prompt
        forward — the projection row-stability the prefix-sharing path is
        built on); later chunks attend over the accumulated prefix through
        :meth:`DecoderLM.forward_suffix`, exactly like the shared-prefix
        path but with the prefix held in engine arrays instead of mapped
        pages.  No pool pages are touched here.
        """
        state = pending.state
        size = pending.next_chunk()
        start, end = pending.done, pending.done + size
        chunk = state.request.prompt_ids[:, start:end]
        if start == 0:
            self.model.forward(chunk, store_attention=True)
            chunk_kv = []
            for block in self.model.blocks:
                if block.attn.last_kv is None:
                    raise RuntimeError("prompt forward did not store attention tensors")
                chunk_kv.append(block.attn.last_kv)
            logits = None
        else:
            prefix_kv = list(zip(pending.k_attn, pending.v_cat))
            logits, chunk_kv = self.model.forward_suffix(chunk, prefix_kv, start)
        positions = np.arange(start, end)
        for layer, (k_raw, v) in enumerate(chunk_kv):
            if self._rope_chunk_table is not None:
                k_att = self._rope_chunk_table.rotate(k_raw, positions)
            else:
                k_att = k_raw
            if start == 0:
                pending.k_raw.append(k_raw)
                pending.v_cat.append(v)
                pending.k_attn.append(k_att)
            else:
                pending.k_raw[layer] = np.concatenate(
                    [pending.k_raw[layer], k_raw], axis=2
                )
                pending.v_cat[layer] = np.concatenate(
                    [pending.v_cat[layer], v], axis=2
                )
                pending.k_attn[layer] = np.concatenate(
                    [pending.k_attn[layer], k_att], axis=2
                )
        pending.done = end
        self.n_prefill_chunks += 1
        # Chunked prompts are always fully computed (never mapped), so both
        # sharing counters advance together and mid-flight aborts keep the
        # prefill_savings ratio consistent.
        self.prefill_prompt_tokens += size
        self.prefill_computed_tokens += size
        if pending.done == state.request.prompt_len:
            pending.complete = True
            pending.next_row = logits[:, -1, :]

    def _advance_chunked(self) -> RequestState | None:
        """Run the in-flight chunked prefill's next chunk (or its join).

        Returns the request's state when it joined the batch this step,
        ``None`` otherwise.  A ``PoolExhausted`` at the join preempts a
        victim and retries the join next step (the accumulated chunks are
        kept — no recompute); any other exception drops the accumulator and
        goes through the ordinary prefill quarantine machinery.
        """
        pending = self._chunked
        state = pending.state
        try:
            if self.faults is not None:
                self.faults.check("prefill", state.request_id)
            if not pending.complete:
                self._run_chunk(pending)
                if not pending.complete:
                    return None
            row, next_row = self._join_chunked(pending)
        except PoolExhausted:
            if not self._states:
                self._chunked = None
                raise  # nothing to preempt — the pool simply cannot fit it
            self._preempt_victim()
            return None
        except Exception as exc:
            self._chunked = None
            if not self.fault_tolerant:
                raise
            self._prefill_failure(state, exc)
            return None
        self._chunked = None
        self._complete_join(state, row, next_row)
        return state

    def _join_chunked(self, pending: _ChunkedPrefill) -> tuple[int, np.ndarray]:
        """Join a fully computed chunked prompt into the paged store.

        Same join as :meth:`_prefill_full` (the raw KV is bit-identical to a
        monolithic prompt forward's), with the shared-prefix path's
        zero-strided dummy attention tensors — chunking is gated to policies
        whose prompt-phase selections depend on shapes alone.  The prompt
        registers in the prefix registry as usual, so chunked prompts still
        seed future sharing.
        """
        state = pending.state
        prompt_len = state.request.prompt_len
        h = self.model.config.n_heads
        dummy = np.broadcast_to(
            np.zeros(1, dtype=self.model.config.np_dtype),
            (1, h, prompt_len, prompt_len),
        )
        row = self._manager.join(
            list(zip(pending.k_raw, pending.v_cat)),
            [dummy] * self._manager.n_layers,
            [dummy] * self._manager.n_layers,
            state.request.max_new_tokens,
            state.policy,
            prompt_token_ids=self._register_ids(state),
        )
        return row, pending.next_row

    def _prefill_failure(self, state: RequestState, exc: BaseException) -> int:
        """Quarantine a faulted prefill: retry with backoff or retire with
        :attr:`FinishReason.ERROR`.  The request never joined a row, so only
        its (possibly seeded) drafter needs tearing down."""
        self._release_spec(state)
        self._record_fault(state, exc)
        if state.retries < self.max_retries:
            self.n_retries += 1
            state.reset_for_retry(self.step_count + self._backoff(state))
            self.scheduler.requeue(state)
            return _PREFILL_FAILED_RETRY
        self._finish_unjoined(state, FinishReason.ERROR)
        return _PREFILL_FAILED_FINAL

    def _prefill_full(self, state: RequestState) -> tuple[int, np.ndarray]:
        """Whole-prompt forward pass; registers the prompt for future sharing."""
        logits = self.model.forward(state.request.prompt_ids, store_attention=True)
        prompt_kv, prompt_attn, prompt_scores = [], [], []
        for block in self.model.blocks:
            if block.attn.last_kv is None or block.attn.last_scores is None:
                raise RuntimeError("prompt forward did not store attention tensors")
            prompt_kv.append(block.attn.last_kv)
            prompt_attn.append(block.attn.last_attention)
            prompt_scores.append(block.attn.last_scores)
        self._last_prompt_attn = prompt_attn
        self._last_prompt_scores = prompt_scores
        row = self._manager.join(
            prompt_kv,
            prompt_attn,
            prompt_scores,
            state.request.max_new_tokens,
            state.policy,
            prompt_token_ids=self._register_ids(state),
        )
        return row, logits[:, -1, :]

    def _prefill_shared(
        self, state: RequestState, match: PrefixMatch
    ) -> tuple[int, np.ndarray]:
        """Chunked prefill over mapped prefix pages (the prefix-sharing path).

        The policy's prompt-phase hook receives zero-strided dummy attention
        tensors: this path is only taken for policies that never read prompt
        attention *values* (``needs_prompt_attention`` is False), and their
        selections depend on shapes alone — so eviction behaviour is
        bit-identical to the full-prefill path.
        """
        prompt = state.request.prompt_ids
        prompt_len = state.request.prompt_len
        prefix_kv = self._manager.prefix_tensors(match)
        logits, suffix_kv = self.model.forward_suffix(
            prompt[:, match.length :], prefix_kv, match.length
        )
        h = self.model.config.n_heads
        dummy = np.broadcast_to(
            np.zeros(1, dtype=self.model.config.np_dtype),
            (1, h, prompt_len, prompt_len),
        )
        self._last_prompt_attn = [dummy] * self._manager.n_layers
        self._last_prompt_scores = [dummy] * self._manager.n_layers
        row = self._manager.join(
            suffix_kv,
            [dummy] * self._manager.n_layers,
            [dummy] * self._manager.n_layers,
            state.request.max_new_tokens,
            state.policy,
            shared_prefix=match,
            prompt_token_ids=self._register_ids(state),
        )
        return row, logits[:, -1, :]

    def _register_ids(self, state: RequestState) -> np.ndarray | None:
        """Prompt ids to register in the prefix registry (None disables)."""
        if not self.enable_prefix_sharing:
            return None
        return state.request.prompt_ids[0]

    def _record_rows(self, rows) -> None:
        """Record each row's pending token (the previous sample), accumulate
        its log-probability, and retire rows that hit EOS or the budget."""
        rows = list(rows)
        if not rows:
            return
        if len(rows) == len(self._states):
            row_logits = self._next_logits
        else:
            row_logits = self._next_logits[np.asarray(rows)]
        logprobs = log_softmax(row_logits, axis=-1)
        self.n_tokens_recorded += len(rows)
        finishing: list[tuple[int, FinishReason]] = []
        for i, row in enumerate(rows):
            state = self._states[row]
            token = state.pending_token
            if state.first_token_step is None:
                state.first_token_step = self.step_count
            state.total_logprob += float(logprobs[i, token])
            state.tokens.append(token)
            eos = state.request.eos_token_id
            if eos is not None and token == eos:
                finishing.append((row, FinishReason.EOS))
            elif state.step == state.request.max_new_tokens - 1:
                finishing.append((row, FinishReason.LENGTH))
            else:
                state.step += 1
        # Retire from the highest row down so persistent-batch moves (last row
        # into the freed slot) never disturb a lower row still to be retired.
        for row, reason in sorted(finishing, reverse=True):
            self._retire(row, reason)

    def _drop_row(self, row: int) -> RequestState:
        """Remove ``row`` from the running set (persistent-batch move)."""
        state = self._states[row]
        last = len(self._states) - 1
        if row != last:
            self._states[row] = self._states[last]
            if self._next_logits is not None:
                self._next_logits[row] = self._next_logits[last]
        self._states.pop()
        if self._next_logits is not None:
            self._next_logits = self._next_logits[:last]
        return state

    def _release_spec(self, state: RequestState, record: bool = False) -> None:
        """Tear down a request's drafter (retire/preempt/abort in spec mode)."""
        spec = self._spec.pop(state.request_id, None)
        if spec is None:
            return
        drafter, stats = spec
        stats.draft_steps = drafter.draft_steps
        if record:
            state.speculation = stats.summary()
        else:
            self._spec_discarded.merge(stats)
        drafter.release()

    def _retire(self, row: int, reason: FinishReason) -> None:
        state = self._states[row]
        state.finish_reason = reason
        state.status = RequestStatus.FINISHED
        state.pending_token = None
        state.finished_step = self.step_count
        state.n_steps = self._manager.generation_step[row]
        self._release_spec(state, record=True)
        state.cache_stats = self._manager.retire(row)
        self._drop_row(row)
        self._finished.append(state)

    def _preempt_victim(self) -> None:
        """Bump the preemption victim back to the queue.

        The victim is the lowest-priority running request, newest-admitted
        among ties — with uniform priorities (every non-priority scheduler)
        this is exactly the historical newest-first rule, preserving FCFS
        completion semantics: an older request is never sacrificed for a
        younger one of the same tier.  Its pages return to the pool
        immediately; on re-admission it re-prefills and regenerates from
        scratch (deterministically, so the final output is unchanged).
        """
        row = min(
            range(len(self._states)),
            key=lambda r: (
                self._states[r].request.priority,
                -self._states[r].admitted_seq,
            ),
        )
        self._release_spec(self._states[row])
        self._manager.release_row(row)
        state = self._drop_row(row)
        state.reset_for_requeue()
        self.scheduler.requeue(state)
        self.n_preemptions += 1

    def _ensure_decode_capacity(self) -> None:
        """Preempt until the page pools can fund this step's appends."""
        if self._manager is None or self._manager.store.growable:
            return
        while len(self._states) > 1 and self._manager.append_pages_shortfall() > 0:
            self._preempt_victim()

    def _prefetch_decode(self) -> None:
        """Batch-restore spilled pages of scheduled rows before a decode step.

        With tiered offload enabled (``tier0_budget``), the pages each running
        row will read this step are restored in one bulk pass per layer
        instead of demand-faulting one page at a time inside the forward —
        same bytes, fewer arena round-trips.  No-op without offload.

        Prefetch is *best-effort*: a transfer fault here mutates nothing
        (``spill_io`` fires before any pool or arena state changes), so
        under fault tolerance it degrades to demand restore inside the
        decode step rather than failing the batch.
        """
        if self.tier0_pages is None or self._manager is None:
            return
        try:
            self._manager.prefetch_decode()
        except Exception:
            if not self.fault_tolerant:
                raise

    def _decode(self) -> None:
        """One batched decode step + per-request sampling of the next token.

        Under fault tolerance the step runs against per-row copy-on-write
        snapshots: an exception restores every row to its pre-step pages
        (unwinding partial appends in already-processed layers), quarantines
        the faulted row alone, and replays the step for the survivors —
        whose tokens and log-probabilities are therefore bit-identical to a
        fault-free run (the batched math is row-independent, and sampler
        state only advances after a successful forward).
        """
        if not self._states:
            return
        if not self.fault_tolerant:
            self._ensure_decode_capacity()
            if self._states:
                self._prefetch_decode()
                self._decode_step_once()
            return
        while self._states:
            self._ensure_decode_capacity()
            if not self._states:
                return
            self._prefetch_decode()
            snapshots = [
                self._manager.snapshot_row(row) for row in range(len(self._states))
            ]
            try:
                self._decode_step_once(check_faults=True)
            except Exception as exc:
                # Restore every row first: partial appends from the failed
                # pass vanish and the pristine pre-step pages come back.
                for row in range(len(self._states) - 1, -1, -1):
                    self._manager.restore_row(row, snapshots[row])
                if isinstance(exc, PoolExhausted):
                    # Snapshots share all pages, so every append goes through
                    # copy-on-write and the capacity check undercounts; treat
                    # a mid-step exhaustion as ordinary pressure.
                    if len(self._states) > 1:
                        self._preempt_victim()
                        continue
                    raise
                row = self._fault_row_of(exc)
                if row is None:
                    raise  # not attributable to one row — not quarantinable
                self._quarantine_row(row, exc)
                continue
            for snapshot in snapshots:
                self._manager.discard_row_snapshot(snapshot)
            return

    def _decode_step_once(self, check_faults: bool = False) -> None:
        """The raw batched decode pass + sampling (one attempt, no recovery)."""
        if check_faults and self.faults is not None:
            for state in self._states:
                self.faults.check("decode", state.request_id)
        tokens = np.asarray([st.pending_token for st in self._states], dtype=np.int64)
        positions = self._manager.query_positions()
        self._next_logits = self.model.decode_step_batch(
            tokens, positions, self._layer_views
        )
        self._decode_rows_step += len(self._states)
        self._manager.advance()
        sampled = sample_rows([st.sampler for st in self._states], self._next_logits)
        for row, state in enumerate(self._states):
            state.pending_token = int(sampled[row])

    def _build_manager(self, first_policy: EvictionPolicy) -> None:
        config = self.model.config
        mode = self.positional_mode or first_policy.config.positional_mode
        self._manager = BatchedCacheManager(
            n_layers=config.n_layers,
            n_heads=config.n_heads,
            d_head=config.d_head,
            max_batch=self.scheduler.max_batch_size,
            positional_mode=mode,
            dtype=config.np_dtype,
            rope_dims=config.rope_dims if config.positional == "rope" else 0,
            page_size=self.page_size,
            max_pool_tokens=self.max_pool_tokens,
            kv_dtype=self.kv_dtype,
            admission_policy=self.admission_policy,
            tier0_pages=self.tier0_pages,
            spill_backend=self.spill_backend,
        )
        self._layer_views = self._manager.layer_views()
        if self.faults is not None:
            # Wire the page-allocation injection point straight into the
            # pools: every alloc (join, decode append, COW, verify block)
            # consults the injector before mutating pool state.
            hook = self.faults.hook("page_alloc")
            spill_hook = self.faults.hook("spill_io")
            for pool in self._manager.store.pools:
                pool.fault_hook = hook
                if hasattr(pool, "spill_hook"):
                    # Tiered pools additionally consult the injector before
                    # every spill/restore transfer (pre-mutation, so a fired
                    # fault leaves pool and arena state untouched).
                    pool.spill_hook = spill_hook

    # ------------------------------------------------------------------
    # auditing & telemetry
    # ------------------------------------------------------------------
    def check_invariants(self, strict: bool = True) -> list[str]:
        """Audit the paged store against every live page-table reference.

        Collects the page tables of all running rows, registry-pinned prefix
        chunks and live drafters (self-drafting rows hold tables in the
        engine's own store), and verifies pool refcounts, free-list
        consistency and quantization-parameter agreement via
        :meth:`BatchedCacheManager.check_invariants`.  Returns the list of
        violation descriptions; with ``strict`` (default) a non-empty list
        raises :class:`~repro.kvcache.paged.PoolIntegrityError` instead.
        """
        if self._manager is None:
            return []
        extras: list[list] | None = None
        if self._spec:
            extras = [[] for _ in range(self._manager.n_layers)]
            for drafter, _stats in self._spec.values():
                for layer, tables in enumerate(
                    drafter.live_tables(self._manager.store)
                ):
                    extras[layer].extend(tables)
        violations = self._manager.check_invariants(extras)
        if strict and violations:
            raise PoolIntegrityError(
                f"{len(violations)} pool-integrity violation(s):\n  "
                + "\n  ".join(violations)
            )
        return violations

    def fault_telemetry(self) -> dict:
        """Fault-tolerance counters (all zero when the layer is idle)."""
        return {
            "steps": self.step_count,
            "tokens_recorded": self.n_tokens_recorded,
            "faults": self.n_faults,
            "retries": self.n_retries,
            "timeouts": self.n_timeouts,
            "shed": self.n_shed,
            "preemptions": self.n_preemptions,
            "faults_fired": len(self.faults.fired) if self.faults is not None else 0,
        }


def _merge_results(results: Sequence[GenerationResult]) -> GenerationResult:
    """Fold per-request results into one ``Generator``-shaped result.

    Sequences/log-probs keep submission order.  Cache counters are summed
    across requests; per-step length traces are kept from the first request
    (per-request traces remain available on each request's own result).
    """
    if len(results) == 1:
        return results[0]
    first = results[0].cache_stats
    merged_stats = CacheStats(
        n_layers=first.n_layers,
        n_heads=first.n_heads,
        d_head=first.d_head,
        batch_size=len(results),
        prompt_len=first.prompt_len,
        lengths_per_step=[list(step) for step in first.lengths_per_step],
        total_appended=sum(r.cache_stats.total_appended for r in results),
        total_evicted=sum(r.cache_stats.total_evicted for r in results),
    )
    return GenerationResult(
        sequences=[r.sequences[0] for r in results],
        prompt_lengths=[r.prompt_lengths[0] for r in results],
        cache_stats=merged_stats,
        policy=results[0].policy,
        n_steps=max(r.n_steps for r in results),
        log_probs=[r.log_probs[0] for r in results],
    )


class BatchedGenerator:
    """``Generator``-compatible facade over the continuous-batching engine.

    Existing pipelines call ``generate(prompt_ids, config, sampler)`` and get
    a :class:`GenerationResult` back; under the hood every sequence becomes
    an independent request decoded in one continuous batch.  For a single
    sequence the result is field-for-field identical to
    :meth:`Generator.generate` at float64.

    Unlike :class:`Generator` (one policy instance, one sequence at a time),
    concurrent requests need isolated policy state — so this takes a
    ``policy_factory`` producing a fresh policy per request.
    """

    def __init__(
        self,
        model: DecoderLM,
        policy_factory: Callable[[], EvictionPolicy] | None = None,
        positional_mode: str | None = None,
        max_batch_size: int = 8,
        max_total_tokens: int | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        max_pool_tokens: int | None = None,
        max_pool_bytes: int | None = None,
        kv_dtype: str | None = None,
        enable_prefix_sharing: bool = True,
        admission_policy: str = "lru",
        tier0_budget: int | None = None,
        spill_backend: str | None = None,
        speculation: SpeculationConfig | None = None,
    ):
        self.model = model
        self.policy_factory = policy_factory or FullAttentionPolicy
        self.positional_mode = positional_mode
        self.max_batch_size = max_batch_size
        self.max_total_tokens = max_total_tokens
        self.page_size = page_size
        self.max_pool_tokens = max_pool_tokens
        self.max_pool_bytes = max_pool_bytes
        self.kv_dtype = kv_dtype
        self.enable_prefix_sharing = enable_prefix_sharing
        self.admission_policy = admission_policy
        self.tier0_budget = tier0_budget
        self.spill_backend = spill_backend
        self.speculation = speculation

    def _engine(self) -> ContinuousBatchingEngine:
        return ContinuousBatchingEngine(
            self.model,
            policy_factory=self.policy_factory,
            positional_mode=self.positional_mode,
            max_batch_size=self.max_batch_size,
            max_total_tokens=self.max_total_tokens,
            page_size=self.page_size,
            max_pool_tokens=self.max_pool_tokens,
            max_pool_bytes=self.max_pool_bytes,
            kv_dtype=self.kv_dtype,
            enable_prefix_sharing=self.enable_prefix_sharing,
            admission_policy=self.admission_policy,
            tier0_budget=self.tier0_budget,
            spill_backend=self.spill_backend,
            speculation=self.speculation,
        )

    # ------------------------------------------------------------------
    def generate(
        self,
        prompt_ids,
        config: GenerationConfig | None = None,
        sampler: Sampler | None = None,
    ) -> GenerationResult:
        """Drop-in ``Generator.generate``: 1-D prompt → one request; a 2-D
        prompt batch → one request per row, decoded together.

        An explicitly passed ``sampler`` is shared by every row — fine for
        the (stateless) greedy sampler; stochastic multi-row workloads should
        omit it so each request gets its own seeded sampler.
        """
        prompts = Generator._as_batch(prompt_ids)
        if prompts.shape[0] == 0:
            raise ValueError("prompt batch must contain at least one sequence")
        results = self.generate_batch(list(prompts), config, sampler=sampler)
        return _merge_results(results)

    def generate_batch(
        self,
        prompts: Sequence,
        config: GenerationConfig | Sequence[GenerationConfig] | None = None,
        sampler: Sampler | None = None,
    ) -> list[GenerationResult]:
        """Generate for many prompts as one continuous batch.

        ``config`` may be one shared :class:`GenerationConfig` or one per
        prompt.  Results come back in submission order.
        """
        if len(prompts) == 0:
            return []
        if config is None or isinstance(config, GenerationConfig):
            configs = [config] * len(prompts)
        else:
            configs = list(config)
            if len(configs) != len(prompts):
                raise ValueError(
                    f"got {len(configs)} configs for {len(prompts)} prompts"
                )
        engine = self._engine()
        states = [
            engine.submit(prompt, cfg, sampler=sampler)
            for prompt, cfg in zip(prompts, configs)
        ]
        engine.run()
        return [state.result() for state in states]
