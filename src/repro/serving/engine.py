"""Continuous-batching serving engine over the batched slab KV-cache.

The engine runs many generation requests concurrently by executing **one
batched forward pass per decoding step** over a ragged batch of sequences,
admitting queued requests and retiring finished ones *between* steps — the
standard continuous-batching (in-flight batching) discipline of modern LLM
serving systems, built here on the repo's NumPy substrate.

Execution model
---------------
* **Prefill** — an admitted request's prompt runs through the ordinary
  full-sequence forward pass (identical to ``Generator._prompt_forward``),
  its KV tensors join a row of the shared :class:`BatchedCacheManager`, and
  its eviction policy performs the prompt-phase reduction.
* **Decode** — every engine step advances all running requests by one token
  through :meth:`DecoderLM.decode_step_batch`: dense layers run batched over
  the ``(R, d_model)`` hidden rows while attention is ragged (each sequence
  attends over its own cache row, padded to the batch maximum).
* **Scheduling** — a :class:`FCFSScheduler` admits requests under a
  batch-size and a total-token budget; retirement frees the row (and its
  budget) for the next queued request.

Bit-exactness invariant
-----------------------
At float64 every request's output — token sequence, log-probabilities and
cache statistics — is **bit-identical** to running that request alone through
``Generator.generate``.  This holds because every shared computation is
row-independent (embeddings, layer norms, activations, softmax over exact
lengths, per-row BLAS projections) and all cross-request state (eviction
policies, score accumulators, sampler RNGs, KV rows) is kept per request.
Consequently batch composition, admission order and retirement timing can
never change what any request generates — the scheduler only affects *when*.
At float32 the engine switches to fully batched BLAS projections and masked
padded attention (the documented inference tolerance mode) for throughput.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.policies import EvictionPolicy, FullAttentionPolicy
from repro.generation.generator import GenerationResult, Generator
from repro.generation.sampler import Sampler, make_sampler, sample_rows
from repro.kvcache.batch import BatchedCacheManager
from repro.kvcache.stats import CacheStats
from repro.models.config import GenerationConfig
from repro.models.tensor_ops import log_softmax
from repro.models.transformer import DecoderLM
from repro.serving.request import FinishReason, Request, RequestState, RequestStatus
from repro.serving.scheduler import FCFSScheduler

__all__ = ["ContinuousBatchingEngine", "BatchedGenerator"]


class ContinuousBatchingEngine:
    """Schedules and executes a stream of generation requests as one batch.

    Parameters
    ----------
    model:
        The decoder LM shared by all requests.
    policy_factory:
        Zero-argument callable producing a fresh :class:`EvictionPolicy` for
        each request (per-request instances keep policy state isolated).
        Defaults to full attention.
    positional_mode:
        ``"original"`` or ``"new"``; defaults to the mode declared by the
        first admitted request's policy.  All requests in one engine must
        agree — the batched attention step applies one mode.
    scheduler:
        Admission scheduler; defaults to an :class:`FCFSScheduler` built from
        ``max_batch_size``/``max_total_tokens``.
    """

    def __init__(
        self,
        model: DecoderLM,
        policy_factory: Callable[[], EvictionPolicy] | None = None,
        positional_mode: str | None = None,
        scheduler: FCFSScheduler | None = None,
        max_batch_size: int = 8,
        max_total_tokens: int | None = None,
    ):
        self.model = model
        self.policy_factory = policy_factory or FullAttentionPolicy
        self.positional_mode = positional_mode
        self.scheduler = scheduler or FCFSScheduler(max_batch_size, max_total_tokens)
        self._manager: BatchedCacheManager | None = None
        self._layer_views: list | None = None
        #: Running requests, index == KV-cache row (persistent batch).
        self._states: list[RequestState] = []
        #: Latest logits, one row per running request (aligned with _states).
        self._next_logits: np.ndarray | None = None
        self._finished: list[RequestState] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        prompt_ids,
        config: GenerationConfig | None = None,
        sampler: Sampler | None = None,
        policy: EvictionPolicy | None = None,
    ) -> RequestState:
        """Queue one request; returns its state handle (results after finish)."""
        config = config or GenerationConfig()
        request = Request.from_config(self._next_id, prompt_ids, config)
        self._next_id += 1
        state = RequestState(
            request=request,
            sampler=sampler
            or make_sampler(config.temperature, config.top_k, config.seed),
            policy=policy or self.policy_factory(),
        )
        self.scheduler.submit(state)
        return state

    @property
    def n_running(self) -> int:
        return len(self._states)

    @property
    def n_queued(self) -> int:
        return len(self.scheduler)

    @property
    def has_work(self) -> bool:
        return bool(self._states) or bool(len(self.scheduler))

    # ------------------------------------------------------------------
    # engine loop
    # ------------------------------------------------------------------
    def step(self) -> list[RequestState]:
        """Advance the batch by one decoding step.

        Order of operations (the continuous-batching contract): record the
        previous step's sampled tokens and retire finished requests, admit
        queued requests into the freed capacity (prefill + first token),
        then run one batched decode step for everything still running.
        Returns the requests that finished during this step.
        """
        n_done = len(self._finished)
        self._record_rows(range(len(self._states)))
        tokens_in_flight = sum(st.request.token_budget for st in self._states)
        admitted = self.scheduler.admit(len(self._states), tokens_in_flight)
        for state in admitted:
            self._prefill(state)
        if admitted:
            first_new = len(self._states) - len(admitted)
            self._record_rows(range(first_new, len(self._states)))
        self._decode()
        return self._finished[n_done:]

    def run(self) -> list[RequestState]:
        """Run until the queue and the batch are both empty; returns all
        requests finished during this call, in completion order."""
        n_done = len(self._finished)
        while self.has_work:
            self.step()
        return self._finished[n_done:]

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def _prefill(self, state: RequestState) -> None:
        """Prompt phase for one admitted request (identical math to
        ``Generator._prompt_forward``) + row join + first-token sampling."""
        logits = self.model.forward(state.request.prompt_ids, store_attention=True)
        prompt_kv, prompt_attn, prompt_scores = [], [], []
        for block in self.model.blocks:
            if block.attn.last_kv is None or block.attn.last_scores is None:
                raise RuntimeError("prompt forward did not store attention tensors")
            prompt_kv.append(block.attn.last_kv)
            prompt_attn.append(block.attn.last_attention)
            prompt_scores.append(block.attn.last_scores)

        if self._manager is None:
            self._build_manager(state.policy)
        mode = self.positional_mode or state.policy.config.positional_mode
        if mode != self._manager.positional_mode:
            raise ValueError(
                f"request {state.request_id} uses positional mode {mode!r} but the "
                f"batch runs in {self._manager.positional_mode!r} — one engine "
                "serves one positional mode"
            )
        row = self._manager.join(
            prompt_kv,
            prompt_attn,
            prompt_scores,
            state.request.max_new_tokens,
            state.policy,
        )
        assert row == len(self._states), "engine rows out of sync with cache rows"

        next_row = logits[:, -1, :]
        if self._next_logits is None or not self._states:
            self._next_logits = next_row
        else:
            self._next_logits = np.concatenate([self._next_logits, next_row])
        self._states.append(state)
        state.status = RequestStatus.RUNNING
        state.pending_token = int(state.sampler(next_row)[0])

    def _record_rows(self, rows) -> None:
        """Record each row's pending token (the previous sample), accumulate
        its log-probability, and retire rows that hit EOS or the budget."""
        rows = list(rows)
        if not rows:
            return
        if len(rows) == len(self._states):
            row_logits = self._next_logits
        else:
            row_logits = self._next_logits[np.asarray(rows)]
        logprobs = log_softmax(row_logits, axis=-1)
        finishing: list[tuple[int, FinishReason]] = []
        for i, row in enumerate(rows):
            state = self._states[row]
            token = state.pending_token
            state.total_logprob += float(logprobs[i, token])
            state.tokens.append(token)
            eos = state.request.eos_token_id
            if eos is not None and token == eos:
                finishing.append((row, FinishReason.EOS))
            elif state.step == state.request.max_new_tokens - 1:
                finishing.append((row, FinishReason.LENGTH))
            else:
                state.step += 1
        # Retire from the highest row down so persistent-batch moves (last row
        # into the freed slot) never disturb a lower row still to be retired.
        for row, reason in sorted(finishing, reverse=True):
            self._retire(row, reason)

    def _retire(self, row: int, reason: FinishReason) -> None:
        state = self._states[row]
        state.finish_reason = reason
        state.status = RequestStatus.FINISHED
        state.pending_token = None
        state.n_steps = self._manager.generation_step[row]
        state.cache_stats = self._manager.retire(row)
        last = len(self._states) - 1
        if row != last:
            self._states[row] = self._states[last]
            self._next_logits[row] = self._next_logits[last]
        self._states.pop()
        self._next_logits = self._next_logits[:last]
        self._finished.append(state)

    def _decode(self) -> None:
        """One batched decode step + per-request sampling of the next token."""
        if not self._states:
            return
        tokens = np.asarray([st.pending_token for st in self._states], dtype=np.int64)
        positions = self._manager.query_positions()
        self._next_logits = self.model.decode_step_batch(
            tokens, positions, self._layer_views
        )
        self._manager.advance()
        sampled = sample_rows([st.sampler for st in self._states], self._next_logits)
        for row, state in enumerate(self._states):
            state.pending_token = int(sampled[row])

    def _build_manager(self, first_policy: EvictionPolicy) -> None:
        config = self.model.config
        mode = self.positional_mode or first_policy.config.positional_mode
        self._manager = BatchedCacheManager(
            n_layers=config.n_layers,
            n_heads=config.n_heads,
            d_head=config.d_head,
            max_batch=self.scheduler.max_batch_size,
            positional_mode=mode,
            dtype=config.np_dtype,
            rope_dims=config.rope_dims if config.positional == "rope" else 0,
        )
        self._layer_views = self._manager.layer_views()


def _merge_results(results: Sequence[GenerationResult]) -> GenerationResult:
    """Fold per-request results into one ``Generator``-shaped result.

    Sequences/log-probs keep submission order.  Cache counters are summed
    across requests; per-step length traces are kept from the first request
    (per-request traces remain available on each request's own result).
    """
    if len(results) == 1:
        return results[0]
    first = results[0].cache_stats
    merged_stats = CacheStats(
        n_layers=first.n_layers,
        n_heads=first.n_heads,
        d_head=first.d_head,
        batch_size=len(results),
        prompt_len=first.prompt_len,
        lengths_per_step=[list(step) for step in first.lengths_per_step],
        total_appended=sum(r.cache_stats.total_appended for r in results),
        total_evicted=sum(r.cache_stats.total_evicted for r in results),
    )
    return GenerationResult(
        sequences=[r.sequences[0] for r in results],
        prompt_lengths=[r.prompt_lengths[0] for r in results],
        cache_stats=merged_stats,
        policy=results[0].policy,
        n_steps=max(r.n_steps for r in results),
        log_probs=[r.log_probs[0] for r in results],
    )


class BatchedGenerator:
    """``Generator``-compatible facade over the continuous-batching engine.

    Existing pipelines call ``generate(prompt_ids, config, sampler)`` and get
    a :class:`GenerationResult` back; under the hood every sequence becomes
    an independent request decoded in one continuous batch.  For a single
    sequence the result is field-for-field identical to
    :meth:`Generator.generate` at float64.

    Unlike :class:`Generator` (one policy instance, one sequence at a time),
    concurrent requests need isolated policy state — so this takes a
    ``policy_factory`` producing a fresh policy per request.
    """

    def __init__(
        self,
        model: DecoderLM,
        policy_factory: Callable[[], EvictionPolicy] | None = None,
        positional_mode: str | None = None,
        max_batch_size: int = 8,
        max_total_tokens: int | None = None,
    ):
        self.model = model
        self.policy_factory = policy_factory or FullAttentionPolicy
        self.positional_mode = positional_mode
        self.max_batch_size = max_batch_size
        self.max_total_tokens = max_total_tokens

    def _engine(self) -> ContinuousBatchingEngine:
        return ContinuousBatchingEngine(
            self.model,
            policy_factory=self.policy_factory,
            positional_mode=self.positional_mode,
            max_batch_size=self.max_batch_size,
            max_total_tokens=self.max_total_tokens,
        )

    # ------------------------------------------------------------------
    def generate(
        self,
        prompt_ids,
        config: GenerationConfig | None = None,
        sampler: Sampler | None = None,
    ) -> GenerationResult:
        """Drop-in ``Generator.generate``: 1-D prompt → one request; a 2-D
        prompt batch → one request per row, decoded together.

        An explicitly passed ``sampler`` is shared by every row — fine for
        the (stateless) greedy sampler; stochastic multi-row workloads should
        omit it so each request gets its own seeded sampler.
        """
        prompts = Generator._as_batch(prompt_ids)
        if prompts.shape[0] == 0:
            raise ValueError("prompt batch must contain at least one sequence")
        results = self.generate_batch(list(prompts), config, sampler=sampler)
        return _merge_results(results)

    def generate_batch(
        self,
        prompts: Sequence,
        config: GenerationConfig | Sequence[GenerationConfig] | None = None,
        sampler: Sampler | None = None,
    ) -> list[GenerationResult]:
        """Generate for many prompts as one continuous batch.

        ``config`` may be one shared :class:`GenerationConfig` or one per
        prompt.  Results come back in submission order.
        """
        if len(prompts) == 0:
            return []
        if config is None or isinstance(config, GenerationConfig):
            configs = [config] * len(prompts)
        else:
            configs = list(config)
            if len(configs) != len(prompts):
                raise ValueError(
                    f"got {len(configs)} configs for {len(prompts)} prompts"
                )
        engine = self._engine()
        states = [
            engine.submit(prompt, cfg, sampler=sampler)
            for prompt, cfg in zip(prompts, configs)
        ]
        engine.run()
        return [state.result() for state in states]
