"""Deterministic fault injection and liveness watchdogs for the serving engine.

Fault tolerance is only trustworthy if its failure paths are *exercised*, and
failure paths are only debuggable if every chaos run is replayable.  This
module provides the two pieces the engine's robustness layer is built on:

:class:`FaultInjector`
    A seeded, deterministic fault source with named **injection points**
    (:data:`INJECTION_POINTS`): page allocation inside the block pools,
    the prefill and batched-decode steps, the speculative verify pass, the
    drafter round and the tiered pools' spill/restore transfers
    (``spill_io``).  Whether occurrence ``i`` of point ``p`` fires is a
    pure function of ``(seed, p, i)`` — independent of draw order across
    points — so the same workload with the same injector seed faults at
    exactly the same places, every time.  A completed run's
    :meth:`~FaultInjector.fired_schedule` can replay the identical fault
    pattern through an explicit schedule, even at a different rate.

:class:`EngineWatchdog`
    A liveness monitor the engine feeds once per step.  It detects the two
    ways a fault-tolerant engine can silently stop serving: **no-progress
    livelock** (steps pass, no tokens are recorded and nothing finishes —
    e.g. an admission/retry cycle that never converges) and **preemption
    thrash** (the pool is so tight that rows are endlessly preempted and
    re-prefilled without net progress).  Both raise :class:`LivelockError`.

Injected faults raise :class:`InjectedFault`, a ``RuntimeError`` carrying the
injection point, the occurrence index and (when known) the request id — the
engine's quarantine logic uses these to attribute a mid-batch failure to the
one row that caused it.  See ``docs/robustness.md`` for the full fault model.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "INJECTION_POINTS",
    "InjectedFault",
    "FaultInjector",
    "EngineWatchdog",
    "LivelockError",
]

#: Injection points of the serving stack, in engine-flow order: page
#: allocation (fires inside ``BlockPool.alloc`` — prefill joins, decode
#: appends, copy-on-write, drafter growth), the per-request prefill step, the
#: per-row batched decode step, the speculative verify pass, the drafter
#: round, and spill/restore transfers of the tiered KV-offload pools
#: (``spill_io`` fires inside ``_TieredMixin._spill_page`` /
#: ``_restore_page`` **before** any state mutates, so an injected transfer
#: fault leaves pool and arena unchanged).  ``spill_io`` is appended last:
#: :meth:`FaultInjector.should_fire` keys its RNG on each point's index in
#: this tuple, so appending preserves every existing chaos schedule.
INJECTION_POINTS = ("page_alloc", "prefill", "decode", "verify", "draft", "spill_io")


class InjectedFault(RuntimeError):
    """A deliberately injected fault (see :class:`FaultInjector`).

    Attributes
    ----------
    point:
        Injection point name (one of :data:`INJECTION_POINTS`).
    occurrence:
        Zero-based index of this check among all checks of ``point``.
    request_id:
        The request the faulting check was attributed to, when the caller
        knew it (engine-level checks); ``None`` for pool-level faults, which
        the engine attributes afterwards via the ``fault_row`` annotation.
    """

    def __init__(self, point: str, occurrence: int, request_id: int | None = None):
        detail = f" (request {request_id})" if request_id is not None else ""
        super().__init__(
            f"injected fault at {point!r}, occurrence {occurrence}{detail}"
        )
        self.point = point
        self.occurrence = occurrence
        self.request_id = request_id


class FaultInjector:
    """Seeded deterministic fault source for chaos testing.

    Parameters
    ----------
    rate:
        Probability that any single check fires (ignored when ``schedule``
        is given).  The decision for occurrence ``i`` of point ``p`` is a
        pure function of ``(seed, p, i)``, so runs are replayable and the
        decision stream of one point is unaffected by how often the others
        are checked.
    seed:
        Seed of the decision function.
    points:
        Subset of :data:`INJECTION_POINTS` allowed to fire; ``None`` enables
        all.  Occurrence counters advance for *every* check regardless, so a
        schedule recorded with one subset replays identically under another.
    schedule:
        Explicit ``(point, occurrence)`` pairs that fire, overriding the
        rate-based decision entirely — the replay mechanism.
    max_faults:
        Stop firing after this many faults (``None`` = unlimited).
    """

    def __init__(
        self,
        rate: float = 0.01,
        seed: int = 0,
        points: Iterable[str] | None = None,
        schedule: Iterable[tuple[str, int]] | None = None,
        max_faults: int | None = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        for point in points or ():
            if point not in INJECTION_POINTS:
                raise ValueError(
                    f"unknown injection point {point!r}; expected one of "
                    f"{INJECTION_POINTS}"
                )
        self.rate = float(rate)
        self.seed = int(seed)
        self.points = frozenset(points) if points is not None else frozenset(INJECTION_POINTS)
        self.schedule = (
            frozenset((p, int(i)) for p, i in schedule) if schedule is not None else None
        )
        self.max_faults = max_faults
        #: Per-point check counters (how often each point was reached).
        self.counters: dict[str, int] = {p: 0 for p in INJECTION_POINTS}
        #: Faults actually fired, as ``(point, occurrence)`` in firing order.
        self.fired: list[tuple[str, int]] = []

    # ------------------------------------------------------------------
    def should_fire(self, point: str, occurrence: int) -> bool:
        """Pure decision: does occurrence ``occurrence`` of ``point`` fault?

        Stateless — safe to call ahead of time to predict (or post-hoc to
        explain) a run's fault pattern.
        """
        if self.schedule is not None:
            return (point, occurrence) in self.schedule
        if self.rate <= 0.0 or point not in self.points:
            return False
        point_index = INJECTION_POINTS.index(point)
        rng = np.random.default_rng((self.seed, point_index, occurrence))
        return bool(rng.random() < self.rate)

    def check(self, point: str, request_id: int | None = None) -> None:
        """Count one arrival at ``point``; raise :class:`InjectedFault` if it fires."""
        if point not in INJECTION_POINTS:
            raise ValueError(f"unknown injection point {point!r}")
        occurrence = self.counters[point]
        self.counters[point] = occurrence + 1
        if self.max_faults is not None and len(self.fired) >= self.max_faults:
            return
        if self.should_fire(point, occurrence):
            self.fired.append((point, occurrence))
            raise InjectedFault(point, occurrence, request_id)

    def hook(self, point: str) -> Callable[[], None]:
        """Zero-argument closure for callback-style injection sites.

        The engine installs ``hook("page_alloc")`` as every block pool's
        ``fault_hook`` — the pool calls it at the top of each allocation.
        """
        return lambda: self.check(point)

    # ------------------------------------------------------------------
    def fired_schedule(self) -> tuple[tuple[str, int], ...]:
        """The faults fired so far, as a schedule suitable for :meth:`replay`."""
        return tuple(self.fired)

    def replay(self) -> "FaultInjector":
        """A fresh injector that fires exactly the faults this one fired."""
        return FaultInjector(seed=self.seed, schedule=self.fired_schedule())


class LivelockError(RuntimeError):
    """The engine stopped making progress (see :class:`EngineWatchdog`)."""


class EngineWatchdog:
    """Detects no-progress livelock and preemption thrash in the engine loop.

    The engine calls :meth:`observe` once per :meth:`~repro.serving.engine.
    ContinuousBatchingEngine.step` with whether the step made *real* progress
    (recorded at least one token, or finished at least one request) and how
    many preemptions it performed.  A healthy engine progresses on every step
    that has work, so the default patience values are far above anything a
    legitimate schedule (including retry backoff) can produce.

    Parameters
    ----------
    no_progress_patience:
        Consecutive progress-free steps tolerated before declaring livelock.
    preemption_patience:
        Preemptions tolerated since the last progressing step before
        declaring thrash (preempt/re-prefill cycles that never commit).
    """

    def __init__(self, no_progress_patience: int = 256, preemption_patience: int = 512):
        if no_progress_patience <= 0 or preemption_patience <= 0:
            raise ValueError("watchdog patience values must be positive")
        self.no_progress_patience = no_progress_patience
        self.preemption_patience = preemption_patience
        #: Consecutive steps without progress.
        self.stalled_steps = 0
        #: Preemptions since the last progressing step.
        self.preemptions_since_progress = 0

    def observe(self, progressed: bool, preemptions: int = 0) -> None:
        """Record one engine step; raises :class:`LivelockError` on livelock."""
        if progressed:
            self.stalled_steps = 0
            self.preemptions_since_progress = 0
            return
        self.stalled_steps += 1
        self.preemptions_since_progress += int(preemptions)
        if self.stalled_steps > self.no_progress_patience:
            raise LivelockError(
                f"no-progress livelock: {self.stalled_steps} consecutive engine "
                "steps recorded no token and finished no request"
            )
        if self.preemptions_since_progress > self.preemption_patience:
            raise LivelockError(
                f"preemption thrash: {self.preemptions_since_progress} preemptions "
                "since the last progressing step"
            )

    def reset(self) -> None:
        """Clear both counters (e.g. after an intentional pause)."""
        self.stalled_steps = 0
        self.preemptions_since_progress = 0
