"""Request model for the continuous-batching serving engine.

A :class:`Request` is the immutable description of one generation job — the
prompt, the decoding budget and the sampling configuration.  The engine wraps
it in a :class:`RequestState` that tracks the mutable per-request machinery:
lifecycle status, the request's own sampler and eviction-policy instances
(per-request instances are what make batched execution bit-identical to solo
execution — policy score accumulators and sampler RNG streams never mix
between requests), generated tokens and accumulated log-probability.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.generation.generator import GenerationResult
from repro.models.config import GenerationConfig

if TYPE_CHECKING:
    from repro.core.policies import EvictionPolicy
    from repro.generation.sampler import Sampler
    from repro.kvcache.stats import CacheStats

__all__ = ["Request", "RequestState", "RequestStatus", "FinishReason"]


class RequestStatus(enum.Enum):
    """Lifecycle of a request inside the engine."""

    QUEUED = "queued"  # submitted, waiting for admission
    RUNNING = "running"  # prefilled, decoding in the batch
    FINISHED = "finished"  # retired (EOS or token budget)


class FinishReason(enum.Enum):
    """Why a request retired from the batch.

    ``EOS`` and ``LENGTH`` are the normal completions.  The rest form the
    error taxonomy of the fault-tolerance layer (``docs/robustness.md``):
    ``ABORTED`` is a client cancellation, ``ERROR`` a quarantined exception
    (message and traceback preserved on the state), ``TIMEOUT`` a missed
    step-count deadline, and ``SHED`` a request refused at admission under
    queue-depth + pool-pressure overload.
    """

    EOS = "eos"  # sampled the end-of-sequence token
    LENGTH = "length"  # reached max_new_tokens
    ABORTED = "aborted"  # cancelled by the client before finishing
    ERROR = "error"  # quarantined after an unrecovered exception in its row
    TIMEOUT = "timeout"  # exceeded its step-count deadline
    SHED = "shed"  # load-shed at submission (queue depth + pool pressure)


@dataclass(frozen=True)
class Request:
    """One generation job submitted to the serving engine."""

    request_id: int
    prompt_ids: np.ndarray  # shape (1, T), int64
    max_new_tokens: int = 32
    eos_token_id: int | None = None
    temperature: float = 1.0
    top_k: int = 0
    seed: int = 0
    #: SLO tier — higher values are more urgent.  Priority affects *when* a
    #: request is admitted (and which running request a
    #: :class:`~repro.serving.slo.PriorityScheduler` preempts under
    #: pressure), never *what* it generates: the bit-exactness contract is
    #: priority-blind.  The plain FCFS/paged schedulers ignore it.
    priority: int = 0

    @property
    def prompt_len(self) -> int:
        """Number of prompt tokens."""
        return int(self.prompt_ids.shape[1])

    @property
    def token_budget(self) -> int:
        """Worst-case sequence length — the unit of the scheduler's token budget."""
        return self.prompt_len + self.max_new_tokens

    @classmethod
    def from_config(
        cls,
        request_id: int,
        prompt_ids,
        config: GenerationConfig | None = None,
        priority: int = 0,
    ) -> "Request":
        """Build a request from a prompt and a :class:`GenerationConfig`."""
        config = config or GenerationConfig()
        prompt = np.asarray(prompt_ids, dtype=np.int64)
        if prompt.ndim == 1:
            prompt = prompt[None, :]
        if prompt.ndim != 2 or prompt.shape[0] != 1:
            raise ValueError(
                f"a request holds exactly one sequence; got prompt shape {prompt.shape}"
            )
        if prompt.shape[1] == 0:
            raise ValueError("prompt must contain at least one token")
        return cls(
            request_id=request_id,
            prompt_ids=prompt,
            max_new_tokens=config.max_new_tokens,
            eos_token_id=config.eos_token_id,
            temperature=config.temperature,
            top_k=config.top_k,
            seed=config.seed,
            priority=priority,
        )


@dataclass
class RequestState:
    """Mutable engine-side state of one request."""

    request: Request
    sampler: "Sampler"
    policy: "EvictionPolicy"
    status: RequestStatus = RequestStatus.QUEUED
    tokens: list[int] = field(default_factory=list)
    total_logprob: float = 0.0
    #: Index of the current iteration of the (replicated) generation loop.
    step: int = 0
    #: Token sampled from the latest logits, not yet recorded in ``tokens``.
    pending_token: int | None = None
    finish_reason: FinishReason | None = None
    cache_stats: "CacheStats | None" = None
    n_steps: int = 0
    #: Rebuilds a bit-identical fresh sampler after preemption (set by the
    #: engine when it constructed the sampler itself; a caller-supplied
    #: sampler instance is reused as-is and must be stateless to be safely
    #: preemptible).
    sampler_factory: "Callable[[], Sampler] | None" = None
    #: Times this request was preempted back to the queue (pages reclaimed).
    preemptions: int = 0
    #: Engine-internal admission sequence number (newest admitted is the
    #: preemption victim, preserving FCFS completion order).
    admitted_seq: int = -1
    #: Log-probability of :attr:`pending_token` (speculation mode records
    #: tokens inline instead of deferring to the next engine step).
    pending_logprob: float = 0.0
    #: Draft/verify telemetry when the engine ran this request speculatively.
    speculation: dict = field(default_factory=dict)
    #: Step-count deadline: the request times out once the engine has run
    #: this many steps since submission (``None`` = no deadline).  The clock
    #: is end-to-end — preemptions and retries do not reset it.
    deadline_steps: int | None = None
    #: Engine step counter value at submission (deadline epoch).
    submitted_step: int = 0
    #: Automatic retries consumed after quarantined transient faults.
    retries: int = 0
    #: Engine step before which the scheduler must not re-admit this request
    #: (deterministic exponential backoff between retries).
    retry_at: int = 0
    #: Message of the last quarantined exception (``FinishReason.ERROR``
    #: keeps the final one; retries overwrite it on each new fault).
    error: str | None = None
    #: Full traceback text of the last quarantined exception.
    error_traceback: str | None = None
    #: Engine step at which the first output token was *recorded* — the
    #: numerator of TTFT once the load harness maps steps to virtual time.
    #: Preemption discards generated tokens, so the stamp tracks the first
    #: token of the final (successful) run; see ``docs/workloads.md``.
    first_token_step: int | None = None
    #: Engine step at which the request finished (any :class:`FinishReason`).
    finished_step: int | None = None

    @property
    def request_id(self) -> int:
        """The wrapped request's id."""
        return self.request.request_id

    @property
    def finished(self) -> bool:
        """True once the request retired (EOS, budget or abort)."""
        return self.status is RequestStatus.FINISHED

    def _reset_generation(self) -> None:
        """Discard all generated state so the request restarts from scratch.

        The eviction policy is re-``setup`` at join and the sampler is
        rebuilt from its factory, so the rerun is bit-identical to an
        uninterrupted run — a restart can change *when* a request finishes,
        never *what* it generates.
        """
        self.tokens.clear()
        self.total_logprob = 0.0
        self.step = 0
        self.pending_token = None
        self.pending_logprob = 0.0
        self.speculation = {}
        self.status = RequestStatus.QUEUED
        self.cache_stats = None
        self.n_steps = 0
        self.admitted_seq = -1
        self.first_token_step = None
        if self.sampler_factory is not None:
            self.sampler = self.sampler_factory()

    def reset_for_requeue(self) -> None:
        """Return to the queued state after preemption."""
        self._reset_generation()
        self.preemptions += 1

    def reset_for_retry(self, retry_at: int) -> None:
        """Return to the queued state after a quarantined transient fault.

        Same restart as :meth:`reset_for_requeue` but counted as a retry
        (not a preemption), with re-admission blocked until engine step
        ``retry_at`` — the deterministic backoff window.
        """
        self._reset_generation()
        self.retries += 1
        self.retry_at = retry_at

    def result(self) -> GenerationResult:
        """The finished request's output in :class:`GenerationResult` form.

        Field-for-field identical to what ``Generator.generate`` returns for
        the same request run alone (the golden-equivalence tests pin this).
        """
        if not self.finished:
            raise RuntimeError(f"request {self.request_id} has not finished")
        return GenerationResult(
            sequences=[list(self.tokens)],
            prompt_lengths=[self.request.prompt_len],
            cache_stats=self.cache_stats,
            policy=self.policy.describe(),
            n_steps=self.n_steps,
            log_probs=[float(self.total_logprob)],
            speculation=dict(self.speculation),
        )
