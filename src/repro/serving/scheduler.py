"""Admission scheduling for the continuous-batching engine.

The scheduler decides *when* a queued request joins the running batch; the
engine decides *how* the batch executes.  Two schedulers are provided:

:class:`FCFSScheduler`
    Strict first-come-first-served admission under two static budgets:

    ``max_batch_size``
        Upper bound on concurrently decoding sequences — the width of the
        persistent batch.

    ``max_total_tokens``
        Upper bound on the sum of worst-case sequence lengths
        (``prompt_len + max_new_tokens``) across running requests.  This is
        the historical *worst-case reservation* discipline: admission never
        has to evict or preempt, but memory reserved for tokens that are
        never generated (or that an eviction policy immediately frees) is
        dead capacity.

:class:`PagedScheduler`
    Memory-aware admission against the paged KV store's **actual free
    pages**.  A request is admitted when its prompt pages fit the tightest
    layer pool with a watermark of headroom to spare (counting pages the
    prefix registry could reclaim); growth during decoding is paid for by
    preempting the newest running request back to the queue when the pool
    runs dry (the engine drives that part).  Because an eviction policy that
    holds a 128-token budget only ever occupies 128 tokens of pages, paged
    admission packs far more concurrent requests into the same memory than
    the worst-case token budget allows.

Admission is head-of-line blocking by design in both: if the oldest queued
request does not fit, nothing behind it is admitted either.  Skipping ahead
would improve utilization slightly but makes admission latency unpredictable
under load; and because batched execution is bit-exact per sequence,
admission order (and preemption) affects *when* a request finishes, never
*what* it generates (the property tests pin this invariant).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.serving.request import RequestState

if TYPE_CHECKING:
    from repro.kvcache.paged import PagedKVStore, PrefixRegistry

__all__ = ["FCFSScheduler", "PagedScheduler"]


class FCFSScheduler:
    """Strict first-come-first-served admission with batch and token budgets.

    ``prefill_chunk_tokens`` is the scheduler's **chunked-prefill budget**:
    when set, the engine splits any prompt longer than the budget into chunks
    of at most this many tokens and runs *one chunk per engine step* instead
    of prefilling the whole prompt in a single step — running decode rows
    (and other admissions) interleave between chunks, which is what caps the
    tail latency a long prompt can inflict on its neighbours.  It lives on
    the scheduler because it is an admission-shaping knob: it trades one
    request's time-to-first-token for everyone else's step-time bound.
    ``None`` (default) disables chunking; the floor is 2 tokens (the
    bit-stability floor of the chunked projections).
    """

    def __init__(
        self,
        max_batch_size: int = 8,
        max_total_tokens: int | None = None,
        prefill_chunk_tokens: int | None = None,
    ):
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_total_tokens is not None and max_total_tokens <= 0:
            raise ValueError("max_total_tokens must be positive (or None)")
        if prefill_chunk_tokens is not None and prefill_chunk_tokens < 2:
            raise ValueError("prefill_chunk_tokens must be >= 2 (or None)")
        self.max_batch_size = max_batch_size
        self.max_total_tokens = max_total_tokens
        self.prefill_chunk_tokens = prefill_chunk_tokens
        self._queue: deque[RequestState] = deque()

    # ------------------------------------------------------------------
    def submit(self, state: RequestState) -> None:
        """Queue a request for admission.

        Raises if the request can never fit the token budget — admitting it
        would deadlock the queue behind it.
        """
        cost = state.request.token_budget
        if self.max_total_tokens is not None and cost > self.max_total_tokens:
            raise ValueError(
                f"request {state.request_id} needs {cost} tokens, exceeding the "
                f"engine's max_total_tokens budget of {self.max_total_tokens}"
            )
        self._enqueue(state)

    def _enqueue(self, state: RequestState) -> None:
        """Insert a validated new submission (FCFS: append in arrival order).

        Subclasses override this (and :meth:`requeue`) to keep the queue in a
        different admission order — see
        :class:`~repro.serving.slo.PriorityScheduler`.
        """
        self._queue.append(state)

    def requeue(self, state: RequestState) -> None:
        """Put a preempted request back into the queue, in arrival order.

        The queue is kept sorted by ``request_id`` (ids are monotonic at
        submission), so a requeued request slots in ahead of every younger
        entry but *behind* any older one — FCFS completion semantics survive
        interleaved preemption and failed-admission requeues.  A plain
        ``appendleft`` inverted priority when a preemption victim (old) and a
        request whose prefill failed (young) were requeued in the same step.
        """
        at = 0
        for queued in self._queue:
            if queued.request_id < state.request_id:
                at += 1
            else:
                break
        self._queue.insert(at, state)

    def requeue_many(self, states: list[RequestState]) -> None:
        """Requeue several requests, preserving arrival order (see
        :meth:`requeue`)."""
        for state in states:
            self.requeue(state)

    def cancel(self, request_id: int) -> RequestState | None:
        """Remove a queued request; returns its state (or ``None`` if absent)."""
        for state in self._queue:
            if state.request_id == request_id:
                self._queue.remove(state)
                return state
        return None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def pending(self) -> tuple[RequestState, ...]:
        """Queued requests in admission order (read-only snapshot)."""
        return tuple(self._queue)

    # ------------------------------------------------------------------
    def _fits(self, state: RequestState, tokens_in_flight: int) -> bool:
        cost = state.request.token_budget
        return (
            self.max_total_tokens is None
            or tokens_in_flight + cost <= self.max_total_tokens
        )

    def admit(
        self,
        n_running: int,
        tokens_in_flight: int,
        store: "PagedKVStore | None" = None,
        registry: "PrefixRegistry | None" = None,
        now_step: int = 0,
        reserved_pages: int = 0,
    ) -> list[RequestState]:
        """Pop every queued request that fits the current budgets, in order.

        Parameters
        ----------
        n_running:
            Number of sequences currently decoding in the batch — the engine
            also counts an in-flight chunked prefill here, so its eventual
            row cannot be double-booked.
        tokens_in_flight:
            Sum of ``token_budget`` over those sequences.
        store, registry:
            Accepted (and ignored) so the engine can drive either scheduler
            through one call signature; :class:`PagedScheduler` uses them.
        now_step:
            The engine's current step counter; a head request still inside
            its retry-backoff window (``retry_at > now_step``) blocks the
            line until the window elapses (head-of-line blocking, like every
            other admission rule).
        reserved_pages:
            Pages already promised to work that has not allocated them yet —
            an in-flight chunked prefill's prompt, or earlier admissions in
            this engine step.  Token-budget admission ignores it
            (``tokens_in_flight`` already carries the reservation);
            :class:`PagedScheduler` subtracts it from the free-page count.
        """
        admitted: list[RequestState] = []
        while self._queue:
            head = self._queue[0]
            if n_running + len(admitted) >= self.max_batch_size:
                break
            if head.retry_at > now_step:
                break
            if not self._fits(head, tokens_in_flight):
                break
            admitted.append(self._queue.popleft())
            tokens_in_flight += head.request.token_budget
        return admitted


class PagedScheduler(FCFSScheduler):
    """FCFS admission against the paged store's actual free pages.

    Parameters
    ----------
    watermark:
        Fraction of each layer pool kept free at admission time (default
        10%).  The watermark is the buffer that running sequences grow into;
        a larger value admits less aggressively but preempts less often.
    max_total_tokens:
        Optional worst-case token budget kept as a *secondary* cap (useful
        for latency SLOs); ``None`` disables it and admission is purely
        memory-aware.
    """

    def __init__(
        self,
        max_batch_size: int = 8,
        max_total_tokens: int | None = None,
        watermark: float = 0.1,
        prefill_chunk_tokens: int | None = None,
    ):
        super().__init__(
            max_batch_size, max_total_tokens, prefill_chunk_tokens=prefill_chunk_tokens
        )
        if not 0.0 <= watermark < 1.0:
            raise ValueError("watermark must be in [0, 1)")
        self.watermark = watermark

    def admit(
        self,
        n_running: int,
        tokens_in_flight: int,
        store: "PagedKVStore | None" = None,
        registry: "PrefixRegistry | None" = None,
        now_step: int = 0,
        reserved_pages: int = 0,
    ) -> list[RequestState]:
        """Pop queued requests whose prompt pages fit the tightest layer
        pool above the watermark (see the class docstring); falls back to
        the token-budget rule while the store is still growable.

        ``reserved_pages`` counts pages promised but not yet allocated (an
        in-flight chunked prefill joins only after its last chunk), so
        admission cannot spend the same free pages twice."""
        admitted: list[RequestState] = []
        # Pages already claimed by the caller's reservation (e.g. an
        # in-flight chunked prefill) plus earlier admissions this call.
        reserved = reserved_pages
        while self._queue:
            head = self._queue[0]
            if n_running + len(admitted) >= self.max_batch_size:
                break
            if head.retry_at > now_step:
                break
            if not self._fits(head, tokens_in_flight):
                break
            if store is not None:
                tier0 = store.tier0_frames()
                if tier0 is not None:
                    # Tiered offload: admission is capped by tier-0 *frames*,
                    # not logical pages — every running row needs at least
                    # its append page resident each decode step, so bound
                    # the row count by the frame budget (with watermark
                    # headroom).  Applies even to growable stores: growth
                    # buys spillable capacity, never residency.
                    frame_headroom = max(int(self.watermark * tier0), 1)
                    if n_running + len(admitted) + 1 + frame_headroom > tier0:
                        break
            if store is not None and not store.growable:
                # Admit against actual free pages in the tightest layer pool:
                # the prompt (plus one decode slot) must fit above the
                # watermark, counting pages the prefix registry could free.
                needed = store.pages_for_tokens(head.request.prompt_len + 1)
                reclaimable = registry.reclaimable_pages() if registry is not None else 0
                per_pool = min(
                    pool.free_pages + min(reclaimable, pool.n_pages)
                    for pool in store.pools
                )
                headroom = max(int(self.watermark * store.pools[0].n_pages), 1)
                if reserved + needed + headroom > per_pool:
                    break
                reserved += needed
            admitted.append(self._queue.popleft())
            tokens_in_flight += head.request.token_budget
        return admitted
