"""Admission scheduling for the continuous-batching engine.

The scheduler decides *when* a queued request joins the running batch; the
engine decides *how* the batch executes.  :class:`FCFSScheduler` implements
strict first-come-first-served admission under two budgets:

``max_batch_size``
    Upper bound on concurrently decoding sequences — the width of the
    persistent batch (and of the KV slabs backing it).

``max_total_tokens``
    Upper bound on the sum of worst-case sequence lengths
    (``prompt_len + max_new_tokens``) across running requests.  This caps the
    KV-cache memory the batch can ever need, so admission never has to evict
    or preempt a running request mid-flight.

Admission is head-of-line blocking by design: if the oldest queued request
does not fit, nothing behind it is admitted either.  Skipping ahead would
improve utilization slightly but makes admission latency unpredictable under
load; and because batched execution is bit-exact per sequence, admission
order affects *when* a request finishes, never *what* it generates (the
property tests pin this invariant).
"""

from __future__ import annotations

from collections import deque

from repro.serving.request import RequestState

__all__ = ["FCFSScheduler"]


class FCFSScheduler:
    """Strict first-come-first-served admission with batch and token budgets."""

    def __init__(self, max_batch_size: int = 8, max_total_tokens: int | None = None):
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_total_tokens is not None and max_total_tokens <= 0:
            raise ValueError("max_total_tokens must be positive (or None)")
        self.max_batch_size = max_batch_size
        self.max_total_tokens = max_total_tokens
        self._queue: deque[RequestState] = deque()

    # ------------------------------------------------------------------
    def submit(self, state: RequestState) -> None:
        """Queue a request for admission.

        Raises if the request can never fit the token budget — admitting it
        would deadlock the queue behind it.
        """
        cost = state.request.token_budget
        if self.max_total_tokens is not None and cost > self.max_total_tokens:
            raise ValueError(
                f"request {state.request_id} needs {cost} tokens, exceeding the "
                f"engine's max_total_tokens budget of {self.max_total_tokens}"
            )
        self._queue.append(state)

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def pending(self) -> tuple[RequestState, ...]:
        """Queued requests in admission order (read-only snapshot)."""
        return tuple(self._queue)

    # ------------------------------------------------------------------
    def admit(self, n_running: int, tokens_in_flight: int) -> list[RequestState]:
        """Pop every queued request that fits the current budgets, in order.

        Parameters
        ----------
        n_running:
            Number of sequences currently decoding in the batch.
        tokens_in_flight:
            Sum of ``token_budget`` over those sequences.
        """
        admitted: list[RequestState] = []
        while self._queue:
            head = self._queue[0]
            if n_running + len(admitted) >= self.max_batch_size:
                break
            cost = head.request.token_budget
            if (
                self.max_total_tokens is not None
                and tokens_in_flight + cost > self.max_total_tokens
            ):
                break
            admitted.append(self._queue.popleft())
            tokens_in_flight += cost
        return admitted
