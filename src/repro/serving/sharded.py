"""Multi-replica sharded serving with a prefix-affinity router.

One :class:`~repro.serving.engine.ContinuousBatchingEngine` is a single
synchronous loop — its throughput is capped by one process no matter how
much hardware sits underneath.  This module spreads requests across ``N``
engine **replicas**, each running in its own ``multiprocessing`` worker with
its own model weights and BlockPools, behind a :class:`ShardedEngine`
front-end that preserves every correctness contract of the solo engine:

Routing — :class:`PrefixAffinityRouter`
    Spreading shared-prefix traffic uniformly over ``N`` replicas dilutes
    the :class:`~repro.kvcache.paged.PrefixRegistry` hit rate ``N`` ways
    (every replica pays its own cold prefill of the same prefix).  The
    router instead computes a **process-stable digest** of the prompt's
    leading page-aligned chunks — the same chained
    :func:`~repro.kvcache.paged.chunk_digest` the registry keys chunks by —
    and picks a replica by rendezvous (highest-random-weight) hashing, so
    same-prefix requests concentrate on the replica that already holds the
    prefix.  Prompts shorter than one page (no full chunk) and affinity
    targets that are overloaded fall back to the least-loaded replica.

Worker protocol
    Each worker owns one engine and speaks a small message protocol over a
    pipe: ``submit`` (queue a request, returns the replica-local id),
    ``step`` (advance one batch step; the reply streams **incremental token
    deltas** for running requests and retirement payloads — tokens, f64
    log-probs, finish reason, cache stats — for finished ones), ``abort``,
    ``stats`` and ``shutdown``.  An ``inline`` backend runs the identical
    server code in-process for deterministic tests and virtual-time replay.

Bit-exactness contract
    Routing may change *scheduling*, never *output*: every request's tokens
    and float64 log-probs are identical to running that request on a solo
    engine, because each replica is a full engine whose batching is already
    bit-exact and the router only decides which engine a request joins.
    Replica death re-routes its in-flight requests to surviving replicas,
    where the deterministic restart machinery (the same contract preemption
    relies on) reproduces their outputs bit-exactly.

See ``docs/sharding.md`` for the affinity contract, telemetry aggregation
and reproduction commands.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from repro.core.registry import make_policy
from repro.generation.generator import GenerationResult
from repro.kvcache.admission import ADMISSION_POLICIES
from repro.kvcache.paged import DEFAULT_PAGE_SIZE, chunk_digest
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import ContinuousBatchingEngine
from repro.serving.request import FinishReason, Request, RequestStatus
from repro.serving.scheduler import PagedScheduler
from repro.serving.slo import PriorityScheduler

if TYPE_CHECKING:
    from repro.perfmodel.serving import StepCostModel
    from repro.serving.request import RequestState

__all__ = [
    "ReplicaSpec",
    "ReplicaDead",
    "PrefixAffinityRouter",
    "ShardedRequest",
    "ShardedEngine",
]


class ReplicaDead(RuntimeError):
    """A replica worker died (pipe closed or process gone)."""


@dataclass(frozen=True)
class ReplicaSpec:
    """Picklable recipe for one engine replica.

    Every worker rebuilds its model and engine from this spec — seeded
    weights (:class:`~repro.models.transformer.DecoderLM` is deterministic
    in ``(config, seed)``) and a policy *name* resolved through
    :func:`~repro.core.registry.make_policy` — so all replicas are
    bit-identical engines and any replica can reproduce any request's
    output.  That is what makes re-routing after a replica death safe.
    """

    model_config: ModelConfig
    model_seed: int = 0
    policy: str = "full"
    policy_kwargs: Mapping = field(default_factory=dict)
    scheduler: str = "paged"
    max_batch_size: int = 8
    max_total_tokens: int | None = None
    prefill_chunk_tokens: int | None = None
    page_size: int = DEFAULT_PAGE_SIZE
    max_pool_tokens: int | None = None
    max_pool_bytes: int | None = None
    kv_dtype: str | None = None
    enable_prefix_sharing: bool = True
    admission_policy: str = "lru"
    max_retries: int = 0
    deadline_steps: int | None = None

    def __post_init__(self):
        if self.scheduler not in ("paged", "priority"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.admission_policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission_policy {self.admission_policy!r}; "
                f"expected one of {ADMISSION_POLICIES}"
            )

    def build_engine(self) -> ContinuousBatchingEngine:
        """Construct the replica's engine (called inside the worker)."""
        model = DecoderLM(self.model_config, seed=self.model_seed)
        sched_cls = PriorityScheduler if self.scheduler == "priority" else PagedScheduler
        scheduler = sched_cls(
            max_batch_size=self.max_batch_size,
            max_total_tokens=self.max_total_tokens,
            prefill_chunk_tokens=self.prefill_chunk_tokens,
        )
        kwargs = dict(self.policy_kwargs)
        return ContinuousBatchingEngine(
            model,
            policy_factory=lambda: make_policy(self.policy, **kwargs),
            scheduler=scheduler,
            page_size=self.page_size,
            max_pool_tokens=self.max_pool_tokens,
            max_pool_bytes=self.max_pool_bytes,
            kv_dtype=self.kv_dtype,
            enable_prefix_sharing=self.enable_prefix_sharing,
            admission_policy=self.admission_policy,
            max_retries=self.max_retries,
            deadline_steps=self.deadline_steps,
        )


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
class PrefixAffinityRouter:
    """Rendezvous-hash prompts onto replicas by their leading prefix chunks.

    The routing key is the chained :func:`~repro.kvcache.paged.chunk_digest`
    of the prompt's first ``route_chunks`` full page-aligned chunks — byte
    for byte the key the replica's own :class:`PrefixRegistry` will index
    those chunks under, and stable across processes and ``PYTHONHASHSEED``
    values.  Replica choice is rendezvous (highest-random-weight) hashing:
    every replica's weight is ``blake2b(key || replica_index)`` and the
    highest weight wins, so each key has a deterministic owner, keys spread
    uniformly, and when a replica dies its keys fall to their second-choice
    replica without disturbing anyone else's assignment.

    Fallbacks: prompts with no full chunk (shorter than one page) go to the
    least-loaded replica, as does any prompt whose affinity target already
    carries ``spill_load`` or more in-flight requests (``None`` disables
    spilling — affinity always wins).
    """

    def __init__(
        self,
        n_replicas: int,
        page_size: int = DEFAULT_PAGE_SIZE,
        route_chunks: int = 1,
        spill_load: int | None = None,
    ):
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        if route_chunks < 1:
            raise ValueError("route_chunks must be >= 1")
        if spill_load is not None and spill_load < 1:
            raise ValueError("spill_load must be >= 1 (or None)")
        self.n_replicas = n_replicas
        self.page_size = page_size
        self.route_chunks = route_chunks
        self.spill_load = spill_load
        #: Requests routed by prefix affinity.
        self.n_affinity = 0
        #: Requests with no full page-aligned chunk (least-loaded fallback).
        self.n_no_prefix = 0
        #: Requests spilled off an overloaded affinity target.
        self.n_spilled = 0
        #: Requests routed to each replica (all paths).
        self.per_replica = [0] * n_replicas

    def prefix_key(self, prompt_ids) -> bytes | None:
        """Chained digest of the prompt's leading full chunks (or ``None``).

        ``None`` means the prompt is shorter than one page — there is no
        chunk the registry could ever share, hence nothing to be affine to.
        """
        arr = np.asarray(prompt_ids, dtype=np.int64).reshape(-1)
        ps = self.page_size
        n_full = min(self.route_chunks, len(arr) // ps)
        if n_full == 0:
            return None
        digest: bytes | None = None
        for i in range(n_full):
            digest = chunk_digest(arr[i * ps : (i + 1) * ps], digest)
        return digest

    @staticmethod
    def _weight(key: bytes, replica: int) -> bytes:
        """Rendezvous weight of ``replica`` for routing key ``key``."""
        h = hashlib.blake2b(digest_size=8)
        h.update(key)
        h.update(replica.to_bytes(4, "little"))
        return h.digest()

    def route(
        self,
        prompt_ids,
        loads: Sequence[int],
        alive: Sequence[int] | None = None,
    ) -> int:
        """Pick the replica for one prompt given per-replica in-flight loads.

        ``alive`` restricts the candidates (defaults to every replica); a
        dead replica's keys automatically fall to their next-highest
        rendezvous weight among the survivors.
        """
        candidates = list(alive) if alive is not None else list(range(len(loads)))
        if not candidates:
            raise ReplicaDead("no live replicas to route to")
        key = self.prefix_key(prompt_ids)
        if key is not None:
            target = max(candidates, key=lambda i: self._weight(key, i))
            if self.spill_load is None or loads[target] < self.spill_load:
                self.n_affinity += 1
                self.per_replica[target] += 1
                return target
            self.n_spilled += 1
        else:
            self.n_no_prefix += 1
        target = min(candidates, key=lambda i: (loads[i], i))
        self.per_replica[target] += 1
        return target

    def telemetry(self) -> dict:
        """Routing counters (affinity / fallback / spill / per-replica)."""
        return {
            "n_affinity": self.n_affinity,
            "n_no_prefix": self.n_no_prefix,
            "n_spilled": self.n_spilled,
            "per_replica": list(self.per_replica),
        }


# ----------------------------------------------------------------------
# replica server (shared by the process worker and the inline backend)
# ----------------------------------------------------------------------
class _ReplicaServer:
    """One replica's message handlers: an engine plus delta bookkeeping.

    The same object backs both deployment modes — ``_replica_main`` drives
    it from a pipe inside a worker process, ``_InlineReplica`` calls it
    directly — so tests of the inline backend exercise the exact server
    code the multiprocessing path runs.
    """

    def __init__(self, spec: ReplicaSpec):
        self.engine = spec.build_engine()
        #: Live request states by replica-local id.
        self._handles: dict[int, "RequestState"] = {}
        #: Tokens already streamed to the front-end, per local id.
        self._sent: dict[int, int] = {}

    def handle(self, msg: tuple):
        """Dispatch one protocol message ``(command, *args)``."""
        return getattr(self, f"_cmd_{msg[0]}")(*msg[1:])

    def _counters(self) -> dict:
        """Cumulative engine counters the front-end aggregates."""
        e = self.engine
        return {
            "steps": e.step_count,
            "n_preemptions": e.n_preemptions,
            "n_prefill_chunks": e.n_prefill_chunks,
            "prefill_prompt_tokens": e.prefill_prompt_tokens,
            "prefill_computed_tokens": e.prefill_computed_tokens,
        }

    @staticmethod
    def _retire_payload(state: "RequestState") -> dict:
        """Retirement message for one finished request (the full result)."""
        return {
            "local_id": state.request_id,
            "tokens": list(state.tokens),
            "total_logprob": float(state.total_logprob),
            "finish_reason": state.finish_reason,
            "n_steps": state.n_steps,
            "retries": state.retries,
            "preemptions": state.preemptions,
            "error": state.error,
            "cache_stats": state.cache_stats,
            "policy": state.policy.describe(),
            "speculation": dict(state.speculation),
        }

    def _cmd_submit(self, prompt, config, priority, deadline_steps) -> dict:
        """Queue one request; reply carries the replica-local id (and the
        retirement payload immediately when the engine shed it)."""
        state = self.engine.submit(
            prompt, config, deadline_steps=deadline_steps, priority=priority
        )
        lid = state.request_id
        if state.finished:  # shed at admission
            return {"local_id": lid, "finished": self._retire_payload(state)}
        self._handles[lid] = state
        self._sent[lid] = 0
        return {"local_id": lid, "finished": None}

    def _cmd_step(self) -> dict:
        """One engine step; reply streams token deltas and retirements.

        ``restarted`` lists requests whose token list shrank since the last
        step (preemption or retry restarted them from scratch) — the
        front-end resets its copy before applying the fresh delta, so the
        stream converges on exactly the engine's final token list.
        """
        finished = self.engine.step()
        deltas: dict[int, list[int]] = {}
        restarted: list[int] = []
        for lid, state in self._handles.items():
            n = self._sent[lid]
            if len(state.tokens) < n:
                restarted.append(lid)
                n = 0
            if len(state.tokens) > n:
                deltas[lid] = list(state.tokens[n:])
            self._sent[lid] = len(state.tokens)
        retired = []
        for state in finished:
            retired.append(self._retire_payload(state))
            self._handles.pop(state.request_id, None)
            self._sent.pop(state.request_id, None)
        return {
            "deltas": deltas,
            "restarted": restarted,
            "finished": retired,
            "prefill_tokens": self.engine.last_step_prefill_tokens,
            "decode_rows": self.engine.last_step_decode_rows,
            "counters": self._counters(),
        }

    def _cmd_abort(self, local_id: int) -> dict:
        """Cancel one request; reply carries its retirement payload."""
        ok = self.engine.abort(local_id)
        state = self._handles.pop(local_id, None)
        self._sent.pop(local_id, None)
        payload = None
        if state is not None and state.finished:
            payload = self._retire_payload(state)
        return {"aborted": bool(ok), "finished": payload}

    def _cmd_stats(self) -> dict:
        """Telemetry snapshot: pools, prefix savings, faults, queue depths."""
        e = self.engine
        return {
            "pool_usage": e.pool_usage(),
            "prefill_savings": e.prefill_savings,
            "fault_telemetry": e.fault_telemetry(),
            "n_running": e.n_running,
            "n_queued": e.n_queued,
            "counters": self._counters(),
        }


def _replica_main(conn, spec: ReplicaSpec) -> None:
    """Worker-process entry point: serve protocol messages until shutdown.

    Handler exceptions are sent back as ``("error", exc)`` and the worker
    keeps serving (a bad submit must not take down a replica); only a
    closed pipe or an explicit ``shutdown`` message ends the loop.
    """
    server = _ReplicaServer(spec)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "shutdown":
            conn.send(("ok", None))
            break
        try:
            conn.send(("ok", server.handle(msg)))
        except Exception as exc:  # noqa: BLE001 — relayed to the front-end
            try:
                conn.send(("error", exc))
            except Exception:
                conn.send(("error", RuntimeError(f"{type(exc).__name__}: {exc}")))
    conn.close()


class _ProcessReplica:
    """A replica living in its own ``multiprocessing`` worker.

    ``post``/``wait`` split the request/response round-trip so the
    front-end can post ``step`` to every replica before collecting any
    reply — that overlap is where multi-core parallelism comes from.
    """

    def __init__(self, spec: ReplicaSpec, ctx):
        parent, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_replica_main, args=(child, spec), daemon=True
        )
        self.process.start()
        child.close()
        self.conn = parent
        self.alive = True

    def _died(self) -> None:
        self.alive = False
        try:
            self.conn.close()
        except OSError:
            pass
        raise ReplicaDead("replica worker died")

    def post(self, msg: tuple) -> None:
        """Send one message without waiting for the reply."""
        if not self.alive:
            raise ReplicaDead("replica is not alive")
        try:
            self.conn.send(msg)
        except (BrokenPipeError, OSError):
            self._died()

    def wait(self):
        """Collect the reply to the last posted message."""
        if not self.alive:
            raise ReplicaDead("replica is not alive")
        try:
            status, payload = self.conn.recv()
        except (EOFError, OSError):
            self._died()
        if status == "error":
            raise payload if isinstance(payload, BaseException) else RuntimeError(payload)
        return payload

    def call(self, msg: tuple):
        """One synchronous round-trip."""
        self.post(msg)
        return self.wait()

    def kill(self) -> None:
        """Hard-kill the worker (chaos hook; death shows up on next use)."""
        self.alive = False
        self.process.terminate()
        self.process.join(timeout=5)
        try:
            self.conn.close()
        except OSError:
            pass

    def shutdown(self, timeout: float = 5.0) -> None:
        """Graceful stop: ask nicely, then join, then terminate."""
        if self.alive:
            try:
                self.call(("shutdown",))
            except (ReplicaDead, RuntimeError):
                pass
            self.alive = False
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=timeout)


class _InlineReplica:
    """The same replica server called in-process (tests, virtual replay).

    Deterministic and dependency-free: no pipes, no pickling, but byte-for
    byte the same server code — the bit-exactness suites run against this
    backend and the multiprocessing tests only have to show transport
    equivalence.
    """

    def __init__(self, spec: ReplicaSpec, ctx=None):
        self.server = _ReplicaServer(spec)
        self.alive = True
        self._reply = None

    def post(self, msg: tuple) -> None:
        """Handle the message immediately; stash the reply for :meth:`wait`."""
        if not self.alive:
            raise ReplicaDead("replica is not alive")
        self._reply = self.server.handle(msg)

    def wait(self):
        """Return the stashed reply."""
        if not self.alive:
            raise ReplicaDead("replica is not alive")
        reply, self._reply = self._reply, None
        return reply

    def call(self, msg: tuple):
        """One synchronous round-trip."""
        self.post(msg)
        return self.wait()

    def kill(self) -> None:
        """Mark the replica dead (chaos hook)."""
        self.alive = False

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop serving."""
        self.alive = False


# ----------------------------------------------------------------------
# front-end
# ----------------------------------------------------------------------
class ShardedRequest:
    """Front-end handle for one sharded request.

    Duck-types the :class:`~repro.serving.request.RequestState` surface the
    latency/SLO layer reads (``request``, ``tokens``, ``finish_reason``,
    ``first_token_step``/``finished_step`` stamps, :meth:`result`), with
    tokens streamed in incrementally as replica steps report deltas.  Step
    stamps are in *front-end* steps — the clock
    :func:`~repro.serving.workload.replay_trace` maps to virtual time.
    """

    __slots__ = (
        "request",
        "config",
        "replica",
        "local_id",
        "status",
        "tokens",
        "total_logprob",
        "finish_reason",
        "first_token_step",
        "finished_step",
        "n_steps",
        "retries",
        "preemptions",
        "error",
        "cache_stats",
        "policy_description",
        "speculation",
        "deadline_steps",
    )

    def __init__(
        self,
        request: Request,
        config: GenerationConfig,
        deadline_steps: int | None = None,
    ):
        self.request = request
        self.config = config
        self.deadline_steps = deadline_steps
        self.replica: int | None = None
        self.local_id: int | None = None
        self.status = RequestStatus.QUEUED
        self.tokens: list[int] = []
        self.total_logprob = 0.0
        self.finish_reason: FinishReason | None = None
        self.first_token_step: int | None = None
        self.finished_step: int | None = None
        self.n_steps = 0
        self.retries = 0
        self.preemptions = 0
        self.error: str | None = None
        self.cache_stats = None
        self.policy_description: str | None = None
        self.speculation: dict = {}

    @property
    def request_id(self) -> int:
        """The front-end (global) request id."""
        return self.request.request_id

    @property
    def finished(self) -> bool:
        """True once the request retired on its replica."""
        return self.status is RequestStatus.FINISHED

    def result(self) -> GenerationResult:
        """The finished request's output, shaped like ``Generator.generate``.

        Field-for-field identical to the solo engine's
        :meth:`~repro.serving.request.RequestState.result` for the same
        request — the sharded bit-exactness suites pin this.
        """
        if not self.finished:
            raise RuntimeError(f"request {self.request_id} has not finished")
        return GenerationResult(
            sequences=[list(self.tokens)],
            prompt_lengths=[self.request.prompt_len],
            cache_stats=self.cache_stats,
            policy=self.policy_description,
            n_steps=self.n_steps,
            log_probs=[float(self.total_logprob)],
            speculation=dict(self.speculation),
        )


class ShardedEngine:
    """Front-end spreading requests across ``n_replicas`` engine replicas.

    Implements the same replay protocol as a solo engine (``submit`` /
    ``step`` / ``abort`` / ``has_work`` / ``step_virtual_cost`` and the
    aggregate prefill/preemption counters), so
    :func:`~repro.serving.workload.replay_trace` and ``tools/run_load.py``
    drive it unchanged.  Each ``step()`` posts one step to every replica
    that has work and then collects the replies — with the ``process``
    backend the replicas compute concurrently, which is the throughput
    story; with the ``inline`` backend everything runs in-process, which is
    the determinism story (both produce bit-identical outputs).

    ``step_virtual_cost`` prices a super-step as the **maximum** of the
    stepped replicas' :class:`~repro.perfmodel.serving.StepCostModel` costs
    (plus ``router_overhead``): parallel replicas advance the wall clock by
    the slowest one.  With one replica and zero overhead this reduces
    exactly to the solo engine's cost — the N=1 report byte-identity the
    smoke harness asserts.

    A dead replica (crashed worker) is detected on the next interaction;
    its in-flight requests restart on surviving replicas via the same
    deterministic restart contract preemption uses, so outputs stay
    bit-exact and ``retries`` counts the re-route.
    """

    def __init__(
        self,
        spec: ReplicaSpec,
        n_replicas: int,
        router: PrefixAffinityRouter | None = None,
        backend: str = "process",
        start_method: str | None = None,
        router_overhead: float = 0.0,
    ):
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if backend not in ("process", "inline"):
            raise ValueError(f"unknown backend {backend!r}")
        if router is not None and router.n_replicas != n_replicas:
            raise ValueError("router.n_replicas must match n_replicas")
        if router_overhead < 0:
            raise ValueError("router_overhead must be non-negative")
        self.spec = spec
        self.n_replicas = n_replicas
        self.backend = backend
        self.router = router or PrefixAffinityRouter(
            n_replicas, page_size=spec.page_size
        )
        self.router_overhead = float(router_overhead)
        replica_cls: Callable = _InlineReplica
        ctx = None
        if backend == "process":
            replica_cls = _ProcessReplica
            ctx = mp.get_context(start_method) if start_method else mp.get_context()
        self._replicas = [replica_cls(spec, ctx) for _ in range(n_replicas)]
        #: Live handles by global request id.
        self._handles: dict[int, ShardedRequest] = {}
        #: (replica, local id) -> global id, for delta/retirement dispatch.
        self._local_to_global: dict[tuple[int, int], int] = {}
        #: In-flight (submitted, unfinished) requests per replica.
        self._loads = [0] * n_replicas
        #: Latest cumulative engine counters per replica (frozen at death).
        self._replica_counters = [
            {
                "steps": 0,
                "n_preemptions": 0,
                "n_prefill_chunks": 0,
                "prefill_prompt_tokens": 0,
                "prefill_computed_tokens": 0,
            }
            for _ in range(n_replicas)
        ]
        self._next_id = 0
        #: Front-end super-steps executed (the replay clock).
        self.step_count = 0
        #: (prefill_tokens, decode_rows) per replica stepped last super-step.
        self._last_step_work: list[tuple[int, int]] = []
        #: Work totals of the most recent super-step, summed over replicas.
        self.last_step_prefill_tokens = 0
        self.last_step_decode_rows = 0
        #: Cumulative decode rows across all replicas and steps.
        self.decode_rows_total = 0
        #: Replicas lost to worker death.
        self.n_replica_failures = 0
        self._closed = False

    # ------------------------------------------------------------------
    # submission / routing
    # ------------------------------------------------------------------
    def _alive(self) -> list[int]:
        return [i for i, r in enumerate(self._replicas) if r.alive]

    def submit(
        self,
        prompt_ids,
        config: GenerationConfig | None = None,
        priority: int = 0,
        deadline_steps: int | None = None,
    ) -> ShardedRequest:
        """Route one request to a replica; returns its front-end handle.

        Same contract as the solo engine's ``submit``: the handle may come
        back already finished (``FinishReason.SHED``) when the target
        replica refuses it at admission.
        """
        config = config or GenerationConfig()
        request = Request.from_config(
            self._next_id, prompt_ids, config, priority=int(priority)
        )
        self._next_id += 1
        handle = ShardedRequest(request, config, deadline_steps=deadline_steps)
        self._dispatch(handle)
        return handle

    def _dispatch(self, handle: ShardedRequest) -> None:
        """Route + submit one handle (also the re-route path after death)."""
        target = self.router.route(
            handle.request.prompt_ids, loads=self._loads, alive=self._alive()
        )
        prompt = handle.request.prompt_ids[0].tolist()
        try:
            reply = self._replicas[target].call(
                ("submit", prompt, handle.config, handle.request.priority,
                 handle.deadline_steps)
            )
        except ReplicaDead:
            self._on_replica_death(target)
            self._dispatch(handle)
            return
        handle.replica = target
        handle.local_id = reply["local_id"]
        if reply["finished"] is not None:  # shed at admission
            self._finalize(handle, reply["finished"])
            return
        handle.status = RequestStatus.QUEUED
        self._handles[handle.request_id] = handle
        self._local_to_global[(target, reply["local_id"])] = handle.request_id
        self._loads[target] += 1

    def _finalize(self, handle: ShardedRequest, retired: dict) -> None:
        """Apply a retirement payload to its handle (front-end step stamps)."""
        handle.status = RequestStatus.FINISHED
        handle.tokens = list(retired["tokens"])
        handle.total_logprob = retired["total_logprob"]
        handle.finish_reason = retired["finish_reason"]
        handle.n_steps = retired["n_steps"]
        handle.retries += retired["retries"]
        handle.preemptions = retired["preemptions"]
        handle.error = retired["error"]
        handle.cache_stats = retired["cache_stats"]
        handle.policy_description = retired["policy"]
        handle.speculation = retired["speculation"]
        handle.finished_step = self.step_count
        if handle.first_token_step is None and handle.tokens:
            handle.first_token_step = self.step_count

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self) -> list[ShardedRequest]:
        """Advance every busy replica by one step (one front-end super-step).

        Posts ``step`` to all busy replicas before collecting any reply, so
        process-backend replicas compute concurrently.  Returns the handles
        that finished during this super-step, stamped with the front-end
        step counter.
        """
        self.step_count += 1
        self._last_step_work = []
        self.last_step_prefill_tokens = 0
        self.last_step_decode_rows = 0
        finished: list[ShardedRequest] = []
        targets = [i for i in self._alive() if self._loads[i] > 0]
        posted, dead = [], []
        for i in targets:
            try:
                self._replicas[i].post(("step",))
                posted.append(i)
            except ReplicaDead:
                dead.append(i)
        for i in posted:
            try:
                payload = self._replicas[i].wait()
            except ReplicaDead:
                dead.append(i)
                continue
            self._apply_step_payload(i, payload, finished)
        for i in dead:
            self._on_replica_death(i)
        return finished

    def _apply_step_payload(
        self, replica: int, payload: dict, finished: list[ShardedRequest]
    ) -> None:
        """Fold one replica's step reply into front-end state."""
        for lid in payload["restarted"]:
            gid = self._local_to_global.get((replica, lid))
            if gid is None:
                continue
            handle = self._handles[gid]
            handle.tokens = []
            handle.first_token_step = None
        for lid in sorted(payload["deltas"]):
            gid = self._local_to_global.get((replica, lid))
            if gid is None:
                continue
            handle = self._handles[gid]
            handle.status = RequestStatus.RUNNING
            handle.tokens.extend(payload["deltas"][lid])
            if handle.first_token_step is None:
                handle.first_token_step = self.step_count
        for retired in payload["finished"]:
            gid = self._local_to_global.pop((replica, retired["local_id"]), None)
            if gid is None:
                continue
            handle = self._handles.pop(gid)
            self._finalize(handle, retired)
            self._loads[replica] -= 1
            finished.append(handle)
        self._last_step_work.append(
            (payload["prefill_tokens"], payload["decode_rows"])
        )
        self.last_step_prefill_tokens += payload["prefill_tokens"]
        self.last_step_decode_rows += payload["decode_rows"]
        self.decode_rows_total += payload["decode_rows"]
        self._replica_counters[replica] = payload["counters"]

    def step_virtual_cost(self, cost_model: "StepCostModel") -> float:
        """Virtual-time cost of the last super-step: max over replicas.

        Replicas run in parallel on real hardware, so the clock advances by
        the slowest replica's step cost, plus the fixed ``router_overhead``
        the front-end charges per super-step.
        """
        if not self._last_step_work:
            return self.router_overhead
        return self.router_overhead + max(
            cost_model.step_cost(p, d) for p, d in self._last_step_work
        )

    # ------------------------------------------------------------------
    # replica death
    # ------------------------------------------------------------------
    def kill_replica(self, replica: int) -> None:
        """Chaos hook: hard-kill one replica and re-route its requests."""
        self._replicas[replica].kill()
        self._on_replica_death(replica)

    def _on_replica_death(self, replica: int) -> None:
        """Re-route a dead replica's in-flight requests to the survivors.

        Each victim restarts from scratch on its new replica — the same
        deterministic restart contract preemption relies on, so the rerun's
        tokens and log-probs are bit-identical; ``retries`` counts the
        re-route and the first-token stamp tracks the successful run.
        """
        rep = self._replicas[replica]
        if rep.alive:
            rep.kill()
        self.n_replica_failures += 1
        victims = sorted(
            gid for (r, _lid), gid in self._local_to_global.items() if r == replica
        )
        for gid in victims:
            handle = self._handles[gid]
            self._local_to_global.pop((replica, handle.local_id), None)
        self._loads[replica] = 0
        if not self._alive():
            raise ReplicaDead("all replicas are dead")
        for gid in victims:
            handle = self._handles.pop(gid)
            handle.tokens = []
            handle.first_token_step = None
            handle.status = RequestStatus.QUEUED
            handle.retries += 1
            self._dispatch(handle)

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def abort(self, request_id: int) -> bool:
        """Cancel a request wherever it lives (queued or in flight).

        Mirrors the solo engine: the handle finishes with
        ``FinishReason.ABORTED`` and its partial tokens.  Returns ``False``
        for unknown or already-finished ids.
        """
        handle = self._handles.get(request_id)
        if handle is None or handle.finished:
            return False
        replica, lid = handle.replica, handle.local_id
        try:
            reply = self._replicas[replica].call(("abort", lid))
        except ReplicaDead:
            self._on_replica_death(replica)
            return self.abort(request_id)
        if reply["finished"] is not None:
            self._local_to_global.pop((replica, lid), None)
            self._handles.pop(request_id, None)
            self._loads[replica] -= 1
            self._finalize(handle, reply["finished"])
        return bool(reply["aborted"])

    @property
    def has_work(self) -> bool:
        """True while any live replica holds an in-flight request."""
        return any(self._loads[i] > 0 for i in self._alive())

    @property
    def n_in_flight(self) -> int:
        """Submitted, unfinished requests across all replicas."""
        return sum(self._loads)

    # Aggregate counters: the replay stats snapshot reads these.
    @property
    def n_preemptions(self) -> int:
        """Preemptions summed over replicas."""
        return sum(c["n_preemptions"] for c in self._replica_counters)

    @property
    def n_prefill_chunks(self) -> int:
        """Prefill chunks summed over replicas."""
        return sum(c["n_prefill_chunks"] for c in self._replica_counters)

    @property
    def prefill_prompt_tokens(self) -> int:
        """Prompt tokens submitted for prefill, summed over replicas."""
        return sum(c["prefill_prompt_tokens"] for c in self._replica_counters)

    @property
    def prefill_computed_tokens(self) -> int:
        """Prompt tokens actually computed, summed over replicas."""
        return sum(c["prefill_computed_tokens"] for c in self._replica_counters)

    @property
    def prefill_savings(self) -> float:
        """Aggregate submitted/computed prompt-token ratio (1.0 = no sharing)."""
        computed = self.prefill_computed_tokens
        if computed == 0:
            return 1.0
        return self.prefill_prompt_tokens / computed

    def stats(self) -> dict:
        """One aggregated telemetry view across router and replicas.

        Live replicas are queried for pools/prefix-savings/fault counters;
        dead ones report their last-known cumulative counters with
        ``alive: false``.
        """
        replicas = []
        for i, rep in enumerate(self._replicas):
            if rep.alive:
                try:
                    snap = rep.call(("stats",))
                except ReplicaDead:
                    self._on_replica_death(i)
                    snap = None
            else:
                snap = None
            if snap is None:
                replicas.append(
                    {"alive": False, "counters": dict(self._replica_counters[i])}
                )
            else:
                self._replica_counters[i] = snap["counters"]
                replicas.append({"alive": True, **snap})
        return {
            "n_replicas": self.n_replicas,
            "backend": self.backend,
            "loads": list(self._loads),
            "n_in_flight": self.n_in_flight,
            "n_replica_failures": self.n_replica_failures,
            "steps": self.step_count,
            "prefill_savings": self.prefill_savings,
            "prefill_prompt_tokens": self.prefill_prompt_tokens,
            "prefill_computed_tokens": self.prefill_computed_tokens,
            "n_preemptions": self.n_preemptions,
            "n_prefill_chunks": self.n_prefill_chunks,
            "router": self.router.telemetry(),
            "replicas": replicas,
        }

    def drain(self) -> list[ShardedRequest]:
        """Step until every in-flight request finished; returns them all."""
        finished: list[ShardedRequest] = []
        while self.has_work:
            finished.extend(self.step())
        return finished

    def shutdown(self) -> None:
        """Gracefully stop every replica worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for rep in self._replicas:
            rep.shutdown()

    def __enter__(self) -> "ShardedEngine":
        """Context-manager entry (workers already started)."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: shut every worker down."""
        self.shutdown()

    def __del__(self):  # noqa: D105 — best-effort cleanup
        try:
            self.shutdown()
        except Exception:
            pass
