"""SLO tiers: priority-aware admission and latency-percentile telemetry.

This module turns the raw per-request step stamps the engine records into
the serving metrics a latency SLO is written against, and provides the
scheduler that acts on those SLOs:

:class:`PriorityScheduler`
    A :class:`~repro.serving.scheduler.PagedScheduler` whose queue is kept
    ordered by ``(-priority, request_id)``: higher tiers admit first, FCFS
    within a tier.  It also opts the engine into **priority preemption** —
    when the queue head outranks a running request and admission is blocked,
    the engine preempts the lowest-priority (newest among ties) running
    request through the ordinary preempt-and-restart machinery.  Because a
    restart regenerates bit-identically, priorities change *when* requests
    finish, never *what* they emit.

:class:`LatencyRecord` / :class:`LatencyReport`
    Per-request latency triplets (TTFT / TPOT / E2E, in the load harness's
    virtual time) and their deterministic aggregation into p50/p90/p99
    percentiles, per-tier breakdowns, throughput and SLO goodput.  Reports
    round to six decimals and serialize with sorted keys, so the same trace
    always produces a byte-identical report (pinned by ``make load-smoke``).

:class:`SLOSpec` / :class:`SLOTarget`
    Per-tier latency targets.  *Goodput* is the fraction of submitted
    requests that completed normally (EOS or length) **and** met every
    target of their tier — throughput that missed its SLO counts for
    nothing, which is the metric that makes tail latency visible.

Metric definitions (``docs/workloads.md`` derives them with pictures):

* **TTFT** — ``first_token_time - submit_time``: queue wait + prefill.
* **TPOT** — ``(finish_time - first_token_time) / (n_tokens - 1)``: the
  steady-state per-token pace after the first token (``None`` for
  single-token outputs).
* **E2E** — ``finish_time - submit_time``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.serving.request import RequestState
from repro.serving.scheduler import PagedScheduler

__all__ = [
    "TIER_BATCH",
    "TIER_STANDARD",
    "TIER_INTERACTIVE",
    "PriorityScheduler",
    "SLOTarget",
    "SLOSpec",
    "LatencyRecord",
    "LatencyReport",
    "percentile",
]

#: Conventional tier names for the three-tier setup used throughout the
#: docs and benchmarks.  Priorities are plain ints — any values work; the
#: scheduler only compares them.
TIER_BATCH = 0
TIER_STANDARD = 1
TIER_INTERACTIVE = 2


class PriorityScheduler(PagedScheduler):
    """Paged admission with strict priority tiers (FCFS within a tier).

    The queue is kept sorted by ``(-priority, request_id)`` on every insert:
    :meth:`submit` and :meth:`requeue` both use the same ordering, so a
    preempted low-tier request re-enters *behind* any queued higher tier.
    Admission itself is inherited head-of-line — the head is simply the
    highest-priority oldest request.

    Setting :attr:`priority_preemption` (class attribute, ``True`` here)
    tells the engine to preempt running lower-tier requests when the queue
    head outranks them and cannot be admitted otherwise.  Note the inherited
    head-of-line contract now holds *per tier*: a blocked high-tier head
    still blocks everything behind it, which keeps admission latency
    predictable within each tier.
    """

    #: Engine hint: preempt running lower-priority requests for a blocked
    #: higher-priority queue head.
    priority_preemption = True

    @staticmethod
    def _order_key(state: RequestState) -> tuple[int, int]:
        return (-state.request.priority, state.request_id)

    def _insert_ordered(self, state: RequestState) -> None:
        key = self._order_key(state)
        at = 0
        for queued in self._queue:
            if self._order_key(queued) < key:
                at += 1
            else:
                break
        self._queue.insert(at, state)

    def _enqueue(self, state: RequestState) -> None:
        """Insert a new submission in ``(-priority, request_id)`` order."""
        self._insert_ordered(state)

    def requeue(self, state: RequestState) -> None:
        """Requeue a preempted/failed request in priority order.

        Within a tier this degenerates to the FCFS rule (ids are monotonic),
        so single-tier workloads behave exactly like :class:`PagedScheduler`.
        """
        self._insert_ordered(state)


# ----------------------------------------------------------------------
# SLO targets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SLOTarget:
    """Latency targets for one tier, in virtual time units (``None`` = don't
    care).  A request *attains* its SLO when every set target is met."""

    ttft: float | None = None
    e2e: float | None = None

    def met_by(self, record: "LatencyRecord") -> bool:
        """True when the record completed normally within every set target."""
        if not record.completed:
            return False
        if self.ttft is not None:
            if record.ttft is None or record.ttft > self.ttft:
                return False
        if self.e2e is not None:
            if record.e2e is None or record.e2e > self.e2e:
                return False
        return True


@dataclass(frozen=True)
class SLOSpec:
    """Per-tier SLO targets with a default for unlisted tiers.

    ``targets`` maps a priority value to its :class:`SLOTarget`;
    ``default`` covers every other tier.
    """

    targets: Mapping[int, SLOTarget] = field(default_factory=dict)
    default: SLOTarget = field(default_factory=SLOTarget)

    def target_for(self, priority: int) -> SLOTarget:
        """The target that applies to ``priority``."""
        return self.targets.get(priority, self.default)

    def met_by(self, record: "LatencyRecord") -> bool:
        """Whether a record attained the SLO of its tier."""
        return self.target_for(record.priority).met_by(record)

    @classmethod
    def three_tier(
        cls, ttft: float = 200.0, e2e: float = 2000.0
    ) -> "SLOSpec":
        """The conventional three-tier spec used by the load harness.

        Interactive traffic gets half the baseline targets, batch traffic
        four times; standard traffic gets the baseline.
        """
        return cls(
            targets={
                TIER_INTERACTIVE: SLOTarget(ttft=ttft / 2, e2e=e2e / 2),
                TIER_STANDARD: SLOTarget(ttft=ttft, e2e=e2e),
                TIER_BATCH: SLOTarget(ttft=ttft * 4, e2e=e2e * 4),
            },
            default=SLOTarget(ttft=ttft, e2e=e2e),
        )


# ----------------------------------------------------------------------
# latency records and percentile reports
# ----------------------------------------------------------------------
def percentile(values: Sequence[float], q: float) -> float:
    """Deterministic linear-interpolation percentile (NumPy's default).

    Sorting and interpolation are exact float64 operations, so the same
    sample always produces the same bits on every platform.
    """
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass(frozen=True)
class LatencyRecord:
    """One request's latency outcome, in the harness's virtual time."""

    request_id: int
    priority: int
    prompt_len: int
    n_tokens: int
    finish_reason: str
    submit_time: float
    first_token_time: float | None
    finish_time: float | None

    @property
    def completed(self) -> bool:
        """True for the normal completions (EOS or length budget)."""
        return self.finish_reason in ("eos", "length")

    @property
    def ttft(self) -> float | None:
        """Time to first token: queue wait + prefill (+ any preemptions)."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.submit_time

    @property
    def tpot(self) -> float | None:
        """Time per output token after the first (``None`` if < 2 tokens)."""
        if (
            self.first_token_time is None
            or self.finish_time is None
            or self.n_tokens < 2
        ):
            return None
        return (self.finish_time - self.first_token_time) / (self.n_tokens - 1)

    @property
    def e2e(self) -> float | None:
        """End-to-end latency from submission to retirement."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    @classmethod
    def from_state(
        cls,
        state: RequestState,
        submit_time: float,
        first_token_time: float | None,
        finish_time: float | None,
    ) -> "LatencyRecord":
        """Build a record from a finished engine state + harness timestamps."""
        reason = state.finish_reason.value if state.finish_reason else "unknown"
        return cls(
            request_id=state.request_id,
            priority=state.request.priority,
            prompt_len=state.request.prompt_len,
            n_tokens=len(state.tokens),
            finish_reason=reason,
            submit_time=submit_time,
            first_token_time=first_token_time,
            finish_time=finish_time,
        )


def _summary(values: list[float]) -> dict:
    """p50/p90/p99 + mean/max of a latency sample (zeros when empty)."""
    if not values:
        return {"n": 0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "n": len(values),
        "p50": percentile(values, 50),
        "p90": percentile(values, 90),
        "p99": percentile(values, 99),
        "mean": float(np.mean(np.asarray(values, dtype=np.float64))),
        "max": float(np.max(np.asarray(values, dtype=np.float64))),
    }


def _round(obj):
    """Round every float in a nested dict/list to 6 decimals (determinism)."""
    if isinstance(obj, float):
        return round(obj, 6)
    if isinstance(obj, dict):
        return {k: _round(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_round(v) for v in obj]
    return obj


@dataclass(frozen=True)
class LatencyReport:
    """Aggregate latency percentiles, throughput and SLO goodput.

    Built by :meth:`from_records`; :meth:`to_dict` / :meth:`to_json` emit a
    deterministic structure (floats rounded to six decimals, keys sorted) —
    replaying the same trace yields a byte-identical report.
    """

    records: tuple[LatencyRecord, ...]
    makespan: float
    slo: SLOSpec | None = None

    @classmethod
    def from_records(
        cls,
        records: Sequence[LatencyRecord],
        makespan: float,
        slo: SLOSpec | None = None,
    ) -> "LatencyReport":
        """Aggregate per-request records over one trace replay.

        ``makespan`` is the total virtual time the replay took (arrival of
        the first event to retirement of the last request) — the denominator
        of every throughput/goodput rate.
        """
        return cls(records=tuple(records), makespan=float(makespan), slo=slo)

    # -- aggregation ----------------------------------------------------
    def _completed(self) -> list[LatencyRecord]:
        return [r for r in self.records if r.completed]

    def goodput(self) -> float:
        """Fraction of *all submitted* requests that completed within SLO.

        1.0 without an :class:`SLOSpec` only if everything completed
        normally; sheds, timeouts and errors always count against goodput.
        """
        if not self.records:
            return 0.0
        if self.slo is None:
            good = sum(1 for r in self.records if r.completed)
        else:
            good = sum(1 for r in self.records if self.slo.met_by(r))
        return good / len(self.records)

    def to_dict(self) -> dict:
        """The report as a deterministic, JSON-ready nested dict."""
        completed = self._completed()
        ttft = [r.ttft for r in completed if r.ttft is not None]
        tpot = [r.tpot for r in completed if r.tpot is not None]
        e2e = [r.e2e for r in completed if r.e2e is not None]
        reasons: dict[str, int] = {}
        for r in self.records:
            reasons[r.finish_reason] = reasons.get(r.finish_reason, 0) + 1
        per_tier: dict[str, dict] = {}
        for tier in sorted({r.priority for r in self.records}):
            tier_recs = [r for r in self.records if r.priority == tier]
            tier_done = [r for r in tier_recs if r.completed]
            tier_good = (
                sum(1 for r in tier_recs if self.slo.met_by(r)) / len(tier_recs)
                if self.slo is not None and tier_recs
                else (len(tier_done) / len(tier_recs) if tier_recs else 0.0)
            )
            per_tier[str(tier)] = {
                "n": len(tier_recs),
                "goodput": tier_good,
                "ttft": _summary([r.ttft for r in tier_done if r.ttft is not None]),
                "e2e": _summary([r.e2e for r in tier_done if r.e2e is not None]),
            }
        total_tokens = sum(r.n_tokens for r in completed)
        span = self.makespan if self.makespan > 0 else 1.0
        out = {
            "n_requests": len(self.records),
            "n_completed": len(completed),
            "finish_reasons": reasons,
            "ttft": _summary(ttft),
            "tpot": _summary(tpot),
            "e2e": _summary(e2e),
            "per_tier": per_tier,
            "goodput": self.goodput(),
            "throughput": {
                "makespan": self.makespan,
                "tokens_per_time": total_tokens / span,
                "requests_per_time": len(completed) / span,
                "total_tokens": total_tokens,
            },
        }
        return _round(out)

    def to_json(self, indent: int | None = 2) -> str:
        """Deterministic JSON text of :meth:`to_dict` (sorted keys)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
