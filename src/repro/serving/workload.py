"""Seeded workload traces and virtual-step-time replay for the engine.

The serving papers this repo reproduces argue from *workload-level* numbers
— p99 TTFT under bursty arrivals, goodput under skewed prefix sharing — not
from microbenchmarks of a single forward pass.  This module provides the
two halves of that evaluation loop:

:func:`generate_trace`
    A seeded trace generator producing replayable :class:`TraceEvent`
    lists.  Arrivals are Poisson (exponential gaps) or bursty (a two-state
    Markov-modulated Poisson process that alternates calm and burst
    regimes).  Prompts mix Zipf-distributed **shared prefixes** — page
    aligned so the :class:`~repro.kvcache.paged.PrefixRegistry` can dedup
    them — with unique prompts, and output lengths are drawn from a small
    mixture.  Every draw comes from one ``numpy`` Generator, so a seed
    pins the whole trace; :class:`Trace` round-trips through JSON exactly.

:func:`replay_trace`
    Drives a :class:`~repro.serving.engine.ContinuousBatchingEngine` from a
    trace in **virtual step-time**: after each engine step the clock
    advances by a :class:`~repro.perfmodel.serving.StepCostModel` cost of
    what the step actually did (prefill tokens + decode rows), and requests
    whose arrival time has passed are submitted before the next step.  The
    engine's per-request step stamps (``first_token_step`` /
    ``finished_step``) are mapped through the step→time table into
    :class:`~repro.serving.slo.LatencyRecord` TTFT/TPOT/E2E values and
    aggregated into a deterministic :class:`~repro.serving.slo.LatencyReport`.

Virtual time keeps the harness machine-independent and bit-reproducible:
two replays of the same trace produce byte-identical reports (pinned by
``make load-smoke``), which is what makes latency regressions gateable in
CI.  See ``docs/workloads.md`` for the trace format and metric definitions.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Protocol, Sequence

import numpy as np

from repro.kvcache.paged import DEFAULT_PAGE_SIZE
from repro.models.config import GenerationConfig
from repro.serving.slo import LatencyRecord, LatencyReport, SLOSpec

if TYPE_CHECKING:
    from repro.perfmodel.serving import StepCostModel
    from repro.serving.engine import ContinuousBatchingEngine

__all__ = [
    "TraceEvent",
    "Trace",
    "WorkloadConfig",
    "generate_trace",
    "ReplayableEngine",
    "ReplayResult",
    "replay_trace",
]


class ReplayableEngine(Protocol):
    """The engine front-end protocol :func:`replay_trace` drives.

    Satisfied by :class:`~repro.serving.engine.ContinuousBatchingEngine`
    and by :class:`~repro.serving.sharded.ShardedEngine`; any front-end
    implementing these members (plus the ``n_preemptions`` /
    ``n_prefill_chunks`` / ``prefill_prompt_tokens`` /
    ``prefill_computed_tokens`` counters the stats snapshot reads) can be
    replayed.
    """

    step_count: int

    def submit(self, prompt_ids, config=None, *, priority: int = 0) -> Any:
        """Queue one request; returns a state handle with step stamps."""
        ...

    def step(self) -> list:
        """Advance by one step; returns the requests finished during it."""
        ...

    def step_virtual_cost(self, cost_model) -> float:
        """Virtual-time cost of the most recent :meth:`step`."""
        ...

    @property
    def has_work(self) -> bool:
        """True while any request is queued or running."""
        ...


# ----------------------------------------------------------------------
# trace format
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceEvent:
    """One request arrival in a workload trace.

    ``prefix_id`` records which shared prefix (if any) the prompt starts
    with — telemetry for analyzing prefix-cache hit rates, not replay
    input; the tokens themselves are already in ``prompt_ids``.
    """

    arrival_time: float
    prompt_ids: tuple[int, ...]
    max_new_tokens: int
    priority: int = 0
    prefix_id: int | None = None

    def to_dict(self) -> dict:
        """JSON-ready form of the event."""
        return {
            "arrival_time": self.arrival_time,
            "prompt_ids": list(self.prompt_ids),
            "max_new_tokens": self.max_new_tokens,
            "priority": self.priority,
            "prefix_id": self.prefix_id,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "TraceEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            arrival_time=float(d["arrival_time"]),
            prompt_ids=tuple(int(t) for t in d["prompt_ids"]),
            max_new_tokens=int(d["max_new_tokens"]),
            priority=int(d.get("priority", 0)),
            prefix_id=(None if d.get("prefix_id") is None else int(d["prefix_id"])),
        )


@dataclass(frozen=True)
class Trace:
    """A replayable sequence of arrivals plus the config/seed that made it.

    Events are kept sorted by ``arrival_time``; JSON round-trips exactly
    (Python serializes floats by shortest-exact ``repr``), so a trace file
    replays bit-identically to the in-memory trace that wrote it.
    """

    events: tuple[TraceEvent, ...]
    seed: int = 0
    config: "WorkloadConfig | None" = None

    def __len__(self) -> int:
        return len(self.events)

    def to_dict(self) -> dict:
        """JSON-ready form: config, seed and the full event list."""
        return {
            "seed": self.seed,
            "config": None if self.config is None else self.config.to_dict(),
            "events": [e.to_dict() for e in self.events],
        }

    def to_json(self, indent: int | None = None) -> str:
        """Deterministic JSON text (sorted keys)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, d: Mapping) -> "Trace":
        """Inverse of :meth:`to_dict`."""
        cfg = d.get("config")
        return cls(
            events=tuple(TraceEvent.from_dict(e) for e in d["events"]),
            seed=int(d.get("seed", 0)),
            config=None if cfg is None else WorkloadConfig.from_dict(cfg),
        )

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Parse a trace serialized by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# trace generation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the seeded trace generator (see :func:`generate_trace`).

    Arrival process
        ``arrival`` is ``"poisson"`` (exponential inter-arrival gaps with
        mean ``mean_interarrival``) or ``"bursty"`` — a two-state
        Markov-modulated process that draws each gap from the current
        state's rate (burst state is ``burst_factor`` times faster) and
        switches state with probability ``burst_switch_prob`` per arrival.

    Prompt mix
        With probability ``prefix_share_prob`` a prompt starts with one of
        ``n_prefixes`` shared prefixes chosen by a bounded Zipf law
        (rank ``k`` has weight ``k**-zipf_alpha``), followed by a unique
        suffix of ``suffix_len_range`` tokens; otherwise the whole prompt
        is unique with length in ``prompt_len_range``.  Shared prefixes are
        ``prefix_len_pages`` pages long — page aligned so the prefix
        registry's chunked hashing can dedup them across requests.

    Output mix and tiers
        ``max_new_tokens`` is drawn from ``output_len_choices`` with
        ``output_len_weights``; the SLO tier from ``tier_weights``
        (mapping priority value → weight, default all standard).
    """

    n_requests: int = 64
    vocab_size: int = 256
    arrival: str = "poisson"
    mean_interarrival: float = 1.0
    burst_factor: float = 4.0
    burst_switch_prob: float = 0.2
    n_prefixes: int = 8
    zipf_alpha: float = 1.1
    prefix_share_prob: float = 0.7
    prefix_len_pages: int = 2
    page_size: int = DEFAULT_PAGE_SIZE
    suffix_len_range: tuple[int, int] = (4, 24)
    prompt_len_range: tuple[int, int] = (8, 64)
    output_len_choices: tuple[int, ...] = (4, 16, 48)
    output_len_weights: tuple[float, ...] = (0.3, 0.5, 0.2)
    tier_weights: Mapping[int, float] = field(default_factory=lambda: {1: 1.0})

    def __post_init__(self):
        if self.arrival not in ("poisson", "bursty"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.n_requests <= 0:
            raise ValueError("n_requests must be positive")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if not 0.0 <= self.burst_switch_prob <= 1.0:
            raise ValueError("burst_switch_prob must be in [0, 1]")
        if self.n_prefixes <= 0:
            raise ValueError("n_prefixes must be positive")
        if not 0.0 <= self.prefix_share_prob <= 1.0:
            raise ValueError("prefix_share_prob must be in [0, 1]")
        if self.prefix_len_pages <= 0 or self.page_size <= 0:
            raise ValueError("prefix_len_pages and page_size must be positive")
        if len(self.output_len_choices) != len(self.output_len_weights):
            raise ValueError("output_len_choices and output_len_weights differ in length")
        for lo, hi in (self.suffix_len_range, self.prompt_len_range):
            if lo < 1 or hi < lo:
                raise ValueError("length ranges must satisfy 1 <= lo <= hi")
        if not self.tier_weights:
            raise ValueError("tier_weights must not be empty")

    @property
    def prefix_len(self) -> int:
        """Shared-prefix length in tokens (page aligned by construction)."""
        return self.prefix_len_pages * self.page_size

    def to_dict(self) -> dict:
        """JSON-ready form (tier keys become strings; tuples become lists)."""
        d = asdict(self)
        d["tier_weights"] = {str(k): v for k, v in self.tier_weights.items()}
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "WorkloadConfig":
        """Inverse of :meth:`to_dict`."""
        kwargs = dict(d)
        kwargs["tier_weights"] = {
            int(k): float(v) for k, v in d.get("tier_weights", {"1": 1.0}).items()
        }
        for key in ("suffix_len_range", "prompt_len_range", "output_len_choices",
                    "output_len_weights"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)


def _zipf_weights(n: int, alpha: float) -> np.ndarray:
    """Normalized bounded-Zipf weights over ranks ``1..n``."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** -float(alpha)
    return w / w.sum()


def generate_trace(config: WorkloadConfig | None = None, seed: int = 0) -> Trace:
    """Generate a seeded, replayable workload trace.

    All randomness comes from one ``np.random.default_rng(seed)`` consumed
    in a fixed order (prefix pool, then per-event draws), so the same
    ``(config, seed)`` pair always yields an identical trace — the
    foundation of every determinism guarantee downstream.
    """
    config = config or WorkloadConfig()
    rng = np.random.default_rng(seed)

    # Shared prefix pool: page-aligned token blocks the registry can dedup.
    prefixes = [
        rng.integers(0, config.vocab_size, size=config.prefix_len)
        for _ in range(config.n_prefixes)
    ]
    zipf = _zipf_weights(config.n_prefixes, config.zipf_alpha)

    tiers = sorted(config.tier_weights)
    tier_p = np.asarray([config.tier_weights[t] for t in tiers], dtype=np.float64)
    tier_p = tier_p / tier_p.sum()
    out_p = np.asarray(config.output_len_weights, dtype=np.float64)
    out_p = out_p / out_p.sum()

    # Arrival clock: Poisson gaps, or a two-state Markov-modulated process
    # whose burst state draws gaps `burst_factor` times shorter.
    t = 0.0
    bursting = False
    events: list[TraceEvent] = []
    for _ in range(config.n_requests):
        mean_gap = config.mean_interarrival
        if config.arrival == "bursty":
            if rng.random() < config.burst_switch_prob:
                bursting = not bursting
            if bursting:
                mean_gap = config.mean_interarrival / config.burst_factor
        t += float(rng.exponential(mean_gap))

        if rng.random() < config.prefix_share_prob:
            prefix_id = int(rng.choice(config.n_prefixes, p=zipf))
            lo, hi = config.suffix_len_range
            suffix = rng.integers(0, config.vocab_size, size=int(rng.integers(lo, hi + 1)))
            prompt = np.concatenate([prefixes[prefix_id], suffix])
        else:
            prefix_id = None
            lo, hi = config.prompt_len_range
            prompt = rng.integers(0, config.vocab_size, size=int(rng.integers(lo, hi + 1)))

        events.append(
            TraceEvent(
                arrival_time=t,
                prompt_ids=tuple(int(x) for x in prompt),
                max_new_tokens=int(rng.choice(config.output_len_choices, p=out_p)),
                priority=int(tiers[int(rng.choice(len(tiers), p=tier_p))]),
                prefix_id=prefix_id,
            )
        )
    return Trace(events=tuple(events), seed=seed, config=config)


# ----------------------------------------------------------------------
# virtual-step-time replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplayResult:
    """Everything one trace replay produced.

    ``report`` is the aggregate :class:`~repro.serving.slo.LatencyReport`;
    ``records`` the per-request latency triplets behind it; ``engine_stats``
    a snapshot of the engine counters that explain the latencies
    (preemptions, prefill chunks, prefix-sharing savings, steps).
    """

    report: LatencyReport
    records: tuple[LatencyRecord, ...]
    engine_stats: dict
    makespan: float


def replay_trace(
    engine: "ContinuousBatchingEngine | ReplayableEngine",
    trace: Trace,
    cost_model: "StepCostModel",
    slo: SLOSpec | None = None,
    temperature: float = 0.0,
    seed: int = 0,
) -> ReplayResult:
    """Drive an engine front-end through ``trace`` in virtual step-time.

    The virtual clock starts at 0 and advances only when the engine steps:
    by ``engine.step_virtual_cost(cost_model)`` of what the step actually
    computed.  Arrivals whose time has passed are submitted before each
    step (in trace order); when the engine is idle the clock jumps to the
    next arrival.  Per-request timestamps come from the engine's
    ``first_token_step``/``finished_step`` stamps through the step→time
    table, so the replay is exactly as deterministic as the engine itself
    — same trace, same report, byte for byte.

    ``engine`` is pluggable: anything implementing the small replay
    protocol works — ``submit(prompt_ids, config, priority=...)`` returning
    a state with step stamps, ``step()``, ``has_work``, ``step_count``,
    ``step_virtual_cost`` and the prefill/preemption counters.  Both
    :class:`~repro.serving.engine.ContinuousBatchingEngine` and the
    multi-replica :class:`~repro.serving.sharded.ShardedEngine` do (for the
    sharded front-end a step's cost is the *max* over its replicas' costs —
    replicas run in parallel, so the wall clock follows the slowest one).

    ``temperature``/``seed`` set the per-request sampling config (greedy by
    default, which makes replay output independent of the sampling seed).
    """
    events = sorted(trace.events, key=lambda e: (e.arrival_time,))
    # step index -> virtual time at which that step *completed*.  Step 0 is
    # "before any step" so submissions shed at admission still resolve.
    step_time: dict[int, float] = {engine.step_count: 0.0}
    vtime = 0.0
    submit_times: dict[int, float] = {}
    states = []
    i = 0
    while i < len(events) or engine.has_work:
        if not engine.has_work and i < len(events) and events[i].arrival_time > vtime:
            vtime = float(events[i].arrival_time)  # idle: jump to next arrival
            step_time[engine.step_count] = vtime
        while i < len(events) and events[i].arrival_time <= vtime:
            ev = events[i]
            cfg = GenerationConfig(
                max_new_tokens=ev.max_new_tokens,
                temperature=temperature,
                seed=seed,
            )
            state = engine.submit(list(ev.prompt_ids), cfg, priority=ev.priority)
            submit_times[state.request_id] = float(ev.arrival_time)
            states.append(state)
            i += 1
        if engine.has_work:
            engine.step()
            vtime += engine.step_virtual_cost(cost_model)
            step_time[engine.step_count] = vtime

    records = tuple(
        LatencyRecord.from_state(
            state,
            submit_time=submit_times[state.request_id],
            first_token_time=(
                None
                if state.first_token_step is None
                else step_time[state.first_token_step]
            ),
            finish_time=(
                None if state.finished_step is None else step_time[state.finished_step]
            ),
        )
        for state in states
    )
    report = LatencyReport.from_records(records, makespan=vtime, slo=slo)
    stats = {
        "steps": engine.step_count,
        "n_preemptions": engine.n_preemptions,
        "n_prefill_chunks": engine.n_prefill_chunks,
        "prefill_prompt_tokens": engine.prefill_prompt_tokens,
        "prefill_computed_tokens": engine.prefill_computed_tokens,
    }
    return ReplayResult(
        report=report, records=records, engine_stats=stats, makespan=vtime
    )
