"""Self-speculative decoding on the paged KV store.

Decode latency is dominated by per-step memory traffic and dispatch overhead;
speculative decoding amortizes many target-model steps behind one batched
**verify** pass.  A cheap drafter — a sparse-cache (window/Keyformer/H2O)
pass over the target's own weights, a smaller model, or a free n-gram lookup
— proposes ``k`` tokens; the target scores all of them at once via the
multi-query verify kernel, accepts the matching prefix, and rolls the
rejected tail's KV pages back through the paged store's refcount machinery.

Greedy output is **bit-identical** to vanilla greedy decoding (tokens and
float64 log-probabilities) for every drafter; see ``docs/speculative.md``.
"""

from repro.speculative.config import SpeculationConfig
from repro.speculative.decoder import (
    BatchedRowVerifyTarget,
    SoloVerifyTarget,
    SpeculativeGenerator,
    run_round,
)
from repro.speculative.drafter import (
    Drafter,
    NgramDrafter,
    PolicyDrafter,
    make_drafter_policy,
)
from repro.speculative.telemetry import SpeculationStats

__all__ = [
    "SpeculationConfig",
    "SpeculationStats",
    "SpeculativeGenerator",
    "SoloVerifyTarget",
    "BatchedRowVerifyTarget",
    "run_round",
    "Drafter",
    "PolicyDrafter",
    "NgramDrafter",
    "make_drafter_policy",
]
