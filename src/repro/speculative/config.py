"""Configuration of the draft-then-verify speculative decode loop."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.core.policies import EvictionPolicy
    from repro.models.transformer import DecoderLM

__all__ = ["SpeculationConfig"]


@dataclass(frozen=True)
class SpeculationConfig:
    """How the speculative decoder drafts and verifies.

    Speculative decoding never changes *what* is generated — greedy output is
    bit-identical to vanilla greedy decoding for every drafter below (the
    verify pass recomputes the target logits exactly) — only how many target
    passes it takes.  The drafter choice trades draft cost against acceptance
    rate:

    ``drafter="window"`` (default)
        Self-drafting: the target's own weights run a sliding-window
        eviction policy (budget ``kv_fraction`` of the sequence), so each
        draft step attends over a small cache.  This is the paper-aligned
        configuration — the sparse cache is the cheap approximation of the
        full model.
    ``drafter="policy"``
        Self-drafting with an arbitrary eviction policy from
        ``drafter_policy_factory`` (Keyformer, H2O, sinks, ...).
    ``drafter="ngram"``
        Prompt-lookup drafting: propose the continuation of the most recent
        matching n-gram in the already-committed context.  No model pass at
        all — drafting is free, so throughput is bounded only by acceptance.
    ``drafter_model``
        When set, a smaller :mod:`repro.models.model_zoo`-style model (same
        vocabulary) drafts instead of the target's own weights; combine with
        ``drafter="window"``/``"policy"`` for its cache policy.

    Parameters
    ----------
    k:
        Draft tokens proposed per round; each round commits between 1 and
        ``k + 1`` tokens (accepted prefix plus one token from the verify
        logits).
    kv_fraction:
        Cache budget of the built-in window drafter, as a fraction of the
        prompt length (ignored when ``drafter_policy_factory`` is given).
    ngram_max, ngram_min:
        Longest/shortest suffix n-gram the lookup drafter tries to match.
    """

    k: int = 4
    drafter: str = "window"
    drafter_policy_factory: "Callable[[], EvictionPolicy] | None" = None
    drafter_model: "DecoderLM | None" = None
    kv_fraction: float = 0.5
    ngram_max: int = 3
    ngram_min: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("speculation k must be >= 1")
        if self.drafter not in ("window", "policy", "ngram"):
            raise ValueError(f"unknown drafter kind {self.drafter!r}")
        if self.drafter == "policy" and self.drafter_policy_factory is None:
            raise ValueError('drafter="policy" requires drafter_policy_factory')
        if self.drafter == "ngram" and self.drafter_model is not None:
            raise ValueError("the ngram drafter does not use a drafter model")
        if not 0.0 < self.kv_fraction <= 1.0:
            raise ValueError("kv_fraction must be in (0, 1]")
        if self.ngram_min < 1 or self.ngram_max < self.ngram_min:
            raise ValueError("need 1 <= ngram_min <= ngram_max")
