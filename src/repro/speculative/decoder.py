"""The draft-then-verify decode loop and its ``Generator``-compatible facade.

One **round** of speculative decoding:

1. the drafter proposes ``k`` candidate tokens after the last committed one;
2. the target model scores the last committed token *and* every draft in a
   single :meth:`~repro.models.transformer.DecoderLM.verify_step` pass —
   appending all ``k + 1`` KV entries to its paged cache optimistically;
3. greedy acceptance keeps the longest draft prefix whose tokens equal the
   target's own argmax chain, then commits one more token straight from the
   verify logits (the correction after a mismatch, or the bonus token after a
   full acceptance);
4. the rejected tail's KV is rolled back (``commit_verify`` truncates the
   page tables — accepted drafts keep the verify pass's KV instead of being
   recomputed), and the drafter reconciles via snapshot restore/catch-up.

Because the verify logits are bit-identical (float64) to what sequential
decoding would have produced, greedy speculative decoding emits **exactly**
the tokens and log-probabilities of vanilla greedy decoding under the
full-attention policy, for every drafter — pinned by
``tests/golden/test_golden_speculative.py`` against the seed fixtures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.policies import FullAttentionPolicy
from repro.generation.generator import GenerationResult, Generator
from repro.kvcache.manager import CacheManager
from repro.kvcache.paged import PagedKVStore
from repro.models.config import GenerationConfig
from repro.models.tensor_ops import log_softmax
from repro.models.transformer import DecoderLM
from repro.speculative.config import SpeculationConfig
from repro.speculative.drafter import (
    Drafter,
    NgramDrafter,
    PolicyDrafter,
    make_drafter_policy,
)
from repro.speculative.telemetry import SpeculationStats

if TYPE_CHECKING:
    from repro.kvcache.batch import BatchedCacheManager

__all__ = [
    "SpeculativeGenerator",
    "SoloVerifyTarget",
    "BatchedRowVerifyTarget",
    "run_round",
]


class SoloVerifyTarget:
    """Verify-side adapter over a single-sequence :class:`CacheManager`."""

    def __init__(self, model: DecoderLM, manager: CacheManager):
        self.model = model
        self.manager = manager
        self._views = manager.layer_views()

    def verify(self, tokens: np.ndarray) -> np.ndarray:
        """Score ``tokens`` in one multi-query pass; returns ``(S, vocab)``."""
        start = self.manager.current_position
        positions = np.arange(start, start + len(tokens))
        return self.model.verify_step(tokens, positions, self._views)

    def commit(self, n_committed: int, n_appended: int) -> None:
        """Roll back the rejected tail and advance by the committed count."""
        self.manager.commit_verify(n_committed, n_appended)


class BatchedRowVerifyTarget:
    """Verify-side adapter over one row of the serving engine's batched cache.

    Any mid-pass exception — :class:`~repro.kvcache.paged.PoolExhausted`
    under memory pressure, or an injected verify/allocation fault — leaves
    earlier layers with the block already appended; the adapter unwinds those
    partial appends (via the manager's shared ``unwind_row`` helper) before
    re-raising, so the engine can preempt-and-retry or quarantine with the
    row's cache intact.
    """

    def __init__(
        self,
        model: DecoderLM,
        manager: "BatchedCacheManager",
        row: int,
        faults=None,
        request_id: int | None = None,
    ):
        self.model = model
        self.manager = manager
        self.row = row
        self.faults = faults
        self.request_id = request_id

    def verify(self, tokens: np.ndarray) -> np.ndarray:
        """Score ``tokens`` against row ``row``'s page tables."""
        manager = self.manager
        if self.faults is not None:
            self.faults.check("verify", self.request_id)
        start = manager.current_position[self.row]
        positions = np.arange(start, start + len(tokens))
        views = manager.row_verify_views(self.row)
        lengths_before = manager.row_lengths(self.row)
        try:
            return self.model.verify_step(tokens, positions, views)
        except Exception:
            # Revert both the pages and the append accounting — a retried
            # round will count these tokens again.
            manager.unwind_row(self.row, lengths_before)
            raise

    def commit(self, n_committed: int, n_appended: int) -> None:
        """Roll back the rejected tail and advance the row's counters."""
        self.manager.commit_verify_row(self.row, n_committed, n_appended)


def run_round(
    target,
    drafter: Drafter,
    last_token: int,
    max_draft: int,
    remaining: int,
    eos_token_id: int | None,
    stats: SpeculationStats,
) -> list[tuple[int, float]]:
    """Execute one draft-then-verify round; returns committed ``(token,
    log-probability)`` pairs in order.

    ``remaining`` is the number of tokens the sequence may still emit; the
    draft length is clamped so a fully accepted round never overshoots the
    budget.  The degenerate ``remaining == 1`` round drafts nothing and the
    verify pass collapses to a (bit-identical) single decode step.
    """
    k = min(max_draft, remaining - 1)
    draft = drafter.draft(int(last_token), k, eos_token_id)
    inputs = np.asarray([int(last_token)] + list(draft), dtype=np.int64)
    verify_logits = target.verify(inputs)
    greedy = np.argmax(verify_logits, axis=-1)
    n_accepted = 0
    while n_accepted < len(draft) and int(greedy[n_accepted]) == draft[n_accepted]:
        n_accepted += 1
    logprobs = log_softmax(verify_logits, axis=-1)
    commits = [
        (draft[i], float(logprobs[i, draft[i]])) for i in range(n_accepted)
    ]
    commits.append(
        (int(greedy[n_accepted]), float(logprobs[n_accepted, greedy[n_accepted]]))
    )
    commits = commits[:remaining]
    if eos_token_id is not None:
        for i, (token, _) in enumerate(commits):
            if token == eos_token_id:
                commits = commits[: i + 1]
                break
    target.commit(len(commits), len(inputs))
    drafter.accept(int(last_token), list(draft), n_accepted)
    drafter.note_committed([token for token, _ in commits])
    stats.rounds += 1
    stats.drafted += len(draft)
    stats.accepted += n_accepted
    stats.committed += len(commits)
    stats.rolled_back += len(inputs) - len(commits)
    # Keep the model-pass counter live (not just at teardown) so aggregate
    # telemetry polled mid-run reflects the drafting cost already paid.
    stats.draft_steps = drafter.draft_steps
    return commits


class SpeculativeGenerator:
    """Greedy generation through speculative decoding (``Generator``-shaped).

    The target always runs the full-attention policy — the whole point is
    that the *drafter* carries the sparse cache — and the output is
    bit-identical to ``Generator(model, FullAttentionPolicy()).generate`` at
    float64, for every drafter configuration.  The returned result carries a
    ``speculation`` summary (rounds, acceptance rate, rollbacks).

    For self-drafting, target and drafter hold separate page tables over one
    shared :class:`~repro.kvcache.paged.PagedKVStore`: the drafter maps the
    target's prompt pages at seed time and copy-on-writes away as its policy
    evicts.
    """

    def __init__(
        self,
        model: DecoderLM,
        speculation: SpeculationConfig | None = None,
        positional_mode: str | None = None,
    ):
        self.model = model
        self.speculation = speculation or SpeculationConfig()
        self.positional_mode = positional_mode
        if self.speculation.drafter_model is not None:
            drafter_config = self.speculation.drafter_model.config
            if drafter_config.vocab_size != model.config.vocab_size:
                raise ValueError(
                    "drafter model must share the target's vocabulary "
                    f"({drafter_config.vocab_size} != {model.config.vocab_size})"
                )

    # ------------------------------------------------------------------
    def _prepare(self, prompt_ids, config: GenerationConfig | None):
        """Prompt phase: seed target + drafter; returns the decode session."""
        config = config or GenerationConfig()
        prompt = Generator._as_batch(prompt_ids)
        if prompt.shape[0] != 1:
            raise ValueError(
                "speculative decoding runs one sequence at a time; use the "
                "serving engine's speculation mode for concurrent requests"
            )
        model_config = self.model.config
        logits = self.model.forward(prompt, store_attention=True)
        prompt_kv, prompt_attn, prompt_scores = [], [], []
        for block in self.model.blocks:
            if block.attn.last_kv is None or block.attn.last_scores is None:
                raise RuntimeError("prompt forward did not store attention tensors")
            prompt_kv.append(block.attn.last_kv)
            prompt_attn.append(block.attn.last_attention)
            prompt_scores.append(block.attn.last_scores)

        spec = self.speculation
        self_drafting = spec.drafter != "ngram" and spec.drafter_model is None
        store = None
        if self_drafting:
            # One store, two owners: target and drafter page tables share
            # these pools (and, transiently, the physical prompt pages).
            store = PagedKVStore(
                model_config.n_layers,
                model_config.n_heads,
                model_config.d_head,
                dtype=model_config.np_dtype,
                rope_dims=model_config.rope_dims
                if model_config.positional == "rope"
                else 0,
                growable=True,
            )
        target_manager = CacheManager(
            FullAttentionPolicy(),
            n_layers=model_config.n_layers,
            n_heads=model_config.n_heads,
            d_head=model_config.d_head,
            positional_mode=self.positional_mode,
            dtype=model_config.np_dtype,
            rope_dims=model_config.rope_dims if model_config.positional == "rope" else 0,
            store=store,
        )
        target_manager.initialize_from_prompt(
            prompt_kv, prompt_attn, prompt_scores, config.max_new_tokens
        )

        if spec.drafter == "ngram":
            drafter: Drafter = NgramDrafter(prompt[0], spec)
        elif spec.drafter_model is not None:
            drafter = PolicyDrafter.seed_from_prompt(
                spec.drafter_model,
                make_drafter_policy(spec),
                prompt,
                config.max_new_tokens,
                positional_mode=self.positional_mode,
            )
        else:
            drafter = PolicyDrafter.seed_mapped(
                self.model,
                make_drafter_policy(spec),
                store,
                [cache.tables for cache in target_manager.caches],
                prompt_attn,
                prompt_scores,
                config.max_new_tokens,
                positional_mode=self.positional_mode,
            )
        return {
            "config": config,
            "prompt_len": prompt.shape[1],
            "next_logits": logits[:, -1, :],
            "target": SoloVerifyTarget(self.model, target_manager),
            "manager": target_manager,
            "drafter": drafter,
        }

    def _run(self, session: dict) -> GenerationResult:
        """Token-generation phase: verify rounds until EOS or the budget."""
        config: GenerationConfig = session["config"]
        target: SoloVerifyTarget = session["target"]
        manager: CacheManager = session["manager"]
        drafter: Drafter = session["drafter"]
        stats = SpeculationStats()

        next_logits = session["next_logits"]
        first = int(np.argmax(next_logits, axis=-1)[0])
        first_logprob = float(log_softmax(next_logits, axis=-1)[0, first])
        sequence = [first]
        total_logprob = first_logprob
        drafter.note_committed([first])
        eos = config.eos_token_id
        finished = eos is not None and first == eos

        while not finished and len(sequence) < config.max_new_tokens:
            remaining = config.max_new_tokens - len(sequence)
            commits = run_round(
                target, drafter, sequence[-1], self.speculation.k, remaining, eos, stats
            )
            for token, logprob in commits:
                sequence.append(token)
                total_logprob += logprob
            finished = eos is not None and sequence[-1] == eos
        stats.draft_steps = drafter.draft_steps
        drafter.release()

        return GenerationResult(
            sequences=[sequence],
            prompt_lengths=[session["prompt_len"]],
            cache_stats=manager.stats,
            policy={
                "policy": "speculative",
                "target": manager.policy.describe(),
                "k": self.speculation.k,
                **drafter.describe(),
            },
            n_steps=manager.generation_step,
            log_probs=[total_logprob],
            speculation=stats.summary(),
        )

    # ------------------------------------------------------------------
    def generate(
        self, prompt_ids, config: GenerationConfig | None = None
    ) -> GenerationResult:
        """Generate greedily with draft-then-verify speculation.

        Output-compatible with :meth:`Generator.generate` under the
        full-attention policy: same tokens, same float64 log-probabilities —
        only the number of target passes differs.
        """
        return self._run(self._prepare(prompt_ids, config))
