"""Drafters: cheap proposers of candidate continuations for verification.

A drafter proposes ``k`` tokens per round; the target model verifies them in
one batched pass (see :mod:`repro.speculative.decoder`).  Because greedy
verification recomputes the target's own logits exactly, a drafter can never
change *what* is generated — only the acceptance rate, and with it the
throughput.  Two families are provided:

:class:`PolicyDrafter`
    A model pass over a policy-reduced KV cache.  Self-drafting runs the
    *target's own weights* under a sparse eviction policy (window, Keyformer,
    H2O, ...) so each draft step attends over a budget-sized cache; its page
    tables live in the same :class:`~repro.kvcache.paged.BlockPool` as the
    target's, seeded by *mapping* the target's prompt pages (refcount bump +
    copy-on-write) instead of copying them.  Alternatively a smaller model
    drafts with its own cache.

:class:`NgramDrafter`
    Prompt-lookup decoding: propose the continuation of the most recent
    matching suffix n-gram in the already-committed context.  No model pass
    at all — drafting is free, so the speedup is bounded only by how
    repetitive the target's output is.

Rollback discipline: a :class:`PolicyDrafter` snapshots its page tables
(:meth:`LayerKVCache.fork_tables` — a refcount bump, not a copy) and policy
state before consuming each *unverified* draft token.  After verification it
restores the snapshot matching the accepted prefix, so rejected-token pages
flow back through the pool's existing refcount/free-list machinery.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.config import CachePolicyConfig
from repro.core.policies import EvictionPolicy, WindowAttentionPolicy
from repro.kvcache.manager import CacheManager
from repro.speculative.config import SpeculationConfig

if TYPE_CHECKING:
    from repro.kvcache.paged import PagedKVStore, PageTable
    from repro.models.transformer import DecoderLM

__all__ = ["Drafter", "PolicyDrafter", "NgramDrafter", "make_drafter_policy"]


def make_drafter_policy(config: SpeculationConfig) -> EvictionPolicy:
    """Instantiate the drafter's eviction policy from a speculation config."""
    if config.drafter_policy_factory is not None:
        return config.drafter_policy_factory()
    return WindowAttentionPolicy(CachePolicyConfig(kv_fraction=config.kv_fraction))


class Drafter(ABC):
    """Interface the speculative decode loop drives a drafter through."""

    #: Model passes spent drafting (including catch-up); 0 for model-free drafters.
    draft_steps: int = 0

    @abstractmethod
    def draft(
        self, last_token: int, k: int, eos_token_id: int | None = None
    ) -> list[int]:
        """Propose up to ``k`` tokens following ``last_token``.

        May return fewer (e.g. when the drafter itself produces EOS, or an
        n-gram match runs dry).  Called once per verify round; the loop
        reconciles afterwards through :meth:`accept` and
        :meth:`note_committed`.
        """

    def accept(self, last_token: int, draft_tokens: list[int], n_accepted: int) -> None:
        """Reconcile internal state after ``n_accepted`` drafts were verified."""

    def abort_round(self) -> None:
        """Rewind to the state at the last :meth:`draft` call (verify failed)."""

    def note_committed(self, tokens: Sequence[int]) -> None:
        """Observe tokens entering the committed sequence (context drafters)."""

    def release(self) -> None:
        """Free any cache pages the drafter holds (teardown / preemption)."""

    def live_tables(self, store: "PagedKVStore | None" = None) -> list[list["PageTable"]]:
        """Per-layer page tables this drafter holds in ``store``.

        Used by pool-integrity audits to account for every live page
        reference.  Model-free drafters hold none; a :class:`PolicyDrafter`
        whose cache lives in a *different* store also reports none for a
        foreign ``store``.
        """
        return []

    def describe(self) -> dict:
        """Human-readable summary for results and telemetry."""
        return {"drafter": type(self).__name__}


class _DraftSnapshot:
    """One rewind point of a :class:`PolicyDrafter` (tables + policy + counters)."""

    __slots__ = ("tables", "policy", "position", "step")

    def __init__(self, tables, policy, position, step):
        self.tables = tables
        self.policy = policy
        self.position = position
        self.step = step


class PolicyDrafter(Drafter):
    """Drafts with a model pass over a policy-reduced KV cache.

    Parameters
    ----------
    model:
        The drafting model — the target itself (self-drafting) or a smaller
        one with the same vocabulary.
    manager:
        A seeded single-sequence :class:`CacheManager` carrying the drafter's
        eviction policy (see :meth:`seed_mapped` / :meth:`seed_from_prompt`).
    """

    def __init__(self, model: "DecoderLM", manager: CacheManager):
        self.model = model
        self.manager = manager
        self._views = manager.layer_views()
        self._catchup: list[int] = []
        self._round_catchup: list[int] = []
        self._snaps: list[_DraftSnapshot] = []
        self._round_start: _DraftSnapshot | None = None
        self.draft_steps = 0

    # ------------------------------------------------------------------
    # seeding
    # ------------------------------------------------------------------
    @classmethod
    def seed_mapped(
        cls,
        model: "DecoderLM",
        policy: EvictionPolicy,
        store: "PagedKVStore",
        target_tables: list[list["PageTable"]],
        prompt_attn: list[np.ndarray],
        prompt_logits: list[np.ndarray],
        max_new_tokens: int,
        positional_mode: str | None = None,
    ) -> "PolicyDrafter":
        """Self-drafting seed: map the target's prompt pages, copy nothing.

        The drafter's page tables clone the target's (refcount bump in the
        shared store); its prompt-phase eviction then copy-on-writes into
        private pages.  ``prompt_attn``/``prompt_logits`` come from the
        target's own prompt forward — the weights are shared, so they are
        the drafter's prompt attention too.
        """
        config = model.config
        manager = CacheManager(
            policy,
            n_layers=config.n_layers,
            n_heads=config.n_heads,
            d_head=config.d_head,
            positional_mode=positional_mode,
            dtype=config.np_dtype,
            rope_dims=config.rope_dims if config.positional == "rope" else 0,
            store=store,
        )
        manager.initialize_mapped(target_tables, prompt_attn, prompt_logits, max_new_tokens)
        return cls(model, manager)

    @classmethod
    def seed_from_prompt(
        cls,
        model: "DecoderLM",
        policy: EvictionPolicy,
        prompt_ids: np.ndarray,
        max_new_tokens: int,
        positional_mode: str | None = None,
    ) -> "PolicyDrafter":
        """Separate-model seed: run the drafter model's own prompt forward."""
        config = model.config
        prompt = np.asarray(prompt_ids, dtype=np.int64)
        if prompt.ndim == 1:
            prompt = prompt[None, :]
        model.forward(prompt, store_attention=True)
        prompt_kv, prompt_attn, prompt_scores = [], [], []
        for block in model.blocks:
            prompt_kv.append(block.attn.last_kv)
            prompt_attn.append(block.attn.last_attention)
            prompt_scores.append(block.attn.last_scores)
        manager = CacheManager(
            policy,
            n_layers=config.n_layers,
            n_heads=config.n_heads,
            d_head=config.d_head,
            positional_mode=positional_mode,
            dtype=config.np_dtype,
            rope_dims=config.rope_dims if config.positional == "rope" else 0,
        )
        manager.initialize_from_prompt(prompt_kv, prompt_attn, prompt_scores, max_new_tokens)
        return cls(model, manager)

    # ------------------------------------------------------------------
    # state management
    # ------------------------------------------------------------------
    def _snapshot(self) -> _DraftSnapshot:
        mgr = self.manager
        return _DraftSnapshot(
            [cache.fork_tables() for cache in mgr.caches],
            copy.deepcopy(mgr.policy),
            mgr.current_position,
            mgr.generation_step,
        )

    def _restore(self, snap: _DraftSnapshot) -> None:
        mgr = self.manager
        for cache, tables in zip(mgr.caches, snap.tables):
            cache.restore_tables(tables)
        mgr.policy = snap.policy
        mgr.current_position = snap.position
        mgr.generation_step = snap.step
        mgr._qpos_array = None
        mgr._step_lengths = []

    def _discard(self, snaps: list[_DraftSnapshot]) -> None:
        for snap in snaps:
            for cache, tables in zip(self.manager.caches, snap.tables):
                cache.discard_tables(tables)

    def _consume(self, token: int) -> int:
        """Feed one token through the drafter; return its greedy successor."""
        logits = self.model.decode_step(
            np.asarray([token]), self.manager.current_position, self._views
        )
        self.manager.advance()
        self.draft_steps += 1
        return int(np.argmax(logits))

    # ------------------------------------------------------------------
    # Drafter interface
    # ------------------------------------------------------------------
    def draft(self, last_token: int, k: int, eos_token_id: int | None = None) -> list[int]:
        """Greedily decode up to ``k`` tokens after ``last_token``."""
        # The round-start snapshot is taken *before* catch-up so that
        # abort_round (a verify/draft pass hitting PoolExhausted under fixed
        # pools) can rewind even a half-applied catch-up.
        self._round_start = self._snapshot()
        self._round_catchup = list(self._catchup)
        # Catch-up: consume committed tokens the previous round accepted in
        # full (their KV never needs rolling back, so no per-token snapshots).
        for token in self._catchup:
            self._consume(token)
        self._catchup = []
        self._snaps = []
        tokens: list[int] = []
        token = int(last_token)
        for j in range(k):
            if j > 0:
                # Snapshot before consuming an *unverified* draft token; the
                # first input (the committed last_token) never rolls back.
                self._snaps.append(self._snapshot())
            token = self._consume(token)
            tokens.append(token)
            if eos_token_id is not None and token == eos_token_id:
                break
        return tokens

    def accept(self, last_token: int, draft_tokens: list[int], n_accepted: int) -> None:
        """Rewind to the accepted prefix (or queue catch-up on full acceptance)."""
        consumed = len(draft_tokens)  # inputs fed: last_token + drafts[:-1]
        needed = n_accepted + 1  # must have consumed last_token + accepted drafts
        if needed > consumed:
            # Full acceptance: the final draft's KV was never computed by the
            # drafter — consume it (and, in the k == 0 corner, last_token) at
            # the start of the next round.
            seq = [int(last_token)] + [int(t) for t in draft_tokens[:n_accepted]]
            self._catchup = seq[consumed:]
            self._discard(self._snaps)
        elif needed == consumed:
            self._discard(self._snaps)
        else:
            # Partial acceptance: rewind to the state just before the first
            # rejected draft token was consumed.
            keep = self._snaps[needed - 1]
            self._restore(keep)
            self._discard(self._snaps[: needed - 1] + self._snaps[needed:])
        if self._round_start is not None:
            self._discard([self._round_start])
        self._snaps = []
        self._round_start = None

    def abort_round(self) -> None:
        """Restore the state at the last ``draft`` call (failed verify pass)."""
        if self._round_start is not None:
            self._restore(self._round_start)
            self._discard(self._snaps)
            self._catchup = list(self._round_catchup)
            self._snaps = []
            self._round_start = None

    def release(self) -> None:
        """Free every page the drafter (and its live snapshots) holds."""
        self._discard(self._snaps)
        if self._round_start is not None:
            self._discard([self._round_start])
        self._snaps = []
        self._round_start = None
        self.manager.release()

    def live_tables(self, store: "PagedKVStore | None" = None) -> list[list["PageTable"]]:
        """Per-layer tables of the live cache plus every un-discarded snapshot.

        Reports nothing when ``store`` is given and this drafter's cache
        lives elsewhere (a separate drafter model stores pages in its own
        pools, which the serving store's audit must not count).
        """
        mgr = self.manager
        if not mgr.caches:
            return []
        if store is not None and mgr.caches[0].pool is not store.pools[0]:
            return []
        per_layer = [list(cache.tables) for cache in mgr.caches]
        snapshots = list(self._snaps)
        if self._round_start is not None:
            snapshots.append(self._round_start)
        for snap in snapshots:
            for layer, tables in enumerate(snap.tables):
                per_layer[layer].extend(tables)
        return per_layer

    def describe(self) -> dict:
        """Summary of the drafting policy for results/telemetry."""
        return {"drafter": "policy", "policy": self.manager.policy.describe()}


class NgramDrafter(Drafter):
    """Prompt-lookup drafting: copy the continuation of a repeated n-gram.

    The committed context (prompt + generated tokens) is scanned for the most
    recent earlier occurrence of its own suffix n-gram (longest first,
    ``ngram_max`` down to ``ngram_min``); the tokens that followed that
    occurrence become the draft.  Generation that revisits context — looping
    continuations, quoted spans, structured output — verifies in blocks, and
    a miss costs nothing but a normal decode step.
    """

    def __init__(self, prompt_ids: np.ndarray, config: SpeculationConfig):
        self._history = [int(t) for t in np.asarray(prompt_ids).reshape(-1)]
        self.ngram_max = config.ngram_max
        self.ngram_min = config.ngram_min
        self.draft_steps = 0

    def note_committed(self, tokens: Sequence[int]) -> None:
        """Extend the lookup history with freshly committed tokens."""
        self._history.extend(int(t) for t in tokens)

    def draft(self, last_token: int, k: int, eos_token_id: int | None = None) -> list[int]:
        """Propose up to ``k`` tokens by rolling n-gram lookups forward."""
        if k <= 0:
            return []
        # Roll the lookup forward one token at a time over a virtual history
        # (committed context + draft so far): each step proposes the token
        # that followed the most recent earlier occurrence of the current
        # suffix n-gram.  Rolling — rather than copying a block after one
        # match — keeps drafting through periodic content whose latest match
        # sits flush against the end of the history.
        virtual = np.empty(len(self._history) + k, dtype=np.int64)
        virtual[: len(self._history)] = self._history
        n = len(self._history)
        draft: list[int] = []
        for _ in range(k):
            token = self._lookup_next(virtual[:n])
            if token is None:
                break
            draft.append(token)
            virtual[n] = token
            n += 1
            if eos_token_id is not None and token == eos_token_id:
                break
        return draft

    def _lookup_next(self, history: np.ndarray) -> int | None:
        """Token following the most recent earlier occurrence of the longest
        matching suffix n-gram, or ``None`` when no n-gram recurs."""
        n = history.size
        for m in range(min(self.ngram_max, n - 1), self.ngram_min - 1, -1):
            pattern = history[n - m :]
            windows = np.lib.stride_tricks.sliding_window_view(history, m)
            matches = np.flatnonzero((windows[: n - m] == pattern).all(axis=1))
            if matches.size:
                return int(history[int(matches[-1]) + m])
        return None

    def describe(self) -> dict:
        """Summary of the lookup configuration for results/telemetry."""
        return {
            "drafter": "ngram",
            "ngram_max": self.ngram_max,
            "ngram_min": self.ngram_min,
        }
