"""Acceptance-rate telemetry for the speculative decode loop."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SpeculationStats"]


@dataclass
class SpeculationStats:
    """Counters of one speculative generation (or one serving request).

    ``acceptance_rate`` is the headline number: the fraction of drafted
    tokens the target model agreed with.  Feed it to
    :class:`repro.perfmodel.speculation.SpeculationModel` to compare the
    measured speedup against the analytical expectation.
    """

    #: Verify rounds executed (one target pass each).
    rounds: int = 0
    #: Draft tokens proposed across all rounds.
    drafted: int = 0
    #: Draft tokens the verify pass accepted.
    accepted: int = 0
    #: Tokens committed to the output (accepted drafts + corrections/bonuses).
    committed: int = 0
    #: Drafter model passes, including post-acceptance catch-up steps.
    draft_steps: int = 0
    #: Draft tokens rolled back out of the target cache (truncated KV).
    rolled_back: int = 0

    @property
    def acceptance_rate(self) -> float:
        """Fraction of drafted tokens accepted (0.0 when nothing was drafted)."""
        if self.drafted == 0:
            return 0.0
        return self.accepted / self.drafted

    @property
    def tokens_per_round(self) -> float:
        """Average tokens committed per verify pass (>= 1.0)."""
        if self.rounds == 0:
            return 0.0
        return self.committed / self.rounds

    def merge(self, other: "SpeculationStats") -> None:
        """Accumulate another request's counters into this one."""
        self.rounds += other.rounds
        self.drafted += other.drafted
        self.accepted += other.accepted
        self.committed += other.committed
        self.draft_steps += other.draft_steps
        self.rolled_back += other.rolled_back

    @classmethod
    def from_summary(cls, summary: dict) -> "SpeculationStats":
        """Rebuild counters from a :meth:`summary` dict (derived rates dropped)."""
        return cls(
            rounds=summary.get("rounds", 0),
            drafted=summary.get("drafted", 0),
            accepted=summary.get("accepted", 0),
            committed=summary.get("committed", 0),
            draft_steps=summary.get("draft_steps", 0),
            rolled_back=summary.get("rolled_back", 0),
        )

    def summary(self) -> dict:
        """JSON-friendly snapshot (used by demos and benchmark reports)."""
        return {
            "rounds": self.rounds,
            "drafted": self.drafted,
            "accepted": self.accepted,
            "committed": self.committed,
            "draft_steps": self.draft_steps,
            "rolled_back": self.rolled_back,
            "acceptance_rate": round(self.acceptance_rate, 4),
            "tokens_per_round": round(self.tokens_per_round, 4),
        }
