"""Tokenization substrate: vocabulary, word-level and BPE tokenizers."""

from repro.tokenizer.vocab import Vocabulary, SpecialTokens
from repro.tokenizer.word import WordTokenizer
from repro.tokenizer.bpe import BPETokenizer

__all__ = ["Vocabulary", "SpecialTokens", "WordTokenizer", "BPETokenizer"]
