"""Minimal byte-pair-encoding tokenizer.

Included for completeness of the substrate (real LLM tokenizers are subword
tokenizers); the evaluation pipelines use :class:`~repro.tokenizer.word.WordTokenizer`
because the synthetic corpora have closed vocabularies, but the BPE tokenizer
is fully functional and tested.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.tokenizer.vocab import Vocabulary
from repro.tokenizer.word import WordTokenizer

__all__ = ["BPETokenizer"]

_END_OF_WORD = "</w>"


class BPETokenizer:
    """Byte-pair encoding trained on a corpus of raw text."""

    def __init__(self, vocab: Vocabulary, merges: list[tuple[str, str]]):
        self.vocab = vocab
        self.merges = merges
        self._merge_ranks = {pair: i for i, pair in enumerate(merges)}

    # ------------------------------------------------------------------
    @classmethod
    def train(cls, texts: Iterable[str], n_merges: int = 200) -> "BPETokenizer":
        """Learn up to ``n_merges`` merge rules from ``texts``."""
        word_counts: Counter[tuple[str, ...]] = Counter()
        for text in texts:
            for word in WordTokenizer.word_split(text):
                symbols = tuple(list(word) + [_END_OF_WORD])
                word_counts[symbols] += 1

        merges: list[tuple[str, str]] = []
        for _ in range(n_merges):
            pair_counts: Counter[tuple[str, str]] = Counter()
            for symbols, count in word_counts.items():
                for a, b in zip(symbols, symbols[1:]):
                    pair_counts[(a, b)] += count
            if not pair_counts:
                break
            best_pair, best_count = max(
                pair_counts.items(), key=lambda kv: (kv[1], kv[0])
            )
            if best_count < 2:
                break
            merges.append(best_pair)
            merged_symbol = "".join(best_pair)
            new_counts: Counter[tuple[str, ...]] = Counter()
            for symbols, count in word_counts.items():
                new_symbols: list[str] = []
                i = 0
                while i < len(symbols):
                    if (
                        i + 1 < len(symbols)
                        and (symbols[i], symbols[i + 1]) == best_pair
                    ):
                        new_symbols.append(merged_symbol)
                        i += 2
                    else:
                        new_symbols.append(symbols[i])
                        i += 1
                new_counts[tuple(new_symbols)] += count
            word_counts = new_counts

        symbols_seen: set[str] = set()
        for symbols in word_counts:
            symbols_seen.update(symbols)
        vocab = Vocabulary(sorted(symbols_seen))
        return cls(vocab, merges)

    # ------------------------------------------------------------------
    def _encode_word(self, word: str) -> list[str]:
        symbols = list(word) + [_END_OF_WORD]
        while len(symbols) > 1:
            pairs = [(symbols[i], symbols[i + 1]) for i in range(len(symbols) - 1)]
            ranked = [
                (self._merge_ranks[p], i)
                for i, p in enumerate(pairs)
                if p in self._merge_ranks
            ]
            if not ranked:
                break
            _, idx = min(ranked)
            symbols = (
                symbols[:idx] + ["".join((symbols[idx], symbols[idx + 1]))] + symbols[idx + 2:]
            )
        return symbols

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    def encode(self, text: str) -> list[int]:
        """Encode raw text to subword ids."""
        ids: list[int] = []
        for word in WordTokenizer.word_split(text):
            for symbol in self._encode_word(word):
                ids.append(self.vocab.token_to_id(symbol))
        return ids

    def decode(self, ids: Sequence[int]) -> str:
        """Decode subword ids back to text (best effort)."""
        tokens = self.vocab.decode_ids([int(i) for i in ids])
        text = "".join(tokens)
        return text.replace(_END_OF_WORD, " ").strip()
