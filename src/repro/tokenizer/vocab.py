"""Vocabulary and special-token handling shared by all tokenizers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["SpecialTokens", "Vocabulary"]


@dataclass(frozen=True)
class SpecialTokens:
    """Names of the special tokens every vocabulary contains."""

    pad: str = "<pad>"
    bos: str = "<bos>"
    eos: str = "<eos>"
    unk: str = "<unk>"
    sep: str = "<sep>"

    def as_tuple(self) -> tuple[str, ...]:
        return (self.pad, self.bos, self.eos, self.unk, self.sep)


class Vocabulary:
    """Bidirectional mapping between token strings and integer ids.

    Special tokens always occupy the first ids (pad=0, bos=1, eos=2, unk=3,
    sep=4) so models can rely on stable ids regardless of corpus content.
    """

    def __init__(self, tokens: Iterable[str] = (), specials: SpecialTokens | None = None):
        self.specials = specials or SpecialTokens()
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in self.specials.as_tuple():
            self._add(token)
        for token in tokens:
            self.add(token)

    # ------------------------------------------------------------------
    def _add(self, token: str) -> int:
        idx = len(self._id_to_token)
        self._token_to_id[token] = idx
        self._id_to_token.append(token)
        return idx

    def add(self, token: str) -> int:
        """Add ``token`` if not present; return its id."""
        if token in self._token_to_id:
            return self._token_to_id[token]
        return self._add(token)

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    # ------------------------------------------------------------------
    @property
    def pad_id(self) -> int:
        return self._token_to_id[self.specials.pad]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[self.specials.bos]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[self.specials.eos]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[self.specials.unk]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[self.specials.sep]

    # ------------------------------------------------------------------
    def token_to_id(self, token: str) -> int:
        """Map a token to its id; unknown tokens map to ``unk_id``."""
        return self._token_to_id.get(token, self.unk_id)

    def id_to_token(self, idx: int) -> str:
        """Map an id back to its token string."""
        if not (0 <= idx < len(self._id_to_token)):
            raise IndexError(f"token id {idx} out of range [0, {len(self._id_to_token)})")
        return self._id_to_token[idx]

    def encode_tokens(self, tokens: Sequence[str]) -> list[int]:
        """Encode a pre-tokenized sequence of strings."""
        return [self.token_to_id(t) for t in tokens]

    def decode_ids(self, ids: Sequence[int], skip_special: bool = True) -> list[str]:
        """Decode ids back to token strings, optionally dropping specials."""
        special_ids = {self.pad_id, self.bos_id, self.eos_id, self.sep_id}
        out = []
        for idx in ids:
            idx = int(idx)
            if skip_special and idx in special_ids:
                continue
            out.append(self.id_to_token(idx))
        return out

    def tokens(self) -> list[str]:
        """All token strings ordered by id."""
        return list(self._id_to_token)
