"""Deterministic word-level tokenizer used by the synthetic datasets."""

from __future__ import annotations

import re
from typing import Iterable, Sequence

import numpy as np

from repro.tokenizer.vocab import Vocabulary

__all__ = ["WordTokenizer"]

_TOKEN_RE = re.compile(r"[a-zA-Z0-9_]+|[^\sa-zA-Z0-9_]")


class WordTokenizer:
    """Whitespace/punctuation word tokenizer with a fixed vocabulary.

    The synthetic corpora in :mod:`repro.data` are generated from a closed
    vocabulary, so a word-level tokenizer is lossless for them while keeping
    sequence lengths short enough for laptop-scale training.
    """

    def __init__(self, vocab: Vocabulary):
        self.vocab = vocab

    # ------------------------------------------------------------------
    @staticmethod
    def word_split(text: str) -> list[str]:
        """Split raw text into word/punctuation tokens (lowercased)."""
        return _TOKEN_RE.findall(text.lower())

    @classmethod
    def from_corpus(cls, texts: Iterable[str], max_vocab: int | None = None) -> "WordTokenizer":
        """Build a tokenizer whose vocabulary covers ``texts``.

        Tokens are added in frequency order (ties broken alphabetically) so the
        vocabulary is deterministic for a given corpus.
        """
        counts: dict[str, int] = {}
        for text in texts:
            for token in cls.word_split(text):
                counts[token] = counts.get(token, 0) + 1
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        if max_vocab is not None:
            ordered = ordered[:max_vocab]
        vocab = Vocabulary(token for token, _ in ordered)
        return cls(vocab)

    # ------------------------------------------------------------------
    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    def encode(self, text: str, add_bos: bool = False, add_eos: bool = False) -> list[int]:
        """Encode raw text to token ids."""
        ids = self.vocab.encode_tokens(self.word_split(text))
        if add_bos:
            ids = [self.vocab.bos_id] + ids
        if add_eos:
            ids = ids + [self.vocab.eos_id]
        return ids

    def decode(self, ids: Sequence[int] | np.ndarray, skip_special: bool = True) -> str:
        """Decode token ids back to a whitespace-joined string."""
        tokens = self.vocab.decode_ids([int(i) for i in ids], skip_special=skip_special)
        return " ".join(tokens)

    def pad(self, ids: Sequence[int], length: int, left: bool = False) -> np.ndarray:
        """Pad (or truncate) ``ids`` to exactly ``length`` using the pad id."""
        ids = list(ids)[:length]
        padding = [self.vocab.pad_id] * (length - len(ids))
        padded = padding + ids if left else ids + padding
        return np.asarray(padded, dtype=np.int64)
