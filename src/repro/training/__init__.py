"""Training utilities for the NumPy transformer substrate."""

from repro.training.optimizer import Adam, SGD
from repro.training.lr_schedule import (
    ConstantLR,
    CosineWithWarmup,
    LinearWarmup,
)
from repro.training.trainer import Trainer, TrainingConfig, TrainingResult

__all__ = [
    "Adam",
    "SGD",
    "ConstantLR",
    "CosineWithWarmup",
    "LinearWarmup",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
]
