"""Learning-rate schedules."""

from __future__ import annotations

import numpy as np

__all__ = ["ConstantLR", "LinearWarmup", "CosineWithWarmup"]


class ConstantLR:
    """Constant learning rate."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr

    def __call__(self, step: int) -> float:
        return self.lr


class LinearWarmup:
    """Linear warmup from 0 to ``lr`` over ``warmup_steps``, constant afterwards."""

    def __init__(self, lr: float, warmup_steps: int):
        if warmup_steps < 0:
            raise ValueError("warmup_steps must be non-negative")
        self.lr = lr
        self.warmup_steps = warmup_steps

    def __call__(self, step: int) -> float:
        if self.warmup_steps == 0 or step >= self.warmup_steps:
            return self.lr
        return self.lr * (step + 1) / self.warmup_steps


class CosineWithWarmup:
    """Linear warmup followed by cosine decay to ``min_lr``."""

    def __init__(self, lr: float, warmup_steps: int, total_steps: int, min_lr: float = 0.0):
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.lr = lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr

    def __call__(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.lr * (step + 1) / max(self.warmup_steps, 1)
        progress = (step - self.warmup_steps) / max(self.total_steps - self.warmup_steps, 1)
        progress = min(progress, 1.0)
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.min_lr + (self.lr - self.min_lr) * cosine
