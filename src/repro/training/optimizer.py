"""First-order optimizers operating on a :class:`repro.models.layers.Module` tree."""

from __future__ import annotations

import numpy as np

from repro.models.layers import Module

__all__ = ["Adam", "SGD", "clip_gradients"]


def clip_gradients(model: Module, max_norm: float) -> float:
    """Clip all gradients to a global L2 norm; returns the pre-clip norm."""
    grads = [g for _, g in model.named_gradients()]
    total = float(np.sqrt(sum(float(np.sum(g * g)) for g in grads)))
    if max_norm > 0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    return total


class SGD:
    """Plain stochastic gradient descent (used in tests as a reference)."""

    def __init__(self, model: Module, lr: float = 1e-2):
        self.model = model
        self.lr = lr

    def step(self, lr: float | None = None) -> None:
        """Apply one update using the gradients stored in the module tree."""
        lr = self.lr if lr is None else lr
        params = dict(self.model.named_parameters())
        grads = dict(self.model.named_gradients())
        for name, param in params.items():
            param -= lr * grads[name]


class Adam:
    """Adam optimizer with decoupled weight decay (AdamW style).

    The optimizer keeps its own first/second moment buffers keyed by the
    qualified parameter names produced by ``Module.named_parameters``.
    """

    def __init__(
        self,
        model: Module,
        lr: float = 3e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.model = model
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self.m: dict[str, np.ndarray] = {}
        self.v: dict[str, np.ndarray] = {}
        for name, param in model.named_parameters():
            self.m[name] = np.zeros_like(param)
            self.v[name] = np.zeros_like(param)

    def step(self, lr: float | None = None) -> None:
        """Apply one Adam update using the gradients stored in the model."""
        lr = self.lr if lr is None else lr
        self.t += 1
        params = dict(self.model.named_parameters())
        grads = dict(self.model.named_gradients())
        bias1 = 1.0 - self.beta1**self.t
        bias2 = 1.0 - self.beta2**self.t
        for name, param in params.items():
            g = grads[name]
            if self.weight_decay and param.ndim > 1:
                param -= lr * self.weight_decay * param
            m = self.m[name]
            v = self.v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            m_hat = m / bias1
            v_hat = v / bias2
            param -= lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_size(self) -> int:
        """Number of scalars held in optimizer state (for memory accounting)."""
        return sum(arr.size for arr in self.m.values()) * 2
